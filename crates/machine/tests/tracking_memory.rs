//! Regression: miss-taxonomy tracking memory is bounded by the image
//! footprint, not by how many runs or windows a sweep replays.
//!
//! The seed kept lifetime "ever seen" membership in a `HashSet<u64>`
//! per cache; across long sweeps those sets (and their rehashing) grew
//! with accumulated references.  The chunked epoch-stamped `BlockSet`
//! allocates per 1 MB address chunk on first touch and never again —
//! `MemorySystem::tracking_bytes()` must be flat once the footprint has
//! been touched, no matter how many warm windows follow.

use alpha_machine::inst::InstRecord;
use alpha_machine::Machine;

/// A trace shaped like one protocol episode: code walk plus data/stack
/// traffic, the same regions every run (a sweep replays one image).
fn episode(seq: u64) -> Vec<InstRecord> {
    let code = 0x0010_0000u64;
    let data = 0x0800_0000u64;
    let stack = 0x0C00_0000u64;
    let mut out = Vec::new();
    for f in 0..24u64 {
        let base = code + f * 0x980; // ~2.4 KB functions, i-cache overlap
        out.push(InstRecord::call(base));
        for i in 0..40 {
            let pc = base + 4 + i * 4;
            match i % 10 {
                3 => out.push(InstRecord::load(pc, data + ((seq + f * 7 + i) % 512) * 8)),
                6 => out.push(InstRecord::store(pc, stack - ((f + i) % 128) * 8)),
                9 => out.push(InstRecord::branch_taken(pc)),
                _ => out.push(InstRecord::alu(pc)),
            }
        }
        out.push(InstRecord::ret(base + 4 + 40 * 4));
    }
    out
}

#[test]
fn long_sweep_does_not_grow_tracking_memory() {
    let mut m = Machine::dec3000_600();
    // Touch the full footprint once (cold run allocates the chunks).
    m.run(&episode(0));
    let settled = m.mem.tracking_bytes();
    assert!(settled > 0, "tracking storage should exist after a run");

    // A long sweep: many measurement windows over the same image, with
    // periodic cold restarts (exactly what SweepEngine does per config).
    for round in 0..400u64 {
        if round % 50 == 0 {
            m.reset();
        }
        m.run(&episode(round));
        assert_eq!(
            m.mem.tracking_bytes(),
            settled,
            "tracking memory grew at round {round}"
        );
    }
}
