//! Property suite: the data-oriented memory hierarchy is bit-identical
//! to the seed scalar model kept in [`alpha_machine::reference`].
//!
//! Every observable the paper's tables consume — stall cycles, per-cache
//! accesses/misses/replacement misses, the combined d-cache/write-buffer
//! statistics, ITLB statistics, and the per-cache window footprints — is
//! compared after every measurement window, across randomized hierarchy
//! configurations, randomized protocol-shaped traces, and randomized
//! window boundaries (stats resets and full resets).
//!
//! Deterministic seeded SplitMix64, no external crates: rerun with
//! `cargo test -p alpha-machine --test reference_equivalence`.

use alpha_machine::config::{CacheConfig, MemConfig};
use alpha_machine::hierarchy::MemorySystem;
use alpha_machine::inst::InstRecord;
use alpha_machine::reference;

/// SplitMix64 (Steele et al.), the repo's standard seeded test RNG.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }
}

/// A randomized hierarchy: small caches force conflict/replacement
/// behaviour, associativity exercises the non-fast paths, a disabled or
/// tiny ITLB exercises translation corners, and both cold-miss timing
/// policies are covered.
fn random_config(rng: &mut SplitMix64) -> MemConfig {
    let mut c = MemConfig::dec3000_600();
    c.icache = CacheConfig::set_associative(
        rng.pick(&[512, 2048, 8192]),
        32,
        rng.pick(&[1, 1, 1, 2]),
    );
    c.dcache = CacheConfig::set_associative(
        rng.pick(&[512, 2048, 8192]),
        32,
        rng.pick(&[1, 1, 1, 2]),
    );
    // A small b-cache makes steady-state conflict (revisit) misses
    // common, which is where the cold-is-free timing exception bites.
    c.bcache = CacheConfig::new(rng.pick(&[4096, 65536, 2 * 1024 * 1024]), 32);
    c.write_buffer_entries = rng.pick(&[1, 2, 4]);
    c.writebuf_retire_cycles = rng.pick(&[3, 10]);
    c.icache_prefetch = rng.below(2) == 0;
    c.prefetch_cover_cycles = rng.pick(&[0, 12]);
    c.itlb_entries = rng.pick(&[0, 4, 32]);
    c.page_bytes = rng.pick(&[64, 8192]);
    c.bcache_cold_is_free = rng.below(2) == 0;
    c
}

/// A protocol-shaped trace: straight-line runs, in-function branches,
/// cross-function calls/returns between bases that alias in the i-cache
/// (8 KB strides) and the b-cache (2 MB strides), and loads/stores over
/// struct-, page- and stack-like data strides.
fn random_trace(rng: &mut SplitMix64, len: usize) -> Vec<InstRecord> {
    let nfuncs = 4 + rng.below(6);
    let funcs: Vec<u64> = (0..nfuncs)
        .map(|i| {
            let region = rng.pick(&[0x0010_0000u64, 0x0040_0000, 0x0900_0000]);
            let stride = rng.pick(&[0x80u64, 0x2000, 0x20_0000]);
            region + i * stride
        })
        .collect();
    let data_base = 0x0800_0000u64;
    let stack_top = 0x0C00_0000u64;
    let mut pc = funcs[0];
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let roll = rng.below(100);
        if roll < 52 {
            out.push(InstRecord::alu(pc));
            pc += 4;
        } else if roll < 64 {
            let addr = match rng.below(3) {
                0 => data_base + rng.below(0x400) * 8,
                1 => data_base + rng.below(16) * 0x2000,
                _ => stack_top - rng.below(0x100) * 8,
            };
            out.push(InstRecord::load(pc, addr));
            pc += 4;
        } else if roll < 78 {
            let addr = match rng.below(3) {
                0 => data_base + rng.below(0x200) * 8,
                1 => data_base + rng.below(16) * 0x2000,
                _ => stack_top - rng.below(0x100) * 8,
            };
            out.push(InstRecord::store(pc, addr));
            pc += 4;
        } else if roll < 84 {
            out.push(InstRecord::branch_not_taken(pc));
            pc += 4;
        } else if roll < 92 {
            // Loop-shaped backward (or short forward) branch.
            out.push(InstRecord::branch_taken(pc));
            pc = pc.saturating_sub(rng.below(16) * 4) + rng.below(3) * 4;
        } else if roll < 97 {
            out.push(InstRecord::call(pc));
            pc = funcs[rng.below(nfuncs) as usize];
        } else {
            out.push(InstRecord::ret(pc));
            pc = funcs[rng.below(nfuncs) as usize] + rng.below(0x40) * 4;
        }
    }
    out
}

fn assert_same(case: u64, window: u64, opt: &MemorySystem, refm: &reference::MemorySystem) {
    let at = format!("case {case} window {window}");
    assert_eq!(opt.stall_cycles(), refm.stall_cycles(), "{at}: stalls");
    assert_eq!(opt.icache.stats, refm.icache.stats, "{at}: icache stats");
    assert_eq!(opt.dcache.stats, refm.dcache.stats, "{at}: dcache stats");
    assert_eq!(opt.bcache.stats, refm.bcache.stats, "{at}: bcache stats");
    assert_eq!(
        opt.dcache_combined_stats(),
        refm.dcache_combined_stats(),
        "{at}: combined d-cache/write-buffer stats"
    );
    assert_eq!(
        opt.itlb.as_ref().map(|t| t.stats),
        refm.itlb.as_ref().map(|t| t.stats),
        "{at}: itlb stats"
    );
    assert_eq!(
        opt.write_buffer.pending_len(),
        refm.write_buffer.pending_len(),
        "{at}: write-buffer occupancy"
    );
    assert_eq!(
        opt.write_buffer.retired_blocks, refm.write_buffer.retired_blocks,
        "{at}: write-buffer retirements"
    );
    for (name, o, r) in [
        ("icache", &opt.icache, &refm.icache),
        ("dcache", &opt.dcache, &refm.dcache),
        ("bcache", &opt.bcache, &refm.bcache),
    ] {
        assert_eq!(
            o.footprint_blocks(),
            r.footprint_blocks(),
            "{at}: {name} window footprint"
        );
    }
}

#[test]
fn optimized_hierarchy_matches_reference_on_random_traces() {
    const CASES: u64 = 160; // ≥ 128 per the issue
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5EED_0202 ^ (case << 8));
        let config = random_config(&mut rng);
        let mut opt = MemorySystem::new(config);
        let mut refm = reference::MemorySystem::new(config);
        let windows = 2 + rng.below(3);
        for window in 0..windows {
            let trace = random_trace(&mut rng, 1200);
            for rec in &trace {
                opt.access(rec);
                refm.access(rec);
            }
            assert_same(case, window, &opt, &refm);
            // Randomized window boundary: accumulate, open a new stats
            // window (warm caches), or cold-reset the machine.
            match rng.below(4) {
                0 => {
                    opt.reset();
                    refm.reset();
                }
                1 | 2 => {
                    opt.reset_stats();
                    refm.reset_stats();
                    assert_same(case, window, &opt, &refm);
                }
                _ => {}
            }
        }
    }
}

#[test]
fn full_machines_agree_on_reports() {
    // End-to-end check through the `Machine` wrappers (shared CPU model
    // + both hierarchies): the `RunReport`s must be identical, warm and
    // cold, for the paper's actual DEC 3000/600 configuration.
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(0xC0DE_0002 ^ (case << 16));
        let trace = random_trace(&mut rng, 4000);
        let mut opt = alpha_machine::Machine::dec3000_600();
        let mut refm = reference::Machine::dec3000_600();
        let cold_o = opt.run(&trace);
        let cold_r = refm.run(&trace);
        assert_eq!(cold_o, cold_r, "case {case}: cold report");
        let warm_o = opt.run(&trace);
        let warm_r = refm.run(&trace);
        assert_eq!(warm_o, warm_r, "case {case}: warm report");
    }
}
