//! Ethernet II framing.
//!
//! Real wire format: destination and source MAC, EtherType, payload
//! padded to the 46-byte minimum, and a frame check sequence.  The FCS
//! here is a simple 32-bit sum (we need corruption *detection* for the
//! fault-injection tests, not IEEE CRC32 compatibility).

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    pub fn new(b: [u8; 6]) -> Self {
        MacAddr(b)
    }

    pub fn bytes(&self) -> &[u8; 6] {
        &self.0
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// EtherType values used by the stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    /// The x-kernel RPC suite rides directly on Ethernet in our model.
    Xrpc,
    Other(u16),
}

impl EtherType {
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Xrpc => 0x3007,
            EtherType::Other(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x3007 => EtherType::Xrpc,
            other => EtherType::Other(other),
        }
    }
}

/// Minimum frame size on the wire (header + payload + FCS).
pub const MIN_FRAME: usize = 64;
/// Maximum payload (MTU).
pub const MTU: usize = 1500;
/// Header: 6 + 6 + 2.
pub const HEADER: usize = 14;
/// FCS trailer.
pub const FCS: usize = 4;
/// Preamble + SFD transmitted before the frame.
pub const PREAMBLE: usize = 8;

/// An Ethernet frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
    pub payload: Vec<u8>,
}

impl Frame {
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Self {
        assert!(payload.len() <= MTU, "payload exceeds MTU");
        Frame { dst, src, ethertype, payload }
    }

    /// Bytes occupying the wire (header + padded payload + FCS), i.e.
    /// at least [`MIN_FRAME`].
    pub fn wire_len(&self) -> usize {
        (HEADER + self.payload.len() + FCS).max(MIN_FRAME)
    }

    /// The frame check sequence over `bytes` (header + padded payload).
    /// Public so the zero-copy wire codec (`protocols::wire`) computes
    /// the identical trailer without materializing a [`Frame`].
    ///
    /// The defining fold is `acc ← rotl5(acc) ^ byte` from
    /// `0xFFFF_FFFF` ([`Self::fcs_of_serial`]).  Both rotate and xor
    /// are linear over GF(2), so eight steps collapse into one:
    ///
    /// ```text
    /// acc₈ = rotl40(acc₀) ^ rotl35(b₀) ^ rotl30(b₁) ^ … ^ rotl5(b₆) ^ b₇
    /// ```
    ///
    /// with rotations mod 32 — every byte's contribution is independent
    /// of the accumulator, which breaks the loop-carried dependency the
    /// serial fold serializes on and lets the block run at full ILP.
    /// The block here is 16 bytes (acc rotates by 5·16 mod 32 = 16 per
    /// block).  Bit-identical to the serial fold for every input
    /// (pinned by `fcs_block_fold_matches_serial`).
    pub fn fcs_of(bytes: &[u8]) -> u32 {
        let mut acc = 0xFFFF_FFFFu32;
        let mut chunks = bytes.chunks_exact(16);
        for c in &mut chunks {
            // Byte i contributes rotl(5 * (15 - i) mod 32); split into
            // two independent xor trees so the scheduler overlaps them.
            let hi = (c[0] as u32).rotate_left(11)
                ^ (c[1] as u32).rotate_left(6)
                ^ (c[2] as u32).rotate_left(1)
                ^ (c[3] as u32).rotate_left(28)
                ^ (c[4] as u32).rotate_left(23)
                ^ (c[5] as u32).rotate_left(18)
                ^ (c[6] as u32).rotate_left(13)
                ^ (c[7] as u32).rotate_left(8);
            let lo = (c[8] as u32).rotate_left(3)
                ^ (c[9] as u32).rotate_left(30)
                ^ (c[10] as u32).rotate_left(25)
                ^ (c[11] as u32).rotate_left(20)
                ^ (c[12] as u32).rotate_left(15)
                ^ (c[13] as u32).rotate_left(10)
                ^ (c[14] as u32).rotate_left(5)
                ^ (c[15] as u32);
            acc = acc.rotate_left(16) ^ hi ^ lo;
        }
        for b in chunks.remainder() {
            acc = acc.rotate_left(5) ^ (*b as u32);
        }
        acc
    }

    /// The seed byte-serial FCS fold — the definition [`Self::fcs_of`]
    /// must match bit-for-bit.
    pub fn fcs_of_serial(bytes: &[u8]) -> u32 {
        bytes
            .iter()
            .fold(0xFFFF_FFFFu32, |acc, b| acc.rotate_left(5) ^ (*b as u32))
    }

    /// Serialize to wire bytes (with padding and FCS).
    pub fn to_bytes(&self) -> Vec<u8> {
        let padded = self.payload.len().max(MIN_FRAME - HEADER - FCS);
        let mut out = Vec::with_capacity(HEADER + padded + FCS);
        out.extend_from_slice(self.dst.bytes());
        out.extend_from_slice(self.src.bytes());
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out.resize(HEADER + padded, 0);
        let fcs = Self::fcs_of(&out);
        out.extend_from_slice(&fcs.to_be_bytes());
        out
    }

    /// Parse wire bytes; verifies the FCS.  The original payload length
    /// is unrecoverable after padding (like real Ethernet) — upper
    /// layers carry their own lengths.
    pub fn from_bytes(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < MIN_FRAME {
            return Err(FrameError::Runt(bytes.len()));
        }
        let body = &bytes[..bytes.len() - FCS];
        let fcs = u32::from_be_bytes(bytes[bytes.len() - FCS..].try_into().unwrap());
        if Self::fcs_of(body) != fcs {
            return Err(FrameError::BadFcs);
        }
        let dst = MacAddr(body[0..6].try_into().unwrap());
        let src = MacAddr(body[6..12].try_into().unwrap());
        let ethertype = EtherType::from_u16(u16::from_be_bytes([body[12], body[13]]));
        Ok(Frame { dst, src, ethertype, payload: body[HEADER..].to_vec() })
    }
}

/// Frame parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the Ethernet minimum.
    Runt(usize),
    /// Frame check sequence mismatch (corruption).
    BadFcs,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Runt(n) => write!(f, "runt frame of {n} bytes"),
            FrameError::BadFcs => write!(f, "bad frame check sequence"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Frame {
        Frame::new(
            MacAddr([2, 0, 0, 0, 0, 1]),
            MacAddr([2, 0, 0, 0, 0, 2]),
            EtherType::Ipv4,
            payload.to_vec(),
        )
    }

    #[test]
    fn min_frame_is_64_bytes() {
        let f = frame(b"x");
        assert_eq!(f.wire_len(), 64);
        assert_eq!(f.to_bytes().len(), 64);
    }

    #[test]
    fn large_frame_keeps_length() {
        let f = frame(&[0u8; 1000]);
        assert_eq!(f.wire_len(), 14 + 1000 + 4);
    }

    #[test]
    fn roundtrip_preserves_payload_prefix() {
        let f = frame(b"hello world");
        let parsed = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed.dst, f.dst);
        assert_eq!(parsed.src, f.src);
        assert_eq!(parsed.ethertype, f.ethertype);
        assert!(parsed.payload.starts_with(b"hello world"));
        assert_eq!(parsed.payload.len(), 46, "padded to minimum");
    }

    #[test]
    fn corruption_detected_by_fcs() {
        let mut bytes = frame(b"payload").to_bytes();
        bytes[20] ^= 0x40;
        assert_eq!(Frame::from_bytes(&bytes), Err(FrameError::BadFcs));
    }

    #[test]
    fn runt_rejected() {
        assert!(matches!(
            Frame::from_bytes(&[0u8; 10]),
            Err(FrameError::Runt(10))
        ));
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversize_payload_panics() {
        frame(&[0u8; 1501]);
    }

    #[test]
    fn ethertype_roundtrip() {
        for et in [EtherType::Ipv4, EtherType::Xrpc, EtherType::Other(0x86dd)] {
            assert_eq!(EtherType::from_u16(et.to_u16()), et);
        }
    }

    #[test]
    fn fcs_block_fold_matches_serial() {
        // Every length 0..600 covers all eight remainder cases many
        // times over; contents come from a seeded LCG so the fold sees
        // arbitrary bit patterns, not just zeros.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut buf = Vec::with_capacity(600);
        for len in 0..600 {
            buf.clear();
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                buf.push((state >> 56) as u8);
            }
            assert_eq!(
                Frame::fcs_of(&buf),
                Frame::fcs_of_serial(&buf),
                "block fold diverged from the serial definition at len {len}"
            );
        }
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([2, 0, 0, 0, 0, 0x1a]).to_string(),
            "02:00:00:00:00:1a"
        );
    }
}
