//! Lock-free bounded rings for the traffic dispatch plane.
//!
//! The serving loop's scaling story (nanoPU, Laminar) is that at
//! saturation the *hand-off* between pipeline stages — not the protocol
//! work itself — sets the tail.  This module provides the two hand-off
//! primitives the dispatch plane is built from, with zero crates.io
//! dependencies:
//!
//! * [`spsc`] — a bounded single-producer/single-consumer ring.  The
//!   producer and consumer sides are separate owned handles
//!   ([`SpscProducer`] / [`SpscConsumer`]), each keeping a *cached* copy
//!   of the opposite index so the fast path touches only its own
//!   cache-line-padded atomic (the classic Lamport ring refinement:
//!   coherence traffic only when the cached view runs out).  Batch
//!   push/pop amortize one release/acquire pair over a whole slice.
//! * [`MpscRing`] — a bounded Vyukov-style sequence-stamped ring used
//!   as each executor's *injector*: many producers (the workload
//!   generator waking parked lanes, peer executors handing lanes back)
//!   and one primary consumer.  Dequeue is CAS-based, so an idle
//!   executor may *steal* from a peer's injector without extra
//!   machinery — multi-consumer safety is part of the algorithm.
//!
//! Both rings are power-of-two sized and allocation-free after
//! construction.  Correctness (no lost or duplicated element, FIFO per
//! producer) is exercised three ways in `netsim/tests/ring_interleave.rs`:
//! exhaustive small-capacity schedule enumeration, seeded random
//! schedules, and real-thread stress — the loom-style discipline with
//! the interleavings we can drive deterministically in-tree.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads and aligns a value to a 128-byte boundary (two 64-byte lines —
/// adjacent-line prefetchers pull pairs), so neighbouring atomics never
/// false-share.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

/// Shared storage of one SPSC ring.
struct SpscShared<T> {
    mask: usize,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will pop (written only by the consumer).
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will fill (written only by the producer).
    tail: CachePadded<AtomicUsize>,
}

// Safety: slots are only touched by the side that owns them per the
// head/tail protocol; the handles enforce unique producer and consumer.
unsafe impl<T: Send> Send for SpscShared<T> {}
unsafe impl<T: Send> Sync for SpscShared<T> {}

impl<T> Drop for SpscShared<T> {
    fn drop(&mut self) {
        // Sole owner at this point: plain loads are fine.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// Create a bounded SPSC ring of `capacity` slots (power of two).
/// Returns the two endpoint handles; each is `Send`, so the consumer
/// can migrate between executor threads under the lane-ownership
/// protocol while the producer stays with the generator.
pub fn spsc<T: Send>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    assert!(capacity.is_power_of_two(), "ring capacity must be a power of two");
    let shared = Arc::new(SpscShared {
        mask: capacity - 1,
        buf: (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        SpscProducer { shared: Arc::clone(&shared), tail: 0, head_cache: 0 },
        SpscConsumer { shared, head: 0, tail_cache: 0 },
    )
}

/// The producing endpoint.  `tail` is authoritative (only this handle
/// writes it); `head_cache` is refreshed from the shared atomic only
/// when the ring looks full.
pub struct SpscProducer<T> {
    shared: Arc<SpscShared<T>>,
    tail: usize,
    head_cache: usize,
}

impl<T: Send> SpscProducer<T> {
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Free slots, refreshing the cached consumer index if needed.
    pub fn free_space(&mut self) -> usize {
        let cap = self.capacity();
        if self.tail - self.head_cache == cap {
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
        }
        cap - (self.tail - self.head_cache)
    }

    /// Push one element; returns it back if the ring is full.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        if self.free_space() == 0 {
            return Err(v);
        }
        unsafe { (*self.shared.buf[self.tail & self.shared.mask].get()).write(v) };
        self.tail += 1;
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Batch push: copies as many elements of `items` as fit and
    /// publishes them with a single release store.  Returns how many
    /// were taken (a prefix of `items`).
    pub fn push_slice(&mut self, items: &[T]) -> usize
    where
        T: Copy,
    {
        let n = self.free_space().min(items.len());
        for (i, &v) in items.iter().take(n).enumerate() {
            unsafe { (*self.shared.buf[(self.tail + i) & self.shared.mask].get()).write(v) };
        }
        if n > 0 {
            self.tail += n;
            self.shared.tail.0.store(self.tail, Ordering::Release);
        }
        n
    }
}

/// The consuming endpoint.  `head` is authoritative; `tail_cache` is
/// refreshed only when the ring looks empty.
pub struct SpscConsumer<T> {
    shared: Arc<SpscShared<T>>,
    head: usize,
    tail_cache: usize,
}

impl<T: Send> SpscConsumer<T> {
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// A detached occupancy probe on this ring (see [`SpscProbe`]).
    pub fn probe(&self) -> SpscProbe<T> {
        SpscProbe { shared: Arc::clone(&self.shared) }
    }

    /// Elements currently available, refreshing the cached producer
    /// index if the cached view is exhausted.
    pub fn available(&mut self) -> usize {
        if self.tail_cache == self.head {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
        }
        self.tail_cache - self.head
    }

    /// Pop one element.
    pub fn pop(&mut self) -> Option<T> {
        if self.available() == 0 {
            return None;
        }
        let v = unsafe { (*self.shared.buf[self.head & self.shared.mask].get()).assume_init_read() };
        self.head += 1;
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Batch pop: moves up to `max` elements into `out`, releasing the
    /// slots with a single store.  Returns how many were moved.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let n = self.available().min(max);
        out.reserve(n);
        for i in 0..n {
            out.push(unsafe {
                (*self.shared.buf[(self.head + i) & self.shared.mask].get()).assume_init_read()
            });
        }
        if n > 0 {
            self.head += n;
            self.shared.head.0.store(self.head, Ordering::Release);
        }
        n
    }
}

/// A read-only occupancy probe on an SPSC ring, detached from the
/// consumer's cached-index fast path.  Any thread may hold one; it
/// reads both shared atomics directly.  The dispatch plane re-checks a
/// lane's probe *after* publishing the lane as parked, closing the
/// push-versus-park race without touching the (possibly already
/// re-claimed) consumer handle.
pub struct SpscProbe<T> {
    shared: Arc<SpscShared<T>>,
}

impl<T> Clone for SpscProbe<T> {
    fn clone(&self) -> Self {
        SpscProbe { shared: Arc::clone(&self.shared) }
    }
}

impl<T> SpscProbe<T> {
    /// Elements currently in the ring (racy snapshot).
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        let head = self.shared.head.0.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One sequence-stamped MPSC slot.
struct MpscSlot<T> {
    /// Vyukov stamp: equals the slot's logical position when free for a
    /// producer at that position, position + 1 when filled for the
    /// consumer, and advances by `capacity` per lap.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer injector ring (Vyukov sequence-stamped).
/// The dispatch plane gives each executor one: the generator and peer
/// executors push runnable lane ids; the owner pops them — and because
/// dequeue is CAS-claimed, a *dry* peer can steal from this injector
/// directly, which is the work-stealing hand-off.
pub struct MpscRing<T> {
    mask: usize,
    buf: Box<[MpscSlot<T>]>,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

unsafe impl<T: Send> Send for MpscRing<T> {}
unsafe impl<T: Send> Sync for MpscRing<T> {}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        // Sole owner: any slot whose stamp reads position + 1 holds a
        // live element.
        let deq = self.dequeue_pos.0.load(Ordering::Relaxed);
        let enq = self.enqueue_pos.0.load(Ordering::Relaxed);
        for pos in deq..enq {
            let slot = &self.buf[pos & self.mask];
            if slot.seq.load(Ordering::Relaxed) == pos + 1 {
                unsafe { (*slot.val.get()).assume_init_drop() };
            }
        }
    }
}

impl<T: Send> MpscRing<T> {
    /// `capacity` must be a power of two and at least 2: with a single
    /// slot the sequence stamps alias — a producer one lap ahead reads
    /// the *filled* stamp (`pos + 1`) as its own free stamp
    /// (`pos + capacity`) and would overwrite a live element.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two(), "ring capacity must be a power of two");
        assert!(capacity >= 2, "Vyukov stamps alias at capacity 1");
        MpscRing {
            mask: capacity - 1,
            buf: (0..capacity)
                .map(|i| MpscSlot { seq: AtomicUsize::new(i), val: UnsafeCell::new(MaybeUninit::uninit()) })
                .collect(),
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Approximate occupancy (racy, for diagnostics only).
    pub fn len(&self) -> usize {
        let enq = self.enqueue_pos.0.load(Ordering::Relaxed);
        let deq = self.dequeue_pos.0.load(Ordering::Relaxed);
        enq.saturating_sub(deq)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push from any thread; returns the value back if the ring is full.
    pub fn push(&self, v: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot free at our position: claim it.
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.val.get()).write(v) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(p) => pos = p,
                }
            } else if seq < pos {
                // A full lap behind: ring is full.
                return Err(v);
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop from any thread (CAS-claimed, so stealing consumers are
    /// safe).  Returns `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                // Filled at our position: claim it.
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = unsafe { (*slot.val.get()).assume_init_read() };
                        // Free the slot for the producer one lap ahead.
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(v);
                    }
                    Err(p) => pos = p,
                }
            } else if seq <= pos {
                // Not yet filled: empty at this position.
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_push_pop_fifo() {
        let (mut p, mut c) = spsc::<u32>(8);
        for i in 0..8 {
            p.push(i).unwrap();
        }
        assert!(p.push(99).is_err(), "ring must report full");
        for i in 0..8 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn spsc_wraps_across_many_laps() {
        let (mut p, mut c) = spsc::<usize>(4);
        for lap in 0..1000usize {
            for i in 0..3 {
                p.push(lap * 3 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(c.pop(), Some(lap * 3 + i));
            }
        }
    }

    #[test]
    fn spsc_batch_push_pop() {
        let (mut p, mut c) = spsc::<u64>(16);
        let items: Vec<u64> = (0..40).collect();
        let mut popped = Vec::new();
        let mut offset = 0;
        while popped.len() < items.len() {
            offset += p.push_slice(&items[offset..]);
            c.pop_batch(&mut popped, 7);
        }
        assert_eq!(popped, items);
    }

    #[test]
    fn spsc_drops_undelivered_elements() {
        use std::sync::atomic::AtomicU64;
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut p, c) = spsc::<D>(8);
        for _ in 0..5 {
            assert!(p.push(D).is_ok());
        }
        drop(p);
        drop(c);
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn mpsc_push_pop_fifo_single_thread() {
        let q = MpscRing::<u32>::new(8);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        assert!(q.push(99).is_err());
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn mpsc_wraps_and_refills() {
        let q = MpscRing::<usize>::new(4);
        for lap in 0..500usize {
            q.push(lap).unwrap();
            q.push(lap + 1_000_000).unwrap();
            assert_eq!(q.pop(), Some(lap));
            assert_eq!(q.pop(), Some(lap + 1_000_000));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn mpsc_drop_releases_live_elements() {
        use std::sync::atomic::AtomicU64;
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let q = MpscRing::<D>::new(8);
        for _ in 0..3 {
            assert!(q.push(D).is_ok());
        }
        assert!(q.pop().is_some()); // one dropped here
        drop(q); // two dropped here
        assert_eq!(DROPS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn probe_tracks_occupancy_across_push_pop() {
        let (mut p, mut c) = spsc::<u8>(8);
        let probe = c.probe();
        assert!(probe.is_empty());
        for i in 0..5 {
            p.push(i).unwrap();
        }
        assert_eq!(probe.len(), 5);
        c.pop().unwrap();
        assert_eq!(probe.len(), 4);
        let probe2 = probe.clone();
        while c.pop().is_some() {}
        assert!(probe2.is_empty());
    }

    #[test]
    fn cache_padded_is_line_aligned() {
        assert!(std::mem::align_of::<CachePadded<AtomicUsize>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<AtomicUsize>>() >= 128);
    }
}
