//! Pooled packet buffers: a cache-line-aligned arena with free-list
//! recycling and generation-checked handles.
//!
//! The wire data plane (`protocols::wire` + the traffic lanes) encodes
//! every message into real frame bytes; doing that with per-packet
//! `Vec` allocations would put the allocator on the hot path — exactly
//! the cost Laminar-style stacks design out.  [`BufPool`] preallocates
//! a slab of [`BUF_CAP`]-byte, 64-byte-aligned buffers and hands out
//! [`PktBuf`] handles; `free` pushes the slot back on a LIFO free list
//! (the most recently used buffer is the cache-warmest), so after the
//! pool's high-water mark is reached the steady state performs **zero**
//! heap allocations — [`PoolStats::grows`] counts the exceptions and
//! the wire bench asserts it stays 0.
//!
//! Handles carry a generation stamp, the same discipline as the timing
//! wheel's slab arena (`netsim::sched`): `free` bumps the slot's
//! generation, so a stale handle (use-after-free) or a second `free`
//! (double-free) is detected and reported as a typed [`BufError`]
//! instead of silently aliasing a recycled buffer.

/// Capacity of every pooled buffer: one full Ethernet frame (MTU
/// payload + header + FCS) rounded up to a cache-line multiple.
pub const BUF_CAP: usize = 1536;

/// One pooled buffer's backing storage, aligned to a cache line so a
/// minimum frame spans exactly one line.
#[repr(align(64))]
#[derive(Clone)]
struct Block([u8; BUF_CAP]);

/// A generation-checked handle to one pooled buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PktBuf {
    idx: u32,
    gen: u32,
}

/// Pool misuse, detected by the generation stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufError {
    /// The handle's slot index is beyond the arena.
    BadIndex(u32),
    /// The handle's generation does not match the slot (freed and
    /// possibly recycled since): use-after-free or double-free.
    StaleGeneration { idx: u32, handle_gen: u32, slot_gen: u32 },
}

impl std::fmt::Display for BufError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufError::BadIndex(i) => write!(f, "buffer index {i} beyond pool"),
            BufError::StaleGeneration { idx, handle_gen, slot_gen } => write!(
                f,
                "stale buffer handle: slot {idx} generation {slot_gen}, handle {handle_gen}"
            ),
        }
    }
}

impl std::error::Error for BufError {}

/// Allocation counters, mergeable across lanes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out.
    pub allocs: u64,
    /// Buffers returned.
    pub frees: u64,
    /// Allocations served by recycling a previously freed slot.
    pub recycled: u64,
    /// Slab growths past the initial capacity — heap allocations after
    /// construction.  Zero in a healthy steady state.
    pub grows: u64,
    /// Maximum buffers simultaneously outstanding.
    pub high_water: u64,
}

impl PoolStats {
    /// Fraction of allocations served without touching fresh slots.
    pub fn recycle_rate(&self) -> f64 {
        if self.allocs == 0 {
            0.0
        } else {
            self.recycled as f64 / self.allocs as f64
        }
    }

    /// Accumulate another pool's counters (per-lane pools merge into
    /// the run report).
    pub fn merge(&mut self, other: &PoolStats) {
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.recycled += other.recycled;
        self.grows += other.grows;
        // High-water marks of disjoint pools add: the lanes' buffers
        // are simultaneously outstanding.
        self.high_water += other.high_water;
    }
}

/// The buffer pool: slab of aligned blocks + parallel per-slot
/// metadata + LIFO free list.
pub struct BufPool {
    blocks: Vec<Block>,
    /// Per-slot generation stamp; bumped on free so old handles die.
    gens: Vec<u32>,
    /// Per-slot live flag (generation parity cannot express "freed
    /// twice in a row", so liveness is tracked explicitly).
    live: Vec<bool>,
    /// Slots ready for reuse, most recently freed last.
    free: Vec<u32>,
    /// Slots never yet handed out, below this index all used.
    next_fresh: u32,
    in_use: u64,
    stats: PoolStats,
}

impl BufPool {
    /// A pool with `capacity` preallocated buffers.  Steady states
    /// within `capacity` outstanding buffers never allocate again.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pool needs at least one buffer");
        BufPool {
            blocks: vec![Block([0u8; BUF_CAP]); capacity],
            gens: vec![0; capacity],
            live: vec![false; capacity],
            free: Vec::with_capacity(capacity),
            next_fresh: 0,
            in_use: 0,
            stats: PoolStats::default(),
        }
    }

    /// Number of slots in the arena (including free ones).
    pub fn capacity(&self) -> usize {
        self.blocks.len()
    }

    /// Buffers currently outstanding.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// The counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Hand out a buffer.  Prefers the most recently freed slot (cache
    /// warmth), then fresh slots, and only grows the slab when every
    /// slot is outstanding (counted in [`PoolStats::grows`]).
    pub fn alloc(&mut self) -> PktBuf {
        self.stats.allocs += 1;
        let idx = if let Some(idx) = self.free.pop() {
            self.stats.recycled += 1;
            idx
        } else if (self.next_fresh as usize) < self.blocks.len() {
            let idx = self.next_fresh;
            self.next_fresh += 1;
            idx
        } else {
            self.stats.grows += 1;
            self.blocks.push(Block([0u8; BUF_CAP]));
            self.gens.push(0);
            self.live.push(false);
            self.next_fresh += 1;
            self.next_fresh - 1
        };
        self.live[idx as usize] = true;
        self.in_use += 1;
        self.stats.high_water = self.stats.high_water.max(self.in_use);
        PktBuf { idx, gen: self.gens[idx as usize] }
    }

    fn check(&self, h: PktBuf) -> Result<usize, BufError> {
        let i = h.idx as usize;
        if i >= self.blocks.len() {
            return Err(BufError::BadIndex(h.idx));
        }
        if !self.live[i] || self.gens[i] != h.gen {
            return Err(BufError::StaleGeneration {
                idx: h.idx,
                handle_gen: h.gen,
                slot_gen: self.gens[i],
            });
        }
        Ok(i)
    }

    /// Return a buffer to the pool.  Detects double-free and stale
    /// handles via the generation stamp.
    pub fn free(&mut self, h: PktBuf) -> Result<(), BufError> {
        let i = self.check(h)?;
        self.live[i] = false;
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(h.idx);
        self.in_use -= 1;
        self.stats.frees += 1;
        Ok(())
    }

    /// The buffer's bytes (full [`BUF_CAP`] capacity).
    pub fn bytes(&self, h: PktBuf) -> Result<&[u8], BufError> {
        let i = self.check(h)?;
        Ok(&self.blocks[i].0)
    }

    /// The buffer's bytes, mutably.
    pub fn bytes_mut(&mut self, h: PktBuf) -> Result<&mut [u8], BufError> {
        let i = self.check(h)?;
        Ok(&mut self.blocks[i].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_recycles_without_growth() {
        let mut pool = BufPool::new(4);
        for _ in 0..100 {
            let h = pool.alloc();
            pool.bytes_mut(h).unwrap()[0] = 0xAB;
            pool.free(h).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.allocs, 100);
        assert_eq!(s.frees, 100);
        assert_eq!(s.grows, 0, "steady state must not allocate");
        assert_eq!(s.high_water, 1);
        assert_eq!(s.recycled, 99, "all but the first alloc recycle");
        assert!(s.recycle_rate() > 0.98);
        assert_eq!(pool.in_use(), 0, "no leaked buffers");
    }

    #[test]
    fn double_free_is_detected() {
        let mut pool = BufPool::new(2);
        let h = pool.alloc();
        pool.free(h).unwrap();
        assert!(matches!(pool.free(h), Err(BufError::StaleGeneration { .. })));
    }

    #[test]
    fn stale_handle_rejected_after_recycle() {
        let mut pool = BufPool::new(2);
        let old = pool.alloc();
        pool.free(old).unwrap();
        let new = pool.alloc(); // recycles the same slot, new generation
        assert_eq!(new.idx, old.idx);
        assert!(pool.bytes(old).is_err(), "use-after-free must fail");
        assert!(pool.bytes(new).is_ok());
        assert!(matches!(pool.free(old), Err(BufError::StaleGeneration { .. })));
    }

    #[test]
    fn bad_index_rejected() {
        let pool = BufPool::new(1);
        let forged = PktBuf { idx: 99, gen: 0 };
        assert_eq!(pool.bytes(forged).unwrap_err(), BufError::BadIndex(99));
    }

    #[test]
    fn buffers_are_cache_line_aligned() {
        let mut pool = BufPool::new(8);
        let hs: Vec<PktBuf> = (0..8).map(|_| pool.alloc()).collect();
        for &h in &hs {
            let p = pool.bytes(h).unwrap().as_ptr() as usize;
            assert_eq!(p % 64, 0, "buffer not 64-byte aligned");
        }
        for h in hs {
            pool.free(h).unwrap();
        }
    }

    #[test]
    fn growth_beyond_capacity_is_counted() {
        let mut pool = BufPool::new(2);
        let a = pool.alloc();
        let b = pool.alloc();
        let c = pool.alloc(); // exceeds capacity: must grow
        assert_eq!(pool.stats().grows, 1);
        assert_eq!(pool.stats().high_water, 3);
        for h in [a, b, c] {
            pool.free(h).unwrap();
        }
        // Grown slot joins the free list like any other.
        let _ = pool.alloc();
        assert_eq!(pool.stats().grows, 1);
    }

    #[test]
    fn lifo_recycling_prefers_warmest() {
        let mut pool = BufPool::new(4);
        let a = pool.alloc();
        let b = pool.alloc();
        pool.free(a).unwrap();
        pool.free(b).unwrap();
        // b freed last => handed out first.
        assert_eq!(pool.alloc().idx, b.idx);
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = PoolStats { allocs: 10, frees: 10, recycled: 8, grows: 0, high_water: 2 };
        let b = PoolStats { allocs: 5, frees: 4, recycled: 1, grows: 1, high_water: 3 };
        a.merge(&b);
        assert_eq!(a, PoolStats { allocs: 15, frees: 14, recycled: 9, grows: 1, high_water: 5 });
    }
}
