//! A tiny, dependency-free deterministic PRNG.
//!
//! SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014) — a 64-bit state, passes BigCrush, and is
//! trivially seedable, which is all the fault injector and the seeded
//! property tests need.  Not cryptographic.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in [0, n).  `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift (Lemire): unbiased enough for simulation use.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform usize in [lo, hi).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Random bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_first_outputs() {
        // Reference values for seed 0 from the SplitMix64 reference
        // implementation (Vigna).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn seeds_diverge() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }
}
