//! Low-overhead sampling primitives for online profiling.
//!
//! The adaptive layout loop (`traffic::adapt`) observes the serving hot
//! path, so its collectors must be allocation-free after construction
//! and cost a handful of arithmetic instructions per event:
//!
//! * [`StrideSampler`] — keep every `stride`-th event.  Deterministic,
//!   branch-predictable, and trivially rate-controlled; the profiler's
//!   default because a deterministic simulation has no sampling-bias
//!   adversary.
//! * [`Reservoir`] — classic Algorithm R over the in-tree
//!   [`SplitMix64`](crate::rng::SplitMix64): a uniform fixed-size sample
//!   of an unbounded stream, for collectors that need a bounded memory
//!   footprint independent of the sampling rate.

use crate::rng::SplitMix64;

/// Keep every `stride`-th event (the first event of each stride is the
/// one kept).  A `stride` of 0 disables sampling entirely: `tick()`
/// never returns `true`, so a disabled profiler is a pair of no-op
/// integer operations on the hot path.
#[derive(Debug, Clone)]
pub struct StrideSampler {
    stride: u32,
    phase: u32,
}

impl StrideSampler {
    pub fn new(stride: u32) -> Self {
        StrideSampler { stride, phase: 0 }
    }

    /// True when sampling is disabled (stride 0).
    pub fn is_off(&self) -> bool {
        self.stride == 0
    }

    /// Advance one event; returns whether this event is sampled.
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.stride == 0 {
            return false;
        }
        let hit = self.phase == 0;
        self.phase += 1;
        if self.phase == self.stride {
            self.phase = 0;
        }
        hit
    }

    /// Restart the stride phase (e.g. after a profile window closes).
    pub fn reset(&mut self) {
        self.phase = 0;
    }
}

/// Fixed-capacity uniform reservoir (Vitter's Algorithm R) with a
/// seeded deterministic RNG.  The buffer is allocated once at
/// construction; `offer` never allocates.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
    rng: SplitMix64,
}

impl<T> Reservoir<T> {
    pub fn new(capacity: usize, seed: u64) -> Self {
        Reservoir {
            items: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Offer one stream element; it is kept with probability
    /// `capacity / seen`.
    #[inline]
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = self.rng.below(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Elements currently held (up to `capacity`).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Stream length observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drop the sample and the stream count; the RNG keeps its state so
    /// successive windows draw different (but still seed-deterministic)
    /// keep decisions.
    pub fn clear(&mut self) {
        self.items.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_keeps_every_nth() {
        let mut s = StrideSampler::new(4);
        let kept: Vec<bool> = (0..10).map(|_| s.tick()).collect();
        assert_eq!(
            kept,
            [true, false, false, false, true, false, false, false, true, false]
        );
    }

    #[test]
    fn stride_one_keeps_all() {
        let mut s = StrideSampler::new(1);
        assert!((0..8).all(|_| s.tick()));
    }

    #[test]
    fn stride_zero_keeps_none() {
        let mut s = StrideSampler::new(0);
        assert!(s.is_off());
        assert!((0..8).all(|_| !s.tick()));
    }

    #[test]
    fn stride_reset_restarts_phase() {
        let mut s = StrideSampler::new(3);
        assert!(s.tick());
        assert!(!s.tick());
        s.reset();
        assert!(s.tick());
    }

    #[test]
    fn reservoir_fills_then_stays_at_capacity() {
        let mut r = Reservoir::new(8, 42);
        for i in 0..100u32 {
            r.offer(i);
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.seen(), 100);
        // Everything held came from the stream.
        assert!(r.items().iter().all(|&x| x < 100));
    }

    #[test]
    fn reservoir_short_stream_keeps_everything() {
        let mut r = Reservoir::new(16, 1);
        for i in 0..5u32 {
            r.offer(i);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn reservoir_is_seed_deterministic() {
        let run = |seed| {
            let mut r = Reservoir::new(8, seed);
            for i in 0..1000u32 {
                r.offer(i);
            }
            r.items().to_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        // Mean of a uniform sample of 0..n should be near n/2; average
        // over many seeds to keep the tolerance honest.
        let n = 1000u32;
        let mut total = 0u64;
        let mut count = 0u64;
        for seed in 0..32 {
            let mut r = Reservoir::new(16, seed);
            for i in 0..n {
                r.offer(i);
            }
            total += r.items().iter().map(|&x| x as u64).sum::<u64>();
            count += r.len() as u64;
        }
        let mean = total as f64 / count as f64;
        assert!(
            (mean - 500.0).abs() < 75.0,
            "reservoir mean {mean:.1} far from uniform expectation 500"
        );
    }

    #[test]
    fn reservoir_clear_resets_stream_but_not_rng() {
        let mut r = Reservoir::new(4, 3);
        for i in 0..50u32 {
            r.offer(i);
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
        for i in 0..50u32 {
            r.offer(i);
        }
        assert_eq!(r.len(), 4);
    }
}
