//! A hierarchical timing-wheel event scheduler — the cache-conscious
//! replacement for the comparison-based heap in [`crate::engine`].
//!
//! The paper's lens is that latency lives in the memory system, and the
//! discrete-event engine under the traffic run loop is exactly the kind
//! of hot-path container it indicts: a binary heap pays O(log n)
//! pointer-chasing sifts for every arrival, delivery, RTO timer and
//! think-time wakeup.  [`Wheel`] replaces it with the classic
//! Varghese–Lauck hashed hierarchical wheel:
//!
//! * **Power-of-two slot wheels** — 11 levels of 64 slots (6 bits per
//!   level, 66 ≥ 64 bits), so the full `u64` nanosecond range files
//!   without an overflow list.  Level `l` slot `s` holds events whose
//!   deadline shares the filing anchor's digits above level `l` and has
//!   digit `s` at level `l`; an insert is a shift, a mask and a
//!   list push — O(1), no comparisons.
//! * **Slab event arena** — events live in a `Vec` of nodes linked by
//!   `u32` indices with a free list, so scheduling never allocates per
//!   event once the arena has grown to the high-water mark, and slot
//!   lists are index-linked rather than pointer-chased boxes.
//! * **Cascading on rollover** — when the wheel's internal cursor
//!   crosses a level-`l` slot boundary, that slot's events re-file at
//!   strictly lower levels (their remaining delta has fewer significant
//!   bits), so each event is touched at most once per level on its way
//!   down to an exact level-0 slot.
//! * **Batched delivery** — a matured level-0 slot (one exact
//!   timestamp) is drained into a reusable batch buffer and sorted by
//!   sequence number once, so dispatch stops interleaving with queue
//!   restructuring and FIFO stability at equal timestamps is exact.
//! * **O(1) cancellation** — [`Wheel::schedule_cancellable`] returns a
//!   generation-checked [`CancelToken`]; cancelling tombstones the slab
//!   node in place (the payload drops immediately) and the husk is
//!   reclaimed when its slot matures or cascades.  A superseded RTO
//!   timer costs a flag write instead of a delivered-and-ignored event.
//!
//! Semantics are bit-compatible with the reference heap
//! ([`crate::engine::reference`]): total order by `(time, seq)`, FIFO
//! stability for equal timestamps, `schedule_in` past-clamping and
//! saturation at `Ns::MAX`, and identical `run_until` Overrun
//! accounting.  The `sched_props` suite drives both engines through
//! seeded random schedule/cancel/run_until mixes and asserts the event
//! traces match exactly.

use crate::engine::Overrun;
use crate::Ns;

/// Bits per wheel level (64 slots).
pub const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Levels: 11 × 6 = 66 bits ≥ the full 64-bit nanosecond range.
pub const LEVELS: usize = 11;

const NIL: u32 = u32::MAX;

/// Handle to a cancellable scheduled event.  Generation-checked: a
/// token is dead once its event has been delivered or cancelled, and a
/// dead token can never alias a recycled arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelToken {
    idx: u32,
    gen: u32,
}

/// One arena node: an event plus its intrusive slot-list link.
#[derive(Debug)]
struct Node<E> {
    at: Ns,
    seq: u64,
    next: u32,
    gen: u32,
    /// `None` marks a tombstone (cancelled, payload already dropped).
    payload: Option<E>,
}

/// The common scheduler interface, implemented by the timing wheel and
/// by the reference heap, so consumers (the traffic run loop, the
/// equivalence suites, `engine_bench`) can run generically over either.
pub trait EventQueue<E> {
    /// Engine-specific cancellation handle.
    type Token: Copy + std::fmt::Debug;

    /// Current simulation time.
    fn now(&self) -> Ns;
    /// Schedule `payload` at absolute time `at` (clamped to now).
    fn schedule(&mut self, at: Ns, payload: E);
    /// Schedule `payload` `delay` after now (saturating at `Ns::MAX`).
    fn schedule_in(&mut self, delay: Ns, payload: E);
    /// Schedule with a cancellation handle.
    fn schedule_cancellable(&mut self, at: Ns, payload: E) -> Self::Token;
    /// Cancel a pending event in O(1).  Returns `false` if the event
    /// was already delivered or cancelled.
    fn cancel(&mut self, token: Self::Token) -> bool;
    /// Pop the next event in `(time, seq)` order, advancing the clock.
    fn pop(&mut self) -> Option<(Ns, E)>;
    /// Time of the next pending event.  `&mut` because the wheel may
    /// cascade internally to locate it.
    fn peek_time(&mut self) -> Option<Ns>;
    /// Live (scheduled, uncancelled, undelivered) event count.
    fn pending(&self) -> usize;
    /// Total events popped over the engine's lifetime.
    fn processed(&self) -> u64;
    /// Advance the clock without an event.
    fn advance(&mut self, delta: Ns);
    fn is_idle(&self) -> bool {
        self.pending() == 0
    }
    /// Dispatch through `handler` until drained, a deadline pass, or an
    /// exhausted event budget (see [`crate::engine::Engine::run_until`]).
    fn run_until<F>(&mut self, deadline: Ns, max_events: u64, handler: F) -> Result<u64, Overrun>
    where
        F: FnMut(&mut Self, Ns, E),
        Self: Sized,
    {
        drive(self, deadline, max_events, handler)
    }
}

/// The shared `run_until` driver: identical Overrun accounting for
/// every [`EventQueue`] implementation.
pub(crate) fn drive<E, Q, F>(
    q: &mut Q,
    deadline: Ns,
    max_events: u64,
    mut handler: F,
) -> Result<u64, Overrun>
where
    Q: EventQueue<E>,
    F: FnMut(&mut Q, Ns, E),
{
    let start = q.processed();
    loop {
        let dispatched = q.processed() - start;
        let Some(next) = q.peek_time() else {
            return Ok(dispatched);
        };
        if next > deadline {
            return Err(Overrun::Deadline {
                deadline,
                now: q.now(),
                pending: q.pending(),
                processed: dispatched,
            });
        }
        if dispatched >= max_events {
            return Err(Overrun::EventBudget {
                budget: max_events,
                now: q.now(),
                pending: q.pending(),
            });
        }
        let (t, e) = q.pop().expect("peeked event must pop");
        handler(q, t, e);
    }
}

/// The hierarchical timing wheel.  See the module docs for the layout.
#[derive(Debug)]
pub struct Wheel<E> {
    slab: Vec<Node<E>>,
    free: u32,
    /// Slot-list heads, `head[level][slot]` (push-front; drain order is
    /// restored by the per-batch seq sort).
    head: Box<[[u32; SLOTS]; LEVELS]>,
    /// One occupancy bit per slot per level.
    occupied: [u64; LEVELS],
    /// Internal filing anchor: `cursor` ≤ every deadline still filed in
    /// the wheel.  Advances monotonically as slots mature.
    cursor: Ns,
    now: Ns,
    seq: u64,
    processed: u64,
    /// Scheduled events not yet delivered or cancelled (wheel + batch).
    live: usize,
    /// The matured slot being dispatched: arena indices sorted by
    /// `(at, seq)`.  Reused across drains.
    batch: Vec<u32>,
    batch_pos: usize,
}

impl<E> Default for Wheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Level at which a deadline files relative to `anchor`: the position
/// of their highest differing bit, divided into 6-bit digits.
#[inline]
fn level_of(at: Ns, anchor: Ns) -> usize {
    let x = at ^ anchor;
    if x == 0 {
        0
    } else {
        (63 - x.leading_zeros()) as usize / SLOT_BITS as usize
    }
}

impl<E> Wheel<E> {
    pub fn new() -> Self {
        Wheel {
            slab: Vec::new(),
            free: NIL,
            head: Box::new([[NIL; SLOTS]; LEVELS]),
            occupied: [0; LEVELS],
            cursor: 0,
            now: 0,
            seq: 0,
            processed: 0,
            live: 0,
            batch: Vec::new(),
            batch_pos: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Total events popped over the engine's lifetime.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Live (scheduled, uncancelled, undelivered) event count.
    pub fn pending(&self) -> usize {
        self.live
    }

    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    /// Advance the clock without an event (e.g. processing time).
    pub fn advance(&mut self, delta: Ns) {
        self.now += delta;
    }

    /// High-water mark of the slab arena, in nodes — the allocation
    /// footprint the free list recycles.
    pub fn arena_capacity(&self) -> usize {
        self.slab.len()
    }

    fn alloc(&mut self, at: Ns, seq: u64, payload: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.slab[idx as usize];
            self.free = node.next;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.payload = Some(payload);
            idx
        } else {
            let idx = self.slab.len() as u32;
            assert!(idx != NIL, "slab arena overflow");
            self.slab.push(Node { at, seq, next: NIL, gen: 0, payload: Some(payload) });
            idx
        }
    }

    /// Return a node husk to the free list, bumping its generation so
    /// outstanding tokens die.
    fn release(&mut self, idx: u32) {
        let node = &mut self.slab[idx as usize];
        debug_assert!(node.payload.is_none());
        node.gen = node.gen.wrapping_add(1);
        node.next = self.free;
        self.free = idx;
    }

    /// File a node into its wheel slot relative to the cursor.
    fn file(&mut self, idx: u32) {
        let at = self.slab[idx as usize].at;
        debug_assert!(at >= self.cursor);
        let l = level_of(at, self.cursor);
        let s = ((at >> (SLOT_BITS * l as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slab[idx as usize].next = self.head[l][s];
        self.head[l][s] = idx;
        self.occupied[l] |= 1u64 << s;
    }

    fn insert(&mut self, at: Ns, payload: E) -> CancelToken {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let idx = self.alloc(at, seq, payload);
        self.live += 1;
        if at < self.cursor {
            // The wheel has already matured past this instant (a peek
            // drained ahead of a pop): the event joins the in-flight
            // batch at its `(at, seq)`-sorted position instead of a
            // slot the cursor will never revisit.
            let ins = self.batch[self.batch_pos..].partition_point(|&i| {
                let n = &self.slab[i as usize];
                (n.at, n.seq) < (at, seq)
            });
            self.batch.insert(self.batch_pos + ins, idx);
        } else {
            self.file(idx);
        }
        CancelToken { idx, gen: self.slab[idx as usize].gen }
    }

    /// Schedule `payload` at absolute time `at` (clamped to now).
    pub fn schedule(&mut self, at: Ns, payload: E) {
        self.insert(at, payload);
    }

    /// Schedule `payload` `delay` after now, saturating at `Ns::MAX`
    /// instead of wrapping.
    pub fn schedule_in(&mut self, delay: Ns, payload: E) {
        self.insert(self.now.saturating_add(delay), payload);
    }

    /// Schedule with a cancellation handle.
    pub fn schedule_cancellable(&mut self, at: Ns, payload: E) -> CancelToken {
        self.insert(at, payload)
    }

    /// Tombstone a pending event in O(1).  The payload drops now; the
    /// arena node is reclaimed when its slot matures or cascades.
    /// Returns `false` if the event was already delivered or cancelled.
    pub fn cancel(&mut self, token: CancelToken) -> bool {
        match self.slab.get_mut(token.idx as usize) {
            Some(node) if node.gen == token.gen && node.payload.is_some() => {
                node.payload = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Drain the next matured level-0 slot into the batch buffer.
    /// Returns `false` when no live event remains.
    fn refill_batch(&mut self) -> bool {
        self.batch.clear();
        self.batch_pos = 0;
        'refill: loop {
            if self.live == 0 {
                return false;
            }
            let mut l = 0;
            loop {
                if l == LEVELS {
                    // live > 0 guarantees an occupied slot somewhere.
                    unreachable!("live events but empty wheel");
                }
                let digit = ((self.cursor >> (SLOT_BITS * l as u32)) & (SLOTS as u64 - 1)) as u32;
                let mask = self.occupied[l] & (!0u64 << digit);
                if mask == 0 {
                    l += 1;
                    continue;
                }
                let s = mask.trailing_zeros() as usize;
                if l == 0 {
                    // A level-0 slot pins all 64 bits: one exact
                    // timestamp.  Advance the cursor to it and drain.
                    self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | s as u64;
                    let mut n = self.head[0][s];
                    self.head[0][s] = NIL;
                    self.occupied[0] &= !(1u64 << s);
                    while n != NIL {
                        let next = self.slab[n as usize].next;
                        if self.slab[n as usize].payload.is_some() {
                            self.batch.push(n);
                        } else {
                            self.release(n);
                        }
                        n = next;
                    }
                    if self.batch.is_empty() {
                        // Tombstones only — keep scanning.
                        continue 'refill;
                    }
                    // Push-front filing scrambled arrival order; one
                    // sort per batch restores FIFO-by-seq exactly.
                    self.batch.sort_unstable_by_key(|&i| self.slab[i as usize].seq);
                    return true;
                }
                // Cascade: advance the cursor to the slot's range start
                // (no live deadline can precede it — all lower levels
                // and earlier slots are empty) and re-file its events,
                // which now land at strictly lower levels.
                let shift = SLOT_BITS * l as u32;
                let above = SLOT_BITS * (l as u32 + 1);
                let upper = if above >= 64 { 0 } else { !0u64 << above };
                self.cursor = (self.cursor & upper) | ((s as u64) << shift);
                let mut n = self.head[l][s];
                self.head[l][s] = NIL;
                self.occupied[l] &= !(1u64 << s);
                while n != NIL {
                    let next = self.slab[n as usize].next;
                    if self.slab[n as usize].payload.is_some() {
                        self.file(n);
                    } else {
                        self.release(n);
                    }
                    n = next;
                }
                continue 'refill;
            }
        }
    }

    /// Time of the next pending event, cascading as needed.
    pub fn peek_time(&mut self) -> Option<Ns> {
        loop {
            if self.batch_pos < self.batch.len() {
                let idx = self.batch[self.batch_pos];
                let node = &self.slab[idx as usize];
                if node.payload.is_some() {
                    return Some(node.at);
                }
                // Cancelled after draining into the batch.
                self.batch_pos += 1;
                self.release(idx);
                continue;
            }
            if !self.refill_batch() {
                return None;
            }
        }
    }

    /// Pop the next event in `(time, seq)` order, advancing the clock.
    pub fn pop(&mut self) -> Option<(Ns, E)> {
        loop {
            if self.batch_pos < self.batch.len() {
                let idx = self.batch[self.batch_pos];
                self.batch_pos += 1;
                let node = &mut self.slab[idx as usize];
                let at = node.at;
                let payload = node.payload.take();
                self.release(idx);
                if let Some(p) = payload {
                    self.live -= 1;
                    self.now = at;
                    self.processed += 1;
                    return Some((at, p));
                }
                continue;
            }
            if !self.refill_batch() {
                return None;
            }
        }
    }

    /// Dispatch events through `handler` until the queue drains,
    /// guarded by `deadline` and `max_events` — see
    /// [`crate::engine::reference::Engine::run_until`] for the contract
    /// both engines share.
    pub fn run_until<F>(&mut self, deadline: Ns, max_events: u64, handler: F) -> Result<u64, Overrun>
    where
        F: FnMut(&mut Self, Ns, E),
    {
        drive(self, deadline, max_events, handler)
    }
}

impl<E> EventQueue<E> for Wheel<E> {
    type Token = CancelToken;

    fn now(&self) -> Ns {
        Wheel::now(self)
    }
    fn schedule(&mut self, at: Ns, payload: E) {
        Wheel::schedule(self, at, payload)
    }
    fn schedule_in(&mut self, delay: Ns, payload: E) {
        Wheel::schedule_in(self, delay, payload)
    }
    fn schedule_cancellable(&mut self, at: Ns, payload: E) -> CancelToken {
        Wheel::schedule_cancellable(self, at, payload)
    }
    fn cancel(&mut self, token: CancelToken) -> bool {
        Wheel::cancel(self, token)
    }
    fn pop(&mut self) -> Option<(Ns, E)> {
        Wheel::pop(self)
    }
    fn peek_time(&mut self) -> Option<Ns> {
        Wheel::peek_time(self)
    }
    fn pending(&self) -> usize {
        Wheel::pending(self)
    }
    fn processed(&self) -> u64 {
        Wheel::processed(self)
    }
    fn advance(&mut self, delta: Ns) {
        Wheel::advance(self, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_cover_the_full_u64_range() {
        assert!(SLOT_BITS as usize * LEVELS >= 64);
        assert_eq!(level_of(0, 0), 0);
        assert_eq!(level_of(63, 0), 0);
        assert_eq!(level_of(64, 0), 1);
        assert_eq!(level_of(4095, 0), 1);
        assert_eq!(level_of(4096, 0), 2);
        assert_eq!(level_of(Ns::MAX, 0), 10);
    }

    #[test]
    fn slab_nodes_are_recycled() {
        let mut w: Wheel<u32> = Wheel::new();
        for round in 0..4 {
            for i in 0..100u64 {
                w.schedule(round * 1000 + i * 7, i as u32);
            }
            while w.pop().is_some() {}
        }
        assert!(
            w.arena_capacity() <= 101,
            "arena grew past the high-water mark: {}",
            w.arena_capacity()
        );
    }

    #[test]
    fn cancelled_tombstones_are_reclaimed_on_maturity() {
        let mut w: Wheel<u32> = Wheel::new();
        let toks: Vec<_> = (0..50).map(|i| w.schedule_cancellable(100 + i, i as u32)).collect();
        for t in &toks {
            assert!(w.cancel(*t));
        }
        assert_eq!(w.pending(), 0);
        assert_eq!(w.pop(), None);
        // Cancel after the fact is a no-op.
        assert!(!w.cancel(toks[0]));
    }

    #[test]
    fn schedule_below_cursor_after_peek_stays_ordered() {
        let mut w = Wheel::new();
        w.schedule(5, "a");
        assert_eq!(w.peek_time(), Some(5)); // drains slot 5 into the batch
        w.schedule(0, "b"); // clamps to now = 0, below the cursor
        assert_eq!(w.pop(), Some((0, "b")));
        assert_eq!(w.pop(), Some((5, "a")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn token_generations_do_not_alias_recycled_nodes() {
        let mut w: Wheel<u32> = Wheel::new();
        let tok = w.schedule_cancellable(10, 1);
        assert_eq!(w.pop(), Some((10, 1)));
        // The node is free; a new event may reuse it.
        let tok2 = w.schedule_cancellable(20, 2);
        assert!(!w.cancel(tok), "stale token must not cancel the new event");
        assert!(w.cancel(tok2));
        assert_eq!(w.pop(), None);
    }
}
