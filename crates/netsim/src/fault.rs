//! Fault injection: probabilistic drop and corruption with a seeded,
//! deterministic RNG, in the style of smoltcp's example fault injector.
//! Used by the loss-recovery example and the TCP retransmission tests.

use crate::rng::SplitMix64;

/// What happened to a frame passing through the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    Delivered,
    Dropped,
    /// One octet was flipped (the FCS will catch it at the receiver).
    Corrupted,
}

/// Fault statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub seen: u64,
    pub dropped: u64,
    pub corrupted: u64,
}

/// The injector.
#[derive(Debug)]
pub struct FaultInjector {
    rng: SplitMix64,
    /// Probability a frame is dropped, in [0, 1].
    pub drop_chance: f64,
    /// Probability one octet of a surviving frame is flipped.
    pub corrupt_chance: f64,
    /// Frames larger than this are dropped (None = no limit).
    pub size_limit: Option<usize>,
    pub stats: FaultStats,
}

impl FaultInjector {
    /// A transparent injector (no faults).
    pub fn transparent() -> Self {
        Self::new(0.0, 0.0, 7)
    }

    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance));
        assert!((0.0..=1.0).contains(&corrupt_chance));
        FaultInjector {
            rng: SplitMix64::new(seed),
            drop_chance,
            corrupt_chance,
            size_limit: None,
            stats: FaultStats::default(),
        }
    }

    /// Pass frame bytes through the injector, mutating them on
    /// corruption.  Returns the frame's fate.
    pub fn process(&mut self, bytes: &mut [u8]) -> Fate {
        self.stats.seen += 1;
        if let Some(limit) = self.size_limit {
            if bytes.len() > limit {
                self.stats.dropped += 1;
                return Fate::Dropped;
            }
        }
        if self.drop_chance > 0.0 && self.rng.chance(self.drop_chance) {
            self.stats.dropped += 1;
            return Fate::Dropped;
        }
        if self.corrupt_chance > 0.0 && self.rng.chance(self.corrupt_chance) {
            let idx = self.rng.range(0, bytes.len());
            let bit = 1u8 << self.rng.below(8);
            bytes[idx] ^= bit;
            self.stats.corrupted += 1;
            return Fate::Corrupted;
        }
        Fate::Delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_delivers_everything() {
        let mut inj = FaultInjector::transparent();
        for _ in 0..100 {
            let mut b = vec![0u8; 64];
            assert_eq!(inj.process(&mut b), Fate::Delivered);
        }
        assert_eq!(inj.stats.dropped, 0);
        assert_eq!(inj.stats.corrupted, 0);
    }

    #[test]
    fn always_drop_drops() {
        let mut inj = FaultInjector::new(1.0, 0.0, 1);
        let mut b = vec![0u8; 64];
        assert_eq!(inj.process(&mut b), Fate::Dropped);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(0.0, 1.0, 2);
        let orig = vec![0u8; 64];
        let mut b = orig.clone();
        assert_eq!(inj.process(&mut b), Fate::Corrupted);
        let diff: u32 = orig
            .iter()
            .zip(&b)
            .map(|(a, c)| (a ^ c).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn seeded_injector_is_deterministic() {
        let run = |seed| {
            let mut inj = FaultInjector::new(0.3, 0.2, seed);
            (0..50)
                .map(|_| {
                    let mut b = vec![0u8; 64];
                    inj.process(&mut b)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn drop_rate_is_approximately_honoured() {
        let mut inj = FaultInjector::new(0.25, 0.0, 9);
        for _ in 0..4000 {
            let mut b = vec![0u8; 64];
            inj.process(&mut b);
        }
        let rate = inj.stats.dropped as f64 / inj.stats.seen as f64;
        assert!((rate - 0.25).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn size_limit_drops_oversize() {
        let mut inj = FaultInjector::transparent();
        inj.size_limit = Some(100);
        let mut small = vec![0u8; 64];
        let mut big = vec![0u8; 200];
        assert_eq!(inj.process(&mut small), Fate::Delivered);
        assert_eq!(inj.process(&mut big), Fate::Dropped);
    }
}
