//! Fault injection: probabilistic drop, corruption, reordering and
//! duplication with a seeded, deterministic RNG, in the style of
//! smoltcp's example fault injector.  Used by the loss-recovery example,
//! the TCP retransmission tests and the traffic-serving run loop.

use crate::rng::SplitMix64;

/// What happened to a frame passing through the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    Delivered,
    Dropped,
    /// One octet was flipped (the FCS will catch it at the receiver).
    Corrupted,
    /// Delivery is delayed past a later frame (the caller re-enqueues).
    Reordered,
    /// Delivered, and a copy arrives again shortly after (the caller
    /// schedules the duplicate).
    Duplicated,
    /// The frame is cut short on the wire (a runt reaches the
    /// receiver).  The wire path re-encodes the truncated frame and
    /// really parses the failure; the descriptor path treats it like a
    /// drop (the armed RTO retransmits).
    Truncated,
    /// A header octet is scribbled *before* the FCS is computed, so the
    /// frame arrives FCS-clean but semantically broken (bad IP
    /// version).  Discarded by the parse, retransmitted by the RTO.
    Malformed,
    /// The packet arrives as an IP fragment (MF set); this stack does
    /// no reassembly, so the demux rejects it and the RTO retransmits.
    Fragmented,
}

impl Fate {
    /// Wire-stable numeric code for trace codecs.
    pub fn code(self) -> u8 {
        match self {
            Fate::Delivered => 0,
            Fate::Dropped => 1,
            Fate::Corrupted => 2,
            Fate::Reordered => 3,
            Fate::Duplicated => 4,
            Fate::Truncated => 5,
            Fate::Malformed => 6,
            Fate::Fragmented => 7,
        }
    }

    /// Inverse of [`Fate::code`].
    pub fn from_code(code: u8) -> Option<Fate> {
        match code {
            0 => Some(Fate::Delivered),
            1 => Some(Fate::Dropped),
            2 => Some(Fate::Corrupted),
            3 => Some(Fate::Reordered),
            4 => Some(Fate::Duplicated),
            5 => Some(Fate::Truncated),
            6 => Some(Fate::Malformed),
            7 => Some(Fate::Fragmented),
            _ => None,
        }
    }

    /// Wire-stable lowercase name for the JSON trace codec.
    pub fn name(self) -> &'static str {
        match self {
            Fate::Delivered => "delivered",
            Fate::Dropped => "dropped",
            Fate::Corrupted => "corrupted",
            Fate::Reordered => "reordered",
            Fate::Duplicated => "duplicated",
            Fate::Truncated => "truncated",
            Fate::Malformed => "malformed",
            Fate::Fragmented => "fragmented",
        }
    }

    /// Inverse of [`Fate::name`].
    pub fn from_name(name: &str) -> Option<Fate> {
        match name {
            "delivered" => Some(Fate::Delivered),
            "dropped" => Some(Fate::Dropped),
            "corrupted" => Some(Fate::Corrupted),
            "reordered" => Some(Fate::Reordered),
            "duplicated" => Some(Fate::Duplicated),
            "truncated" => Some(Fate::Truncated),
            "malformed" => Some(Fate::Malformed),
            "fragmented" => Some(Fate::Fragmented),
            _ => None,
        }
    }
}

/// Fault statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub seen: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub reordered: u64,
    pub duplicated: u64,
    pub truncated: u64,
    pub malformed: u64,
    pub fragmented: u64,
}

impl FaultStats {
    /// Accumulate another injector's counters (per-worker stats are
    /// merged across the traffic run loop's shards).
    pub fn merge(&mut self, other: &FaultStats) {
        self.seen += other.seen;
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.reordered += other.reordered;
        self.duplicated += other.duplicated;
        self.truncated += other.truncated;
        self.malformed += other.malformed;
        self.fragmented += other.fragmented;
    }
}

/// The injector.
#[derive(Debug)]
pub struct FaultInjector {
    rng: SplitMix64,
    /// Probability a frame is dropped, in [0, 1].
    pub drop_chance: f64,
    /// Probability one octet of a surviving frame is flipped.
    pub corrupt_chance: f64,
    /// Probability a surviving, intact frame is delayed out of order.
    pub reorder_chance: f64,
    /// Probability a delivered frame is also duplicated.
    pub duplicate_chance: f64,
    /// Probability a frame arrives truncated (a runt).
    pub truncate_chance: f64,
    /// Probability a frame arrives FCS-clean but semantically mangled.
    pub malform_chance: f64,
    /// Probability a packet arrives as an unreassemblable IP fragment.
    pub fragment_chance: f64,
    /// Frames larger than this are dropped (None = no limit).
    pub size_limit: Option<usize>,
    pub stats: FaultStats,
}

impl FaultInjector {
    /// A transparent injector (no faults).
    pub fn transparent() -> Self {
        Self::new(0.0, 0.0, 7)
    }

    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance));
        assert!((0.0..=1.0).contains(&corrupt_chance));
        FaultInjector {
            rng: SplitMix64::new(seed),
            drop_chance,
            corrupt_chance,
            reorder_chance: 0.0,
            duplicate_chance: 0.0,
            truncate_chance: 0.0,
            malform_chance: 0.0,
            fragment_chance: 0.0,
            size_limit: None,
            stats: FaultStats::default(),
        }
    }

    /// Set the reorder probability (builder style).
    pub fn with_reorder(mut self, chance: f64) -> Self {
        assert!((0.0..=1.0).contains(&chance));
        self.reorder_chance = chance;
        self
    }

    /// Set the duplicate probability (builder style).
    pub fn with_duplicate(mut self, chance: f64) -> Self {
        assert!((0.0..=1.0).contains(&chance));
        self.duplicate_chance = chance;
        self
    }

    /// Set the truncation probability (builder style).
    pub fn with_truncate(mut self, chance: f64) -> Self {
        assert!((0.0..=1.0).contains(&chance));
        self.truncate_chance = chance;
        self
    }

    /// Set the malformed-header probability (builder style).
    pub fn with_malform(mut self, chance: f64) -> Self {
        assert!((0.0..=1.0).contains(&chance));
        self.malform_chance = chance;
        self
    }

    /// Set the fragmented-arrival probability (builder style).
    pub fn with_fragment(mut self, chance: f64) -> Self {
        assert!((0.0..=1.0).contains(&chance));
        self.fragment_chance = chance;
        self
    }

    /// Pass frame bytes through the injector, mutating them on
    /// corruption.  Returns the frame's fate.
    ///
    /// RNG draws happen only for fates whose probability is non-zero,
    /// so enabling a new fate never perturbs the fate sequence of an
    /// injector that does not use it.
    pub fn process(&mut self, bytes: &mut [u8]) -> Fate {
        self.stats.seen += 1;
        if let Some(limit) = self.size_limit {
            if bytes.len() > limit {
                self.stats.dropped += 1;
                return Fate::Dropped;
            }
        }
        if self.drop_chance > 0.0 && self.rng.chance(self.drop_chance) {
            self.stats.dropped += 1;
            return Fate::Dropped;
        }
        if self.corrupt_chance > 0.0 && self.rng.chance(self.corrupt_chance) {
            let idx = self.rng.range(0, bytes.len());
            let bit = 1u8 << self.rng.below(8);
            bytes[idx] ^= bit;
            self.stats.corrupted += 1;
            return Fate::Corrupted;
        }
        if self.reorder_chance > 0.0 && self.rng.chance(self.reorder_chance) {
            self.stats.reordered += 1;
            return Fate::Reordered;
        }
        if self.duplicate_chance > 0.0 && self.rng.chance(self.duplicate_chance) {
            self.stats.duplicated += 1;
            return Fate::Duplicated;
        }
        // The wire-shape fates decide *what arrives* rather than
        // scribbling bytes here: the wire path re-encodes the broken
        // variant itself (truncation changes the length, malform/
        // fragment must stay FCS-clean), which also keeps replayed
        // fates — applied without this RNG — byte-deterministic.
        if self.truncate_chance > 0.0 && self.rng.chance(self.truncate_chance) {
            self.stats.truncated += 1;
            return Fate::Truncated;
        }
        if self.malform_chance > 0.0 && self.rng.chance(self.malform_chance) {
            self.stats.malformed += 1;
            return Fate::Malformed;
        }
        if self.fragment_chance > 0.0 && self.rng.chance(self.fragment_chance) {
            self.stats.fragmented += 1;
            return Fate::Fragmented;
        }
        Fate::Delivered
    }

    /// Apply a pre-decided (recorded) fate: update the statistics as
    /// [`process`](Self::process) would have, drawing no randomness.
    /// Trace replay uses this so the injector's counters match the
    /// live run while its RNG stays untouched.
    pub fn apply(&mut self, fate: Fate) {
        self.stats.seen += 1;
        match fate {
            Fate::Delivered => {}
            Fate::Dropped => self.stats.dropped += 1,
            Fate::Corrupted => self.stats.corrupted += 1,
            Fate::Reordered => self.stats.reordered += 1,
            Fate::Duplicated => self.stats.duplicated += 1,
            Fate::Truncated => self.stats.truncated += 1,
            Fate::Malformed => self.stats.malformed += 1,
            Fate::Fragmented => self.stats.fragmented += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_delivers_everything() {
        let mut inj = FaultInjector::transparent();
        for _ in 0..100 {
            let mut b = vec![0u8; 64];
            assert_eq!(inj.process(&mut b), Fate::Delivered);
        }
        assert_eq!(inj.stats.dropped, 0);
        assert_eq!(inj.stats.corrupted, 0);
        assert_eq!(inj.stats.reordered, 0);
        assert_eq!(inj.stats.duplicated, 0);
    }

    #[test]
    fn always_drop_drops() {
        let mut inj = FaultInjector::new(1.0, 0.0, 1);
        let mut b = vec![0u8; 64];
        assert_eq!(inj.process(&mut b), Fate::Dropped);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(0.0, 1.0, 2);
        let orig = vec![0u8; 64];
        let mut b = orig.clone();
        assert_eq!(inj.process(&mut b), Fate::Corrupted);
        let diff: u32 = orig
            .iter()
            .zip(&b)
            .map(|(a, c)| (a ^ c).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn always_reorder_reorders() {
        let mut inj = FaultInjector::new(0.0, 0.0, 3).with_reorder(1.0);
        let mut b = vec![0u8; 64];
        assert_eq!(inj.process(&mut b), Fate::Reordered);
        assert_eq!(inj.stats.reordered, 1);
    }

    #[test]
    fn always_duplicate_duplicates() {
        let mut inj = FaultInjector::new(0.0, 0.0, 4).with_duplicate(1.0);
        let mut b = vec![0u8; 64];
        assert_eq!(inj.process(&mut b), Fate::Duplicated);
        assert_eq!(inj.stats.duplicated, 1);
    }

    #[test]
    fn seeded_injector_is_deterministic() {
        let run = |seed| {
            let mut inj = FaultInjector::new(0.3, 0.2, seed);
            (0..50)
                .map(|_| {
                    let mut b = vec![0u8; 64];
                    inj.process(&mut b)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn all_fates_seeded_sequence_is_deterministic() {
        // The satellite contract: same seed => same fate sequence, with
        // every fate class enabled at once.
        let run = |seed| {
            let mut inj = FaultInjector::new(0.15, 0.1, seed)
                .with_reorder(0.15)
                .with_duplicate(0.15);
            (0..400)
                .map(|_| {
                    let mut b = vec![0u8; 64];
                    inj.process(&mut b)
                })
                .collect::<Vec<_>>()
        };
        let a = run(0xDEAD_BEEF);
        assert_eq!(a, run(0xDEAD_BEEF));
        assert_ne!(a, run(0xDEAD_BEF0));
        // Every enabled fate must actually occur in 400 draws.
        for want in [Fate::Delivered, Fate::Dropped, Fate::Corrupted, Fate::Reordered, Fate::Duplicated] {
            assert!(a.contains(&want), "{want:?} never occurred");
        }
    }

    #[test]
    fn zero_chance_fates_draw_no_randomness() {
        // An injector with only drop enabled must produce the same fate
        // sequence whether or not the (disabled) reorder/duplicate
        // stages exist — i.e. disabled stages consume no RNG draws.
        let run = |with_builders: bool| {
            let mut inj = if with_builders {
                FaultInjector::new(0.4, 0.0, 9).with_reorder(0.0).with_duplicate(0.0)
            } else {
                FaultInjector::new(0.4, 0.0, 9)
            };
            (0..100)
                .map(|_| {
                    let mut b = vec![0u8; 64];
                    inj.process(&mut b)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn drop_rate_is_approximately_honoured() {
        let mut inj = FaultInjector::new(0.25, 0.0, 9);
        for _ in 0..4000 {
            let mut b = vec![0u8; 64];
            inj.process(&mut b);
        }
        let rate = inj.stats.dropped as f64 / inj.stats.seen as f64;
        assert!((rate - 0.25).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn size_limit_drops_oversize() {
        let mut inj = FaultInjector::transparent();
        inj.size_limit = Some(100);
        let mut small = vec![0u8; 64];
        let mut big = vec![0u8; 200];
        assert_eq!(inj.process(&mut small), Fate::Delivered);
        assert_eq!(inj.process(&mut big), Fate::Dropped);
    }

    #[test]
    fn fate_codes_and_names_round_trip() {
        for fate in [
            Fate::Delivered,
            Fate::Dropped,
            Fate::Corrupted,
            Fate::Reordered,
            Fate::Duplicated,
            Fate::Truncated,
            Fate::Malformed,
            Fate::Fragmented,
        ] {
            assert_eq!(Fate::from_code(fate.code()), Some(fate));
            assert_eq!(Fate::from_name(fate.name()), Some(fate));
        }
        assert_eq!(Fate::from_code(8), None);
        assert_eq!(Fate::from_name("mangled"), None);
    }

    #[test]
    fn wire_fates_occur_and_count() {
        let mut inj = FaultInjector::new(0.0, 0.0, 11)
            .with_truncate(0.2)
            .with_malform(0.2)
            .with_fragment(0.2);
        let fates: Vec<Fate> = (0..400)
            .map(|_| {
                let mut b = vec![0u8; 64];
                inj.process(&mut b)
            })
            .collect();
        for want in [Fate::Truncated, Fate::Malformed, Fate::Fragmented] {
            assert!(fates.contains(&want), "{want:?} never occurred");
        }
        assert_eq!(
            inj.stats.truncated + inj.stats.malformed + inj.stats.fragmented,
            fates.iter().filter(|f| !matches!(f, Fate::Delivered)).count() as u64
        );
    }

    #[test]
    fn wire_fates_do_not_mutate_bytes() {
        // The injector decides the fate; the wire layer re-encodes the
        // broken variant.  Bytes must come back untouched.
        let mut inj = FaultInjector::new(0.0, 0.0, 12)
            .with_truncate(1.0);
        let mut b = vec![0x5Au8; 64];
        assert_eq!(inj.process(&mut b), Fate::Truncated);
        assert!(b.iter().all(|&x| x == 0x5A));
    }

    #[test]
    fn zero_chance_wire_fates_preserve_fate_sequence() {
        // Enabling the wire-fate *builders* at zero probability must not
        // shift the RNG stream of an existing drop/corrupt injector.
        let run = |with_wire: bool| {
            let mut inj = if with_wire {
                FaultInjector::new(0.3, 0.2, 21)
                    .with_truncate(0.0)
                    .with_malform(0.0)
                    .with_fragment(0.0)
            } else {
                FaultInjector::new(0.3, 0.2, 21)
            };
            (0..200)
                .map(|_| {
                    let mut b = vec![0u8; 64];
                    inj.process(&mut b)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn apply_matches_process_stats_without_rng() {
        // Replaying the fate sequence of a live injector through
        // `apply` must reproduce its counters exactly.
        let mut live = FaultInjector::new(0.15, 0.1, 77).with_reorder(0.15).with_duplicate(0.15);
        let fates: Vec<Fate> = (0..300)
            .map(|_| {
                let mut b = vec![0u8; 64];
                live.process(&mut b)
            })
            .collect();
        let mut replay = FaultInjector::new(0.15, 0.1, 77).with_reorder(0.15).with_duplicate(0.15);
        for f in &fates {
            replay.apply(*f);
        }
        assert_eq!(replay.stats, live.stats);
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = FaultStats {
            seen: 10,
            dropped: 1,
            corrupted: 2,
            reordered: 3,
            duplicated: 4,
            truncated: 1,
            malformed: 0,
            fragmented: 2,
        };
        let b = FaultStats {
            seen: 5,
            dropped: 5,
            corrupted: 1,
            reordered: 0,
            duplicated: 2,
            truncated: 0,
            malformed: 3,
            fragmented: 1,
        };
        a.merge(&b);
        assert_eq!(
            a,
            FaultStats {
                seen: 15,
                dropped: 6,
                corrupted: 3,
                reordered: 3,
                duplicated: 6,
                truncated: 1,
                malformed: 3,
                fragmented: 3,
            }
        );
    }
}
