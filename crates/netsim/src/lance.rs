//! The LANCE (AMD Am7990) network controller.
//!
//! §2.2.4: "The LANCE chip has a 16-bit bus interface, while the
//! TURBOchannel to which it is connected is 32 bits wide.  This has the
//! unfortunate effect that shared memory is used sparsely — for
//! descriptors, every 16 bits of shared memory are followed by a 16-bit
//! gap.  For buffers, 16 bytes of shared memory are followed by a 16
//! byte gap."
//!
//! Descriptors are ten bytes (five 16-bit words).  Traditional drivers
//! update a descriptor by copying all five words into dense memory,
//! modifying, and writing all five back (20 bytes moved per update, even
//! for a one-bit change).  The USC-generated accessors read and write
//! exactly the words needed, in place.  Both disciplines are implemented
//! on [`SparseMem`]; the access counters expose the difference that
//! Table 1 prices at 171 instructions.
//!
//! Timing: the paper measured **105 µs** between handing a minimum frame
//! to the controller and the transmission-complete interrupt — 57.6 µs
//! of wire time plus ~47 µs of controller overhead.

use crate::frame::Frame;
use crate::Ns;

/// Word index within the shared region.
pub type WordIdx = usize;

/// Sparse shared memory as the CPU sees it: 16-bit words at 4-byte
/// strides (descriptor area) and 16-byte data runs at 32-byte strides
/// (buffer area).
#[derive(Debug, Clone)]
pub struct SparseMem {
    words: Vec<u16>,
    /// Simulated CPU base address of the region.
    pub sim_base: u64,
    /// CPU word reads performed (sparse accesses).
    pub word_reads: u64,
    /// CPU word writes performed.
    pub word_writes: u64,
}

impl SparseMem {
    pub fn new(nwords: usize, sim_base: u64) -> Self {
        SparseMem { words: vec![0; nwords], sim_base, word_reads: 0, word_writes: 0 }
    }

    /// CPU byte address of word `i` (16 data bits + 16-bit gap = 4-byte
    /// stride).
    pub fn word_addr(&self, i: WordIdx) -> u64 {
        self.sim_base + (i as u64) * 4
    }

    pub fn read_word(&mut self, i: WordIdx) -> u16 {
        self.word_reads += 1;
        self.words[i]
    }

    pub fn write_word(&mut self, i: WordIdx, v: u16) {
        self.word_writes += 1;
        self.words[i] = v;
    }

    /// Read without counting (the chip side; its accesses don't cost CPU
    /// cycles).
    pub fn chip_read(&self, i: WordIdx) -> u16 {
        self.words[i]
    }

    pub fn chip_write(&mut self, i: WordIdx, v: u16) {
        self.words[i] = v;
    }

    /// Copy a byte buffer into the sparse data area starting at word
    /// `start` (driver side: counted).  Data is packed two bytes per
    /// word; the 16-byte-run/16-byte-gap structure is captured by the
    /// address mapping in [`SparseMem::buf_byte_addr`].
    pub fn write_buf(&mut self, start: WordIdx, data: &[u8]) {
        for (k, chunk) in data.chunks(2).enumerate() {
            let w = if chunk.len() == 2 {
                u16::from_be_bytes([chunk[0], chunk[1]])
            } else {
                u16::from_be_bytes([chunk[0], 0])
            };
            self.write_word(start + k, w);
        }
    }

    /// Read `len` bytes from the sparse data area at word `start`.
    pub fn read_buf(&mut self, start: WordIdx, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        for k in 0..len.div_ceil(2) {
            let w = self.read_word(start + k).to_be_bytes();
            out.push(w[0]);
            if out.len() < len {
                out.push(w[1]);
            }
        }
        out
    }

    /// CPU byte address of buffer byte `j` within a buffer starting at
    /// byte offset `buf_base`: 16 bytes of data, then a 16-byte gap.
    pub fn buf_byte_addr(&self, buf_base: u64, j: usize) -> u64 {
        let run = (j / 16) as u64;
        let off = (j % 16) as u64;
        self.sim_base + buf_base + run * 32 + off
    }

    pub fn reset_counters(&mut self) {
        self.word_reads = 0;
        self.word_writes = 0;
    }
}

/// A LANCE ring descriptor (10 bytes = 5 words).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Descriptor {
    /// Buffer address (word index in shared memory) — LADR + HADR.
    pub buf: u32,
    /// Flags: OWN, STP, ENP, ERR.
    pub flags: u16,
    /// Buffer byte count (two's complement in real hardware; plain here).
    pub bcnt: u16,
    /// Status bits.
    pub status: u16,
    /// Message byte count (valid on receive).
    pub mcnt: u16,
}

impl Descriptor {
    pub const OWN: u16 = 0x8000;
    pub const STP: u16 = 0x0200;
    pub const ENP: u16 = 0x0100;
    pub const ERR: u16 = 0x4000;

    /// Words occupied by one descriptor.
    pub const WORDS: usize = 5;

    pub fn owned_by_chip(&self) -> bool {
        self.flags & Self::OWN != 0
    }

    /// Pack into five words.
    pub fn to_words(&self) -> [u16; 5] {
        [
            (self.buf & 0xffff) as u16,
            ((self.buf >> 16) as u16 & 0x00ff) | self.flags,
            self.bcnt,
            self.status,
            self.mcnt,
        ]
    }

    /// Unpack from five words.
    pub fn from_words(w: [u16; 5]) -> Self {
        Descriptor {
            buf: (w[0] as u32) | (((w[1] & 0x00ff) as u32) << 16),
            flags: w[1] & 0xff00,
            bcnt: w[2],
            status: w[3],
            mcnt: w[4],
        }
    }

    // ---- Driver access disciplines ------------------------------------

    /// Traditional copy-based read: all five words copied to dense
    /// memory.
    pub fn read_copy(mem: &mut SparseMem, at: WordIdx) -> Descriptor {
        let mut w = [0u16; 5];
        for (k, slot) in w.iter_mut().enumerate() {
            *slot = mem.read_word(at + k);
        }
        Descriptor::from_words(w)
    }

    /// Traditional copy-based write-back: all five words written.
    pub fn write_copy(&self, mem: &mut SparseMem, at: WordIdx) {
        for (k, w) in self.to_words().into_iter().enumerate() {
            mem.write_word(at + k, w);
        }
    }

    /// USC-style direct access: read only the flags word.
    pub fn direct_read_flags(mem: &mut SparseMem, at: WordIdx) -> u16 {
        mem.read_word(at + 1) & 0xff00
    }

    /// USC-style direct update of the flags word, preserving the high
    /// address bits that share it.
    pub fn direct_write_flags(mem: &mut SparseMem, at: WordIdx, flags: u16) {
        let old = mem.read_word(at + 1);
        mem.write_word(at + 1, (old & 0x00ff) | (flags & 0xff00));
    }

    /// USC-style direct update of the byte count.
    pub fn direct_write_bcnt(mem: &mut SparseMem, at: WordIdx, bcnt: u16) {
        mem.write_word(at + 2, bcnt);
    }

    /// USC-style direct read of the receive message length.
    pub fn direct_read_mcnt(mem: &mut SparseMem, at: WordIdx) -> u16 {
        mem.read_word(at + 4)
    }

    /// USC-style direct read of the status word.
    pub fn direct_read_status(mem: &mut SparseMem, at: WordIdx) -> u16 {
        mem.read_word(at + 3)
    }
}

/// Controller latency constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LanceTiming {
    /// Controller-internal latency on transmit, excluding wire time.
    /// Wire (57.6 µs) + this = the measured 105 µs for a minimum frame.
    pub tx_overhead_ns: Ns,
    /// Receiver-side latency from last wire bit to the receive
    /// interrupt.
    pub rx_overhead_ns: Ns,
}

impl LanceTiming {
    /// The paper's measured values: 105 µs total tx-to-interrupt for a
    /// minimum frame, of which 57.6 µs is wire time → 47.4 µs of
    /// controller overhead, split between the sending chip's setup/DMA
    /// and the receive interrupt dispatch.
    pub fn dec3000_600() -> Self {
        LanceTiming { tx_overhead_ns: 47_400, rx_overhead_ns: 47_400 }
    }

    /// A modern low-latency controller (the paper's closing remark that
    /// "one should expect RTTs on the order of 50 µs" with better
    /// adaptors).
    pub fn fast_adaptor() -> Self {
        LanceTiming { tx_overhead_ns: 2_000, rx_overhead_ns: 2_000 }
    }
}

/// Ring geometry within shared memory.
#[derive(Debug, Clone, Copy)]
pub struct RingLayout {
    /// First word of the descriptor ring.
    pub desc_base: WordIdx,
    /// Number of descriptors.
    pub len: usize,
    /// First word of the buffer area; buffer `i` starts at
    /// `buf_base + i * buf_words`.
    pub buf_base: WordIdx,
    /// Words per buffer (MTU/2 rounded up).
    pub buf_words: usize,
}

impl RingLayout {
    pub fn desc_at(&self, i: usize) -> WordIdx {
        self.desc_base + (i % self.len) * Descriptor::WORDS
    }

    pub fn buf_at(&self, i: usize) -> WordIdx {
        self.buf_base + (i % self.len) * self.buf_words
    }
}

/// The chip: shared memory plus ring state.  The *driver* lives in the
/// `protocols` crate; this type implements the chip's half of the
/// protocol (DMA between shared memory and the wire).
#[derive(Debug)]
pub struct LanceChip {
    pub mem: SparseMem,
    pub tx: RingLayout,
    pub rx: RingLayout,
    pub timing: LanceTiming,
    tx_next: usize,
    rx_next: usize,
    /// Frames the chip transmitted (popped by the harness).
    pub tx_done: u64,
    pub rx_delivered: u64,
    pub rx_dropped_no_desc: u64,
}

impl LanceChip {
    pub fn new(sim_base: u64, ring_len: usize, timing: LanceTiming) -> Self {
        let buf_words = 1518usize.div_ceil(2);
        let tx = RingLayout {
            desc_base: 0,
            len: ring_len,
            buf_base: 2 * ring_len * Descriptor::WORDS,
            buf_words,
        };
        let rx = RingLayout {
            desc_base: ring_len * Descriptor::WORDS,
            len: ring_len,
            buf_base: tx.buf_base + ring_len * buf_words,
            buf_words,
        };
        let nwords = rx.buf_base + ring_len * buf_words;
        LanceChip {
            mem: SparseMem::new(nwords, sim_base),
            tx,
            rx,
            timing,
            tx_next: 0,
            rx_next: 0,
            tx_done: 0,
            rx_delivered: 0,
            rx_dropped_no_desc: 0,
        }
    }

    /// Chip side: poll the next tx descriptor; if owned by the chip,
    /// DMA the frame out and release the descriptor.  Returns the frame
    /// bytes.
    pub fn chip_transmit(&mut self) -> Option<Vec<u8>> {
        let at = self.tx.desc_at(self.tx_next);
        let mut w = [0u16; 5];
        for (k, slot) in w.iter_mut().enumerate() {
            *slot = self.mem.chip_read(at + k);
        }
        let mut d = Descriptor::from_words(w);
        if !d.owned_by_chip() {
            return None;
        }
        let len = d.bcnt as usize;
        let start = d.buf as usize;
        let mut bytes = Vec::with_capacity(len);
        for k in 0..len.div_ceil(2) {
            let wv = self.mem.chip_read(start + k).to_be_bytes();
            bytes.push(wv[0]);
            if bytes.len() < len {
                bytes.push(wv[1]);
            }
        }
        d.flags &= !Descriptor::OWN;
        d.status |= Descriptor::ENP;
        for (k, wv) in d.to_words().into_iter().enumerate() {
            self.mem.chip_write(at + k, wv);
        }
        self.tx_next = (self.tx_next + 1) % self.tx.len;
        self.tx_done += 1;
        Some(bytes)
    }

    /// Chip side: deliver received bytes into the next rx descriptor.
    /// Returns the descriptor index used, or None if the ring is full
    /// (packet dropped — a real overrun).
    pub fn chip_receive(&mut self, bytes: &[u8]) -> Option<usize> {
        let idx = self.rx_next;
        let at = self.rx.desc_at(idx);
        let mut w = [0u16; 5];
        for (k, slot) in w.iter_mut().enumerate() {
            *slot = self.mem.chip_read(at + k);
        }
        let mut d = Descriptor::from_words(w);
        if !d.owned_by_chip() {
            self.rx_dropped_no_desc += 1;
            return None;
        }
        let start = self.rx.buf_at(idx);
        for (k, chunk) in bytes.chunks(2).enumerate() {
            let wv = if chunk.len() == 2 {
                u16::from_be_bytes([chunk[0], chunk[1]])
            } else {
                u16::from_be_bytes([chunk[0], 0])
            };
            self.mem.chip_write(start + k, wv);
        }
        d.buf = start as u32;
        d.mcnt = bytes.len() as u16;
        d.flags &= !Descriptor::OWN;
        d.status |= Descriptor::STP | Descriptor::ENP;
        for (k, wv) in d.to_words().into_iter().enumerate() {
            self.mem.chip_write(at + k, wv);
        }
        self.rx_next = (self.rx_next + 1) % self.rx.len;
        self.rx_delivered += 1;
        Some(idx)
    }

    /// Total tx latency for a frame: controller overhead + wire time is
    /// composed by the harness; this exposes the overhead half.
    pub fn tx_overhead(&self) -> Ns {
        self.timing.tx_overhead_ns
    }

    pub fn rx_overhead(&self) -> Ns {
        self.timing.rx_overhead_ns
    }

    /// Convenience for tests/the driver: parse a received descriptor's
    /// frame back out of shared memory (driver side: counted accesses).
    pub fn driver_read_rx_frame(&mut self, idx: usize) -> Option<Frame> {
        let at = self.rx.desc_at(idx);
        let d = Descriptor::read_copy(&mut self.mem, at);
        if d.owned_by_chip() {
            return None;
        }
        let bytes = self.mem.read_buf(self.rx.buf_at(idx), d.mcnt as usize);
        Frame::from_bytes(&bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{EtherType, MacAddr};

    fn chip() -> LanceChip {
        LanceChip::new(0x0300_0000, 8, LanceTiming::dec3000_600())
    }

    fn test_frame() -> Frame {
        Frame::new(
            MacAddr([2, 0, 0, 0, 0, 2]),
            MacAddr([2, 0, 0, 0, 0, 1]),
            EtherType::Ipv4,
            b"ping".to_vec(),
        )
    }

    #[test]
    fn descriptor_pack_unpack_roundtrip() {
        let d = Descriptor {
            buf: 0x0004_5678,
            flags: Descriptor::OWN | Descriptor::STP,
            bcnt: 64,
            status: 0,
            mcnt: 0,
        };
        assert_eq!(Descriptor::from_words(d.to_words()), d);
    }

    #[test]
    fn sparse_word_addresses_have_gaps() {
        let m = SparseMem::new(16, 0x1000);
        assert_eq!(m.word_addr(0), 0x1000);
        assert_eq!(m.word_addr(1), 0x1004, "16-bit word + 16-bit gap");
        assert_eq!(m.word_addr(5), 0x1014);
    }

    #[test]
    fn buffer_addresses_skip_16_byte_gaps() {
        let m = SparseMem::new(16, 0);
        assert_eq!(m.buf_byte_addr(0, 0), 0);
        assert_eq!(m.buf_byte_addr(0, 15), 15);
        assert_eq!(m.buf_byte_addr(0, 16), 32, "gap after each 16-byte run");
        assert_eq!(m.buf_byte_addr(0, 33), 65);
    }

    #[test]
    fn copy_update_touches_ten_words_direct_touches_two() {
        let mut m = SparseMem::new(64, 0);
        // Seed a descriptor.
        Descriptor { buf: 100, flags: 0, bcnt: 64, status: 0, mcnt: 0 }
            .write_copy(&mut m, 0);
        m.reset_counters();

        // Traditional: read all 5, write all 5 to set OWN.
        let mut d = Descriptor::read_copy(&mut m, 0);
        d.flags |= Descriptor::OWN;
        d.write_copy(&mut m, 0);
        assert_eq!(m.word_reads + m.word_writes, 10);

        m.reset_counters();
        // USC/direct: read-modify-write one word.
        Descriptor::direct_write_flags(&mut m, 0, Descriptor::OWN);
        assert_eq!(m.word_reads + m.word_writes, 2);
        // Both leave the same state.
        let after = Descriptor::read_copy(&mut m, 0);
        assert!(after.owned_by_chip());
    }

    #[test]
    fn tx_roundtrip_through_shared_memory() {
        let mut c = chip();
        let f = test_frame();
        let bytes = f.to_bytes();
        // Driver: write frame into tx buffer 0, fill descriptor, set OWN.
        let buf_start = c.tx.buf_at(0);
        c.mem.write_buf(buf_start, &bytes);
        let d = Descriptor {
            buf: buf_start as u32,
            flags: Descriptor::OWN | Descriptor::STP | Descriptor::ENP,
            bcnt: bytes.len() as u16,
            status: 0,
            mcnt: 0,
        };
        d.write_copy(&mut c.mem, c.tx.desc_at(0));

        let out = c.chip_transmit().expect("chip must see OWN");
        assert_eq!(out, bytes);
        // Descriptor returned to host.
        let d2 = Descriptor::read_copy(&mut c.mem, c.tx.desc_at(0));
        assert!(!d2.owned_by_chip());
        assert_eq!(c.tx_done, 1);
        // Nothing more to send.
        assert!(c.chip_transmit().is_none());
    }

    #[test]
    fn rx_delivery_fills_descriptor_and_buffer() {
        let mut c = chip();
        // Driver arms rx descriptor 0.
        let d = Descriptor { buf: 0, flags: Descriptor::OWN, bcnt: 1518, status: 0, mcnt: 0 };
        d.write_copy(&mut c.mem, c.rx.desc_at(0));

        let f = test_frame();
        let idx = c.chip_receive(&f.to_bytes()).expect("descriptor armed");
        assert_eq!(idx, 0);
        let parsed = c.driver_read_rx_frame(0).expect("parseable frame");
        assert_eq!(parsed.ethertype, f.ethertype);
        assert!(parsed.payload.starts_with(b"ping"));
    }

    #[test]
    fn rx_without_armed_descriptor_drops() {
        let mut c = chip();
        let f = test_frame();
        assert!(c.chip_receive(&f.to_bytes()).is_none());
        assert_eq!(c.rx_dropped_no_desc, 1);
    }

    #[test]
    fn timing_constants_match_paper() {
        let t = LanceTiming::dec3000_600();
        // 47.4 µs + 57.6 µs wire = 105 µs.
        assert_eq!(t.tx_overhead_ns + 57_600, 105_000);
    }
}
