//! 10 Mb/s Ethernet wire timing.
//!
//! "Consider that a minimum-sized Ethernet packet is 64 bytes long, to
//! which an 8 byte long preamble is added.  At the speed of Ethernet
//! (10·10⁶ bps), transmitting the frame takes 57.6 µs."  — §4.3

use crate::frame::{Frame, PREAMBLE};
use crate::Ns;

/// The shared medium.
#[derive(Debug, Clone)]
pub struct Wire {
    /// Bits per second.
    pub bps: u64,
    /// Propagation + PHY latency added to every frame.
    pub propagation_ns: Ns,
    /// Inter-frame gap (96 bit times on 10 Mb/s Ethernet = 9.6 µs).
    pub ifg_ns: Ns,
    /// Time the medium is busy until (for serialization of back-to-back
    /// sends on the isolated segment).
    busy_until: Ns,
}

impl Wire {
    /// Standard 10 Mb/s Ethernet.
    pub fn ethernet_10mbps() -> Self {
        Wire { bps: 10_000_000, propagation_ns: 200, ifg_ns: 9_600, busy_until: 0 }
    }

    /// Serialization time for a frame (preamble + wire bytes).
    pub fn tx_time(&self, frame: &Frame) -> Ns {
        let bits = (frame.wire_len() + PREAMBLE) as u64 * 8;
        bits * 1_000_000_000 / self.bps
    }

    /// Transmit starting no earlier than `now`; returns (start, arrival)
    /// times, honouring medium busy state and the inter-frame gap.
    pub fn transmit(&mut self, now: Ns, frame: &Frame) -> (Ns, Ns) {
        let start = now.max(self.busy_until);
        let done = start + self.tx_time(frame);
        self.busy_until = done + self.ifg_ns;
        (start, done + self.propagation_ns)
    }

    pub fn reset(&mut self) {
        self.busy_until = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{EtherType, MacAddr};

    fn min_frame() -> Frame {
        Frame::new(
            MacAddr([0; 6]),
            MacAddr([1; 6]),
            EtherType::Ipv4,
            vec![0u8; 1],
        )
    }

    #[test]
    fn min_frame_takes_57_6_us() {
        let w = Wire::ethernet_10mbps();
        assert_eq!(w.tx_time(&min_frame()), 57_600);
    }

    #[test]
    fn full_mtu_takes_about_1_2_ms() {
        let w = Wire::ethernet_10mbps();
        let f = Frame::new(
            MacAddr([0; 6]),
            MacAddr([1; 6]),
            EtherType::Ipv4,
            vec![0u8; 1500],
        );
        let t = w.tx_time(&f);
        assert!((1_210_000..1_230_000).contains(&t), "t={t}");
    }

    #[test]
    fn back_to_back_sends_serialize_with_ifg() {
        let mut w = Wire::ethernet_10mbps();
        let f = min_frame();
        let (s1, a1) = w.transmit(0, &f);
        let (s2, _) = w.transmit(0, &f);
        assert_eq!(s1, 0);
        assert!(s2 >= a1 - w.propagation_ns + w.ifg_ns);
    }

    #[test]
    fn idle_medium_sends_immediately() {
        let mut w = Wire::ethernet_10mbps();
        let f = min_frame();
        let (s, a) = w.transmit(1_000_000, &f);
        assert_eq!(s, 1_000_000);
        assert_eq!(a, 1_000_000 + 57_600 + w.propagation_ns);
    }
}
