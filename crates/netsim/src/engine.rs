//! A minimal discrete-event simulation engine.
//!
//! Events carry a caller-defined payload; the harness pops them in time
//! order and dispatches.  Time never goes backwards.
//!
//! For scenario-driven workloads, [`Engine::run_until`] dispatches
//! events through a handler under two guards — a time deadline and an
//! event budget — so a misbehaving scenario (e.g. a retransmit or
//! duplication storm that reschedules itself forever) terminates with
//! an [`Overrun`] diagnostic instead of looping forever.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::Ns;

/// Why a guarded run stopped before its event queue drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overrun {
    /// The next pending event lies beyond the deadline.
    Deadline {
        deadline: Ns,
        now: Ns,
        pending: usize,
        processed: u64,
    },
    /// The run dispatched its entire event budget without draining.
    EventBudget {
        budget: u64,
        now: Ns,
        pending: usize,
    },
}

impl fmt::Display for Overrun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Overrun::Deadline { deadline, now, pending, processed } => write!(
                f,
                "scenario overran its deadline: {processed} events processed, clock at \
                 {now} ns with {pending} event(s) still pending past deadline {deadline} ns"
            ),
            Overrun::EventBudget { budget, now, pending } => write!(
                f,
                "scenario exhausted its event budget of {budget} events at {now} ns \
                 with {pending} event(s) still pending (self-perpetuating schedule?)"
            ),
        }
    }
}

impl std::error::Error for Overrun {}

/// The event queue plus the simulation clock.
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<Reverse<(Ns, u64, EventSlot<E>)>>,
    now: Ns,
    seq: u64,
    processed: u64,
}

/// Wrapper so payloads don't need Ord.
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Self {
        Engine { queue: BinaryHeap::new(), now: 0, seq: 0, processed: 0 }
    }

    /// Current simulation time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Schedule `payload` at absolute time `at` (clamped to now).
    pub fn schedule(&mut self, at: Ns, payload: E) {
        let at = at.max(self.now);
        self.queue.push(Reverse((at, self.seq, EventSlot(payload))));
        self.seq += 1;
    }

    /// Schedule `payload` `delay` after now.
    pub fn schedule_in(&mut self, delay: Ns, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Ns, E)> {
        let Reverse((t, _, EventSlot(e))) = self.queue.pop()?;
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Total events popped over the engine's lifetime.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Ns> {
        self.queue.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Dispatch events through `handler` until the queue drains,
    /// guarded by `deadline` (simulation time) and `max_events`
    /// (dispatch budget for this call).  The handler may schedule new
    /// events through the engine reference it is passed.
    ///
    /// Returns the number of events dispatched on a clean drain, or an
    /// [`Overrun`] diagnostic if the next event would pass the deadline
    /// or the budget is exhausted with events still pending — the
    /// misbehaving-scenario backstop.
    pub fn run_until<F>(&mut self, deadline: Ns, max_events: u64, mut handler: F) -> Result<u64, Overrun>
    where
        F: FnMut(&mut Self, Ns, E),
    {
        let start = self.processed;
        loop {
            let dispatched = self.processed - start;
            let Some(next) = self.peek_time() else {
                return Ok(dispatched);
            };
            if next > deadline {
                return Err(Overrun::Deadline {
                    deadline,
                    now: self.now,
                    pending: self.queue.len(),
                    processed: dispatched,
                });
            }
            if dispatched >= max_events {
                return Err(Overrun::EventBudget {
                    budget: max_events,
                    now: self.now,
                    pending: self.queue.len(),
                });
            }
            let (t, e) = self.pop().expect("peeked event must pop");
            handler(self, t, e);
        }
    }

    /// Advance the clock without an event (e.g. processing time).
    pub fn advance(&mut self, delta: Ns) {
        self.now += delta;
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_and_advances_clock() {
        let mut e = Engine::new();
        e.schedule(300, "c");
        e.schedule(100, "a");
        e.schedule(200, "b");
        assert_eq!(e.pop(), Some((100, "a")));
        assert_eq!(e.now(), 100);
        assert_eq!(e.pop(), Some((200, "b")));
        assert_eq!(e.pop(), Some((300, "c")));
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn equal_times_fifo() {
        let mut e = Engine::new();
        e.schedule(5, 1);
        e.schedule(5, 2);
        assert_eq!(e.pop().unwrap().1, 1);
        assert_eq!(e.pop().unwrap().1, 2);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut e = Engine::new();
        e.schedule(100, "first");
        e.pop();
        e.schedule(50, "late");
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, 100, "no time travel");
    }

    #[test]
    fn advance_moves_clock() {
        let mut e: Engine<()> = Engine::new();
        e.advance(42);
        assert_eq!(e.now(), 42);
    }

    #[test]
    fn run_until_drains_and_counts() {
        let mut e = Engine::new();
        e.schedule(10, 1u32);
        e.schedule(20, 2);
        let mut seen = Vec::new();
        let n = e
            .run_until(1_000, 100, |eng, t, v| {
                seen.push((t, v));
                if v == 1 {
                    eng.schedule_in(5, 3); // handler may schedule more
                }
            })
            .expect("well-behaved scenario drains");
        assert_eq!(n, 3);
        assert_eq!(seen, vec![(10, 1), (15, 3), (20, 2)]);
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn run_until_reports_deadline_overrun() {
        let mut e = Engine::new();
        e.schedule(10, "ok");
        e.schedule(500, "late");
        let err = e.run_until(100, 100, |_, _, _| {}).unwrap_err();
        match err {
            Overrun::Deadline { deadline, pending, processed, .. } => {
                assert_eq!(deadline, 100);
                assert_eq!(pending, 1);
                assert_eq!(processed, 1);
            }
            other => panic!("expected deadline overrun, got {other:?}"),
        }
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn run_until_stops_self_perpetuating_schedule() {
        // A storm that reschedules itself forever must terminate with a
        // budget diagnostic instead of looping.
        let mut e = Engine::new();
        e.schedule(0, ());
        let err = e
            .run_until(Ns::MAX, 1_000, |eng, _, ()| eng.schedule_in(1, ()))
            .unwrap_err();
        match err {
            Overrun::EventBudget { budget, pending, .. } => {
                assert_eq!(budget, 1_000);
                assert!(pending >= 1);
            }
            other => panic!("expected event-budget overrun, got {other:?}"),
        }
        assert!(err.to_string().contains("event budget"));
    }
}
