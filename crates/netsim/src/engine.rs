//! A minimal discrete-event simulation engine.
//!
//! Events carry a caller-defined payload; the harness pops them in time
//! order and dispatches.  Time never goes backwards.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Ns;

/// The event queue plus the simulation clock.
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<Reverse<(Ns, u64, EventSlot<E>)>>,
    now: Ns,
    seq: u64,
}

/// Wrapper so payloads don't need Ord.
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Self {
        Engine { queue: BinaryHeap::new(), now: 0, seq: 0 }
    }

    /// Current simulation time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Schedule `payload` at absolute time `at` (clamped to now).
    pub fn schedule(&mut self, at: Ns, payload: E) {
        let at = at.max(self.now);
        self.queue.push(Reverse((at, self.seq, EventSlot(payload))));
        self.seq += 1;
    }

    /// Schedule `payload` `delay` after now.
    pub fn schedule_in(&mut self, delay: Ns, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Ns, E)> {
        let Reverse((t, _, EventSlot(e))) = self.queue.pop()?;
        self.now = t;
        Some((t, e))
    }

    /// Advance the clock without an event (e.g. processing time).
    pub fn advance(&mut self, delta: Ns) {
        self.now += delta;
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_and_advances_clock() {
        let mut e = Engine::new();
        e.schedule(300, "c");
        e.schedule(100, "a");
        e.schedule(200, "b");
        assert_eq!(e.pop(), Some((100, "a")));
        assert_eq!(e.now(), 100);
        assert_eq!(e.pop(), Some((200, "b")));
        assert_eq!(e.pop(), Some((300, "c")));
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn equal_times_fifo() {
        let mut e = Engine::new();
        e.schedule(5, 1);
        e.schedule(5, 2);
        assert_eq!(e.pop().unwrap().1, 1);
        assert_eq!(e.pop().unwrap().1, 2);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut e = Engine::new();
        e.schedule(100, "first");
        e.pop();
        e.schedule(50, "late");
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, 100, "no time travel");
    }

    #[test]
    fn advance_moves_clock() {
        let mut e: Engine<()> = Engine::new();
        e.advance(42);
        assert_eq!(e.now(), 42);
    }
}
