//! The discrete-event simulation engine.
//!
//! Events carry a caller-defined payload; the harness pops them in time
//! order and dispatches.  Time never goes backwards.
//!
//! Since the timing-wheel PR, [`Engine`] *is* the hierarchical
//! timing-wheel scheduler from [`crate::sched`] — O(1) cache-friendly
//! slot filing over a slab arena, with batched slot delivery and O(1)
//! cancellation tokens.  The original `BinaryHeap`-based engine is kept
//! bit-compatible behind the same API as [`reference::Engine`]; the
//! `sched_props` suite and `engine_bench` drive both through identical
//! seeded schedule/cancel/run_until mixes and assert equal traces (and
//! a ≥2× wheel speedup at 64k pending events).
//!
//! For scenario-driven workloads, `run_until` dispatches events through
//! a handler under two guards — a time deadline and an event budget —
//! so a misbehaving scenario (e.g. a retransmit or duplication storm
//! that reschedules itself forever) terminates with an [`Overrun`]
//! diagnostic instead of looping forever.

use std::fmt;

use crate::Ns;

/// The default engine: the hierarchical timing wheel.
pub use crate::sched::Wheel as Engine;

/// Why a guarded run stopped before its event queue drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overrun {
    /// The next pending event lies beyond the deadline.
    Deadline {
        deadline: Ns,
        now: Ns,
        pending: usize,
        processed: u64,
    },
    /// The run dispatched its entire event budget without draining.
    EventBudget {
        budget: u64,
        now: Ns,
        pending: usize,
    },
}

impl fmt::Display for Overrun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Overrun::Deadline { deadline, now, pending, processed } => write!(
                f,
                "scenario overran its deadline: {processed} events processed, clock at \
                 {now} ns with {pending} event(s) still pending past deadline {deadline} ns"
            ),
            Overrun::EventBudget { budget, now, pending } => write!(
                f,
                "scenario exhausted its event budget of {budget} events at {now} ns \
                 with {pending} event(s) still pending (self-perpetuating schedule?)"
            ),
        }
    }
}

impl std::error::Error for Overrun {}

pub mod reference {
    //! The seed `BinaryHeap` engine, kept as the semantic reference the
    //! timing wheel is validated (and benchmarked) against.  Every pop
    //! is an O(log n) comparison-based sift; cancellation tombstones
    //! events in a side set and skips them on pop, which is exactly the
    //! delivered-and-ignored cost model the wheel's slab tombstones
    //! replace.

    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};

    use super::Overrun;
    use crate::sched::{drive, EventQueue};
    use crate::Ns;

    /// Cancellation handle for the reference engine: the event's
    /// sequence number.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RefToken(u64);

    /// The event queue plus the simulation clock.
    #[derive(Debug)]
    pub struct Engine<E> {
        queue: BinaryHeap<Reverse<(Ns, u64, EventSlot<E>)>>,
        now: Ns,
        seq: u64,
        processed: u64,
        /// Seqs of armed cancellable events (membership only — never
        /// iterated, so determinism is unaffected).
        cancellable: HashSet<u64>,
        /// Seqs tombstoned by `cancel`, skipped on pop.
        cancelled: HashSet<u64>,
    }

    /// Wrapper so payloads don't need Ord.
    #[derive(Debug)]
    struct EventSlot<E>(E);

    impl<E> PartialEq for EventSlot<E> {
        fn eq(&self, _: &Self) -> bool {
            true
        }
    }
    impl<E> Eq for EventSlot<E> {}
    impl<E> PartialOrd for EventSlot<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for EventSlot<E> {
        fn cmp(&self, _: &Self) -> std::cmp::Ordering {
            std::cmp::Ordering::Equal
        }
    }

    impl<E> Default for Engine<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> Engine<E> {
        pub fn new() -> Self {
            Engine {
                queue: BinaryHeap::new(),
                now: 0,
                seq: 0,
                processed: 0,
                cancellable: HashSet::new(),
                cancelled: HashSet::new(),
            }
        }

        /// Current simulation time.
        pub fn now(&self) -> Ns {
            self.now
        }

        fn push(&mut self, at: Ns, payload: E) -> u64 {
            let at = at.max(self.now);
            let seq = self.seq;
            self.queue.push(Reverse((at, seq, EventSlot(payload))));
            self.seq += 1;
            seq
        }

        /// Schedule `payload` at absolute time `at` (clamped to now).
        pub fn schedule(&mut self, at: Ns, payload: E) {
            self.push(at, payload);
        }

        /// Schedule `payload` `delay` after now, saturating at
        /// `Ns::MAX` instead of wrapping.
        pub fn schedule_in(&mut self, delay: Ns, payload: E) {
            self.schedule(self.now.saturating_add(delay), payload);
        }

        /// Schedule with a cancellation handle.
        pub fn schedule_cancellable(&mut self, at: Ns, payload: E) -> RefToken {
            let seq = self.push(at, payload);
            self.cancellable.insert(seq);
            RefToken(seq)
        }

        /// Tombstone a pending event.  Returns `false` if it was
        /// already delivered or cancelled.
        pub fn cancel(&mut self, token: RefToken) -> bool {
            if self.cancellable.remove(&token.0) {
                self.cancelled.insert(token.0);
                true
            } else {
                false
            }
        }

        /// Drop tombstoned events sitting at the head of the queue.
        fn purge(&mut self) {
            while let Some(Reverse((_, seq, _))) = self.queue.peek() {
                if self.cancelled.contains(seq) {
                    let Some(Reverse((_, seq, _))) = self.queue.pop() else { unreachable!() };
                    self.cancelled.remove(&seq);
                } else {
                    return;
                }
            }
        }

        /// Pop the next event, advancing the clock to its time.
        pub fn pop(&mut self) -> Option<(Ns, E)> {
            self.purge();
            let Reverse((t, seq, EventSlot(e))) = self.queue.pop()?;
            self.cancellable.remove(&seq);
            self.now = t;
            self.processed += 1;
            Some((t, e))
        }

        /// Total events popped over the engine's lifetime.
        pub fn processed(&self) -> u64 {
            self.processed
        }

        /// Time of the next pending event, if any.
        pub fn peek_time(&mut self) -> Option<Ns> {
            self.purge();
            self.queue.peek().map(|Reverse((t, _, _))| *t)
        }

        /// Dispatch events through `handler` until the queue drains,
        /// guarded by `deadline` (simulation time) and `max_events`
        /// (dispatch budget for this call).  The handler may schedule
        /// new events through the engine reference it is passed.
        ///
        /// Returns the number of events dispatched on a clean drain, or
        /// an [`Overrun`] diagnostic if the next event would pass the
        /// deadline or the budget is exhausted with events still
        /// pending — the misbehaving-scenario backstop.
        pub fn run_until<F>(&mut self, deadline: Ns, max_events: u64, handler: F) -> Result<u64, Overrun>
        where
            F: FnMut(&mut Self, Ns, E),
        {
            drive(self, deadline, max_events, handler)
        }

        /// Advance the clock without an event (e.g. processing time).
        pub fn advance(&mut self, delta: Ns) {
            self.now += delta;
        }

        /// Live (uncancelled) event count.
        pub fn pending(&self) -> usize {
            self.queue.len() - self.cancelled.len()
        }

        pub fn is_idle(&self) -> bool {
            self.pending() == 0
        }
    }

    impl<E> EventQueue<E> for Engine<E> {
        type Token = RefToken;

        fn now(&self) -> Ns {
            Engine::now(self)
        }
        fn schedule(&mut self, at: Ns, payload: E) {
            Engine::schedule(self, at, payload)
        }
        fn schedule_in(&mut self, delay: Ns, payload: E) {
            Engine::schedule_in(self, delay, payload)
        }
        fn schedule_cancellable(&mut self, at: Ns, payload: E) -> RefToken {
            Engine::schedule_cancellable(self, at, payload)
        }
        fn cancel(&mut self, token: RefToken) -> bool {
            Engine::cancel(self, token)
        }
        fn pop(&mut self) -> Option<(Ns, E)> {
            Engine::pop(self)
        }
        fn peek_time(&mut self) -> Option<Ns> {
            Engine::peek_time(self)
        }
        fn pending(&self) -> usize {
            Engine::pending(self)
        }
        fn processed(&self) -> u64 {
            Engine::processed(self)
        }
        fn advance(&mut self, delta: Ns) {
            Engine::advance(self, delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_and_advances_clock() {
        let mut e = Engine::new();
        e.schedule(300, "c");
        e.schedule(100, "a");
        e.schedule(200, "b");
        assert_eq!(e.pop(), Some((100, "a")));
        assert_eq!(e.now(), 100);
        assert_eq!(e.pop(), Some((200, "b")));
        assert_eq!(e.pop(), Some((300, "c")));
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn equal_times_fifo() {
        let mut e = Engine::new();
        e.schedule(5, 1);
        e.schedule(5, 2);
        assert_eq!(e.pop().unwrap().1, 1);
        assert_eq!(e.pop().unwrap().1, 2);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut e = Engine::new();
        e.schedule(100, "first");
        e.pop();
        e.schedule(50, "late");
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, 100, "no time travel");
    }

    #[test]
    fn schedule_in_saturates_instead_of_wrapping() {
        // Regression: `now + delay` used to wrap around and file the
        // event in the past (or panic in debug builds).
        let mut e = Engine::new();
        e.schedule(1_000, "tick");
        e.pop();
        e.schedule_in(Ns::MAX, "horizon");
        assert_eq!(e.pop(), Some((Ns::MAX, "horizon")));
        assert_eq!(e.now(), Ns::MAX);
    }

    #[test]
    fn reference_schedule_in_saturates_too() {
        let mut e = reference::Engine::new();
        e.schedule(1_000, "tick");
        e.pop();
        e.schedule_in(Ns::MAX, "horizon");
        assert_eq!(e.pop(), Some((Ns::MAX, "horizon")));
    }

    #[test]
    fn advance_moves_clock() {
        let mut e: Engine<()> = Engine::new();
        e.advance(42);
        assert_eq!(e.now(), 42);
    }

    #[test]
    fn run_until_drains_and_counts() {
        let mut e = Engine::new();
        e.schedule(10, 1u32);
        e.schedule(20, 2);
        let mut seen = Vec::new();
        let n = e
            .run_until(1_000, 100, |eng, t, v| {
                seen.push((t, v));
                if v == 1 {
                    eng.schedule_in(5, 3); // handler may schedule more
                }
            })
            .expect("well-behaved scenario drains");
        assert_eq!(n, 3);
        assert_eq!(seen, vec![(10, 1), (15, 3), (20, 2)]);
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn run_until_reports_deadline_overrun() {
        let mut e = Engine::new();
        e.schedule(10, "ok");
        e.schedule(500, "late");
        let err = e.run_until(100, 100, |_, _, _| {}).unwrap_err();
        match err {
            Overrun::Deadline { deadline, pending, processed, .. } => {
                assert_eq!(deadline, 100);
                assert_eq!(pending, 1);
                assert_eq!(processed, 1);
            }
            other => panic!("expected deadline overrun, got {other:?}"),
        }
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn run_until_stops_self_perpetuating_schedule() {
        // A storm that reschedules itself forever must terminate with a
        // budget diagnostic instead of looping.
        let mut e = Engine::new();
        e.schedule(0, ());
        let err = e
            .run_until(Ns::MAX, 1_000, |eng, _, ()| eng.schedule_in(1, ()))
            .unwrap_err();
        match err {
            Overrun::EventBudget { budget, pending, .. } => {
                assert_eq!(budget, 1_000);
                assert!(pending >= 1);
            }
            other => panic!("expected event-budget overrun, got {other:?}"),
        }
        assert!(err.to_string().contains("event budget"));
    }

    #[test]
    fn cancelled_events_are_never_delivered() {
        let mut e = Engine::new();
        e.schedule(10, 0u32);
        let tok = e.schedule_cancellable(20, 1);
        e.schedule(30, 2);
        assert!(e.cancel(tok));
        assert!(!e.cancel(tok), "double cancel must fail");
        assert_eq!(e.pending(), 2);
        let mut seen = Vec::new();
        let n = e.run_until(Ns::MAX, 100, |_, t, v| seen.push((t, v))).unwrap();
        assert_eq!(n, 2, "cancelled events must not consume budget");
        assert_eq!(seen, vec![(10, 0), (30, 2)]);
    }

    #[test]
    fn reference_cancellation_matches_wheel_contract() {
        let mut e = reference::Engine::new();
        e.schedule(10, 0u32);
        let tok = e.schedule_cancellable(20, 1);
        e.schedule(30, 2);
        assert!(e.cancel(tok));
        assert!(!e.cancel(tok), "double cancel must fail");
        assert_eq!(e.pending(), 2);
        let mut seen = Vec::new();
        let n = e.run_until(Ns::MAX, 100, |_, t, v| seen.push((t, v))).unwrap();
        assert_eq!(n, 2, "cancelled events must not consume budget");
        assert_eq!(seen, vec![(10, 0), (30, 2)]);
    }

    #[test]
    fn cancel_after_delivery_fails_on_both_engines() {
        let mut w = Engine::new();
        let tok = w.schedule_cancellable(5, "timer");
        assert_eq!(w.pop(), Some((5, "timer")));
        assert!(!w.cancel(tok));

        let mut h = reference::Engine::new();
        let tok = h.schedule_cancellable(5, "timer");
        assert_eq!(h.pop(), Some((5, "timer")));
        assert!(!h.cancel(tok));
    }
}
