//! # netsim — the physical network substrate
//!
//! The paper's testbed is two DEC 3000/600 workstations on an isolated
//! 10 Mb/s Ethernet, each with a LANCE (AMD Am7990) adaptor on the
//! TURBOchannel.  This crate rebuilds that plumbing:
//!
//! * [`engine`] — a discrete-event simulator (nanosecond clock); the
//!   default queue is the hierarchical timing wheel from [`sched`],
//!   with the seed binary heap kept as [`engine::reference`].
//! * [`sched`] — the hierarchical timing-wheel scheduler: slab event
//!   arena, O(1) filing and cancellation, batched slot delivery.
//! * [`frame`] — Ethernet II framing with the 64-byte minimum and FCS.
//! * [`wire`] — 10 Mb/s serialization timing (57.6 µs for a minimum
//!   frame including preamble) plus propagation.
//! * [`lance`] — the LANCE controller: descriptor rings in *sparse*
//!   shared memory (the chip's 16-bit bus on a 32-bit TURBOchannel
//!   leaves a 16-bit gap after every 16-bit word, and a 16-byte gap
//!   after every 16 bytes of buffer), the copy-based versus
//!   direct/USC-style descriptor update disciplines whose difference is
//!   Table 1's 171 instructions, and the controller's measured latency
//!   (105 µs from handing a minimum frame to the chip until the
//!   transmit-complete interrupt).
//! * [`fault`] — smoltcp-style fault injection: probabilistic drop,
//!   corruption, reordering and duplication with a deterministic RNG,
//!   plus wire-shape fates (truncated / malformed / fragmented
//!   arrivals) for the byte-level data plane.
//! * [`buf`] — the pooled packet-buffer arena (cache-line-aligned,
//!   free-list-recycled, generation-checked handles) backing the
//!   zero-copy wire data plane.
//! * [`ring`] — lock-free bounded SPSC/MPSC rings (cache-line-padded
//!   atomics, batch push/pop) for the traffic dispatch plane's
//!   generator→worker hand-off and work-stealing injectors.
//! * [`sample`] — allocation-free stride/reservoir sampling primitives
//!   for the online layout profiler (`traffic::adapt`).

pub mod buf;
pub mod engine;
pub mod fault;
pub mod frame;
pub mod lance;
pub mod pcap;
pub mod ring;
pub mod rng;
pub mod sample;
pub mod sched;
pub mod wire;

pub use buf::{BufError, BufPool, PktBuf, PoolStats, BUF_CAP};
pub use engine::{Engine, Overrun};
pub use ring::{spsc, CachePadded, MpscRing, SpscConsumer, SpscProbe, SpscProducer};
pub use sample::{Reservoir, StrideSampler};
pub use sched::{CancelToken, EventQueue, Wheel};
pub use fault::{FaultInjector, FaultStats, Fate};
pub use frame::{EtherType, Frame, MacAddr};
pub use lance::{Descriptor, LanceChip, LanceTiming, SparseMem};
pub use pcap::PcapWriter;
pub use wire::Wire;

/// Nanoseconds — the simulation time unit.
pub type Ns = u64;

/// Microseconds to nanoseconds.
pub const fn us(n: u64) -> Ns {
    n * 1_000
}

/// Convert CPU cycles at `mhz` to nanoseconds (rounding up).
pub fn cycles_to_ns(cycles: u64, mhz: u64) -> Ns {
    (cycles * 1_000).div_ceil(mhz)
}

/// Convert nanoseconds to microseconds as f64.
pub fn ns_to_us(ns: Ns) -> f64 {
    ns as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        assert_eq!(us(105), 105_000);
        // 175 cycles at 175 MHz = 1 µs.
        assert_eq!(cycles_to_ns(175, 175), 1_000);
        assert_eq!(cycles_to_ns(1, 175), 6); // rounds up
        assert!((ns_to_us(57_600) - 57.6).abs() < 1e-9);
    }
}
