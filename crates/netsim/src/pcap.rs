//! libpcap-format capture writer (after smoltcp's `--pcap` example
//! option): record every frame the simulation puts on the wire and
//! inspect it in Wireshark.

use crate::Ns;

/// Linktype for Ethernet frames.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Classic pcap magic (microsecond timestamps).
pub const MAGIC: u32 = 0xa1b2_c3d4;

/// An in-memory pcap capture.
#[derive(Debug, Clone)]
pub struct PcapWriter {
    buf: Vec<u8>,
    records: usize,
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PcapWriter {
    /// A capture with the global header written.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(1024);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        PcapWriter { buf, records: 0 }
    }

    /// Append one frame captured at simulated time `at`.
    pub fn record(&mut self, at: Ns, frame: &[u8]) {
        let us = at / 1_000;
        let secs = (us / 1_000_000) as u32;
        let usecs = (us % 1_000_000) as u32;
        self.buf.extend_from_slice(&secs.to_le_bytes());
        self.buf.extend_from_slice(&usecs.to_le_bytes());
        self.buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(frame);
        self.records += 1;
    }

    /// Number of frames recorded.
    pub fn len(&self) -> usize {
        self.records
    }

    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The complete capture file contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write the capture to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, &self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_header_is_24_bytes_with_magic() {
        let w = PcapWriter::new();
        let b = w.as_bytes();
        assert_eq!(b.len(), 24);
        assert_eq!(u32::from_le_bytes(b[0..4].try_into().unwrap()), MAGIC);
        assert_eq!(
            u32::from_le_bytes(b[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn records_carry_timestamps_and_lengths() {
        let mut w = PcapWriter::new();
        let frame = vec![0xAAu8; 64];
        w.record(1_500_000, &frame); // 1.5 ms
        assert_eq!(w.len(), 1);
        let b = w.as_bytes();
        let rec = &b[24..];
        assert_eq!(u32::from_le_bytes(rec[0..4].try_into().unwrap()), 0); // secs
        assert_eq!(u32::from_le_bytes(rec[4..8].try_into().unwrap()), 1_500); // usecs
        assert_eq!(u32::from_le_bytes(rec[8..12].try_into().unwrap()), 64);
        assert_eq!(u32::from_le_bytes(rec[12..16].try_into().unwrap()), 64);
        assert_eq!(&rec[16..16 + 64], &frame[..]);
    }

    #[test]
    fn multiple_records_append() {
        let mut w = PcapWriter::new();
        w.record(0, &[1, 2, 3]);
        w.record(2_000_000_000, &[4, 5]); // 2 s
        assert_eq!(w.len(), 2);
        let b = w.as_bytes();
        assert_eq!(b.len(), 24 + 16 + 3 + 16 + 2);
        // Second record's seconds field.
        let second = &b[24 + 16 + 3..];
        assert_eq!(u32::from_le_bytes(second[0..4].try_into().unwrap()), 2);
    }
}
