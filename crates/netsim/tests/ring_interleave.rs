//! Loom-style interleaving suite for the dispatch-plane rings — with no
//! crates.io dependencies, three disciplines stand in for a model
//! checker:
//!
//! 1. **Exhaustive schedule enumeration**: every interleaving of
//!    producer/consumer *operations* on tiny rings is driven from one
//!    thread and checked step-by-step against a `VecDeque` model —
//!    full/empty edges, wrap-around, and batch paths all visited.
//! 2. **Seeded random schedules**: long random operation schedules with
//!    random batch sizes over larger rings, still model-checked.
//! 3. **Real-thread stress**: producers and consumers on real threads —
//!    the actual acquire/release (SPSC) and CAS-claim (MPSC) protocols
//!    under genuine contention, including consumer migration (the lane
//!    hand-off) and concurrent stealing consumers.
//!
//! Invariants: no element lost, none duplicated, FIFO per producer, and
//! a full/empty report is never wrong for the model state.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use netsim::rng::SplitMix64;
use netsim::{spsc, MpscRing};

// ---------------------------------------------------------------------
// 1. Exhaustive schedule enumeration (single thread, model-checked)
// ---------------------------------------------------------------------

/// A step-exact model of the SPSC ring *including* the cached-opposite-
/// index refinement: each endpoint refreshes its cached view of the
/// other only when its own view runs out, so accepted counts can lag
/// true occupancy — the model predicts exactly when.
struct SpscModel {
    capacity: usize,
    fifo: VecDeque<u64>,
    head: usize,
    tail: usize,
    head_cache: usize,
    tail_cache: usize,
}

impl SpscModel {
    fn new(capacity: usize) -> Self {
        SpscModel { capacity, fifo: VecDeque::new(), head: 0, tail: 0, head_cache: 0, tail_cache: 0 }
    }

    /// Producer's `free_space`: refresh the cached head only when the
    /// cached view is exhausted.
    fn free_space(&mut self) -> usize {
        if self.tail - self.head_cache == self.capacity {
            self.head_cache = self.head;
        }
        self.capacity - (self.tail - self.head_cache)
    }

    /// Consumer's `available`: refresh the cached tail only when the
    /// cached view is exhausted.
    fn available(&mut self) -> usize {
        if self.tail_cache == self.head {
            self.tail_cache = self.tail;
        }
        self.tail_cache - self.head
    }

    fn accept(&mut self, n: usize, next: u64) {
        for i in 0..n {
            self.fifo.push_back(next + i as u64);
        }
        self.tail += n;
    }

    fn release(&mut self, n: usize) -> Vec<u64> {
        self.head += n;
        (0..n).map(|_| self.fifo.pop_front().expect("model underflow")).collect()
    }
}

/// Drive one schedule on a fresh SPSC ring, checking every step against
/// the model.  Digits: 0 = push, 1 = pop, 2 = push_slice(3), 3 =
/// pop_batch(2).
fn run_spsc_schedule(capacity: usize, schedule: &[u8]) {
    let (mut p, mut c) = spsc::<u64>(capacity);
    let probe = c.probe();
    let mut model = SpscModel::new(capacity);
    let mut next = 0u64;
    let mut popped: Vec<u64> = Vec::new();
    for &op in schedule {
        match op {
            0 => {
                let want = model.free_space().min(1);
                let ok = p.push(next).is_ok();
                assert_eq!(ok as usize, want, "push full/ok disagrees with model");
                model.accept(want, next);
                next += want as u64;
            }
            1 => {
                let want = model.available().min(1);
                let got = c.pop();
                assert_eq!(got.is_some() as usize, want, "pop emptiness disagrees with model");
                let expect = model.release(want);
                assert_eq!(got.as_slice(), expect.as_slice(), "pop value disagrees");
                popped.extend(got);
            }
            2 => {
                let items = [next, next + 1, next + 2];
                let want = model.free_space().min(3);
                let n = p.push_slice(&items);
                assert_eq!(n, want, "push_slice count disagrees with model");
                model.accept(n, next);
                next += n as u64;
            }
            _ => {
                let want = model.available().min(2);
                let before = popped.len();
                let n = c.pop_batch(&mut popped, 2);
                assert_eq!(n, want, "pop_batch count disagrees with model");
                assert_eq!(&popped[before..], model.release(n), "pop_batch values disagree");
            }
        }
        // The probe bypasses both caches: always true occupancy.
        assert_eq!(probe.len(), model.fifo.len(), "probe occupancy drifted from true state");
        // The cached views lag truth but never run ahead of it — the
        // refinement can only under-report space/elements, never invent.
        assert!(model.head_cache <= model.head && model.tail_cache <= model.tail);
    }
    // Whatever was popped is an exact prefix of production order.
    let expect: Vec<u64> = (0..popped.len() as u64).collect();
    assert_eq!(popped, expect, "FIFO order broken");
}

#[test]
fn spsc_exhaustive_push_pop_schedules() {
    // All 2^12 push/pop interleavings on the two smallest rings: the
    // full and empty edges are hit constantly at capacity 1.
    for capacity in [1usize, 2] {
        let len = 12;
        for bits in 0..(1u32 << len) {
            let schedule: Vec<u8> = (0..len).map(|i| ((bits >> i) & 1) as u8).collect();
            run_spsc_schedule(capacity, &schedule);
        }
    }
}

#[test]
fn spsc_exhaustive_batch_schedules() {
    // All 4^8 schedules over {push, pop, push_slice, pop_batch} on
    // capacity-2 and capacity-4 rings: batch truncation at the full
    // edge and short batches at the empty edge, every way they can
    // interleave.
    for capacity in [2usize, 4] {
        let len = 8;
        for code in 0..(1u32 << (2 * len)) {
            let schedule: Vec<u8> = (0..len).map(|i| ((code >> (2 * i)) & 3) as u8).collect();
            run_spsc_schedule(capacity, &schedule);
        }
    }
}

#[test]
fn mpsc_exhaustive_two_producer_schedules() {
    // All 3^9 interleavings of {producer A push, producer B push, pop}
    // on a capacity-4 ring.  Single-threaded, so the ring must be
    // globally FIFO in schedule order; values are tagged with their
    // producer so per-producer order is also checked.
    let len = 9;
    let mut schedule = vec![0u8; len];
    let total = 3usize.pow(len as u32);
    for mut code in 0..total {
        for slot in schedule.iter_mut() {
            *slot = (code % 3) as u8;
            code /= 3;
        }
        let q = MpscRing::<u64>::new(4);
        let mut model: VecDeque<u64> = VecDeque::new();
        let (mut next_a, mut next_b) = (0u64, 0u64);
        let mut last_seen = [None::<u64>, None::<u64>];
        for &op in &schedule {
            match op {
                0 | 1 => {
                    let v = if op == 0 {
                        next_a
                    } else {
                        (1 << 32) | next_b
                    };
                    let ok = q.push(v).is_ok();
                    assert_eq!(ok, model.len() < 4, "push full/ok disagrees with model");
                    if ok {
                        model.push_back(v);
                        if op == 0 {
                            next_a += 1;
                        } else {
                            next_b += 1;
                        }
                    }
                }
                _ => {
                    let got = q.pop();
                    assert_eq!(got, model.pop_front(), "pop disagrees with model");
                    if let Some(v) = got {
                        let producer = (v >> 32) as usize;
                        let seq = v & 0xFFFF_FFFF;
                        assert!(
                            last_seen[producer].is_none_or(|prev| seq > prev),
                            "per-producer order broken"
                        );
                        last_seen[producer] = Some(seq);
                    }
                }
            }
            assert_eq!(q.is_empty(), model.is_empty());
        }
    }
}

// ---------------------------------------------------------------------
// 2. Seeded random schedules (single thread, model-checked)
// ---------------------------------------------------------------------

#[test]
fn spsc_seeded_random_schedules() {
    // Long random schedules over bigger rings: thousands of wrap-arounds
    // with random batch sizes, still lock-step with the model.
    for trial in 0..50u64 {
        let mut rng = SplitMix64::new(0x51C5_C0DE ^ trial);
        let capacity = 1usize << rng.range(0, 7); // 1..64
        let schedule: Vec<u8> = (0..2_000).map(|_| rng.below(4) as u8).collect();
        run_spsc_schedule(capacity, &schedule);
    }
}

#[test]
fn mpsc_seeded_random_schedules() {
    for trial in 0..50u64 {
        let mut rng = SplitMix64::new(0xB1A5ED ^ trial);
        let capacity = 2usize << rng.range(0, 5); // 2..64 (Vyukov floor is 2)
        let q = MpscRing::<u64>::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for _ in 0..2_000 {
            if rng.bool() {
                let ok = q.push(next).is_ok();
                assert_eq!(ok, model.len() < capacity);
                if ok {
                    model.push_back(next);
                    next += 1;
                }
            } else {
                assert_eq!(q.pop(), model.pop_front());
            }
            assert_eq!(q.len(), model.len());
        }
    }
}

// ---------------------------------------------------------------------
// 3. Real-thread stress (actual memory-ordering protocols)
// ---------------------------------------------------------------------

#[test]
fn spsc_threaded_stress_is_lossless_and_ordered() {
    // Producer mixes push/push_slice, consumer mixes pop/pop_batch —
    // the consumer must see exactly 0..N in order, every trial.  Every
    // unproductive iteration yields: this suite must also pass on a
    // single-core host, where an unyielding spin burns a whole quantum
    // per stall.
    const N: u64 = 20_000;
    for (trial, capacity) in [(0u64, 4usize), (1, 64), (2, 1024)] {
        let (mut p, mut c) = spsc::<u64>(capacity);
        let producer = thread::spawn(move || {
            let mut rng = SplitMix64::new(0xFEED ^ trial);
            let mut next = 0u64;
            while next < N {
                let made = if rng.bool() {
                    let hi = (next + 1 + rng.below(8)).min(N);
                    let batch: Vec<u64> = (next..hi).collect();
                    p.push_slice(&batch) as u64
                } else {
                    u64::from(p.push(next).is_ok())
                };
                next += made;
                if made == 0 {
                    thread::yield_now();
                }
            }
        });
        let mut rng = SplitMix64::new(0xC0DE ^ trial);
        let mut seen = 0u64;
        let mut buf = Vec::new();
        while seen < N {
            let before = seen;
            if rng.bool() {
                buf.clear();
                c.pop_batch(&mut buf, 16);
                for &v in &buf {
                    assert_eq!(v, seen, "lost or reordered element");
                    seen += 1;
                }
            } else if let Some(v) = c.pop() {
                assert_eq!(v, seen, "lost or reordered element");
                seen += 1;
            }
            if seen == before {
                thread::yield_now();
            }
        }
        assert_eq!(c.pop(), None, "ring must be drained");
        producer.join().unwrap();
    }
}

#[test]
fn spsc_consumer_migrates_between_threads_mid_stream() {
    // The lane-ownership protocol moves a consumer handle between
    // executor threads; the hand-off must not lose, duplicate, or
    // reorder in-flight elements.
    const N: u64 = 20_000;
    let (mut p, mut c) = spsc::<u64>(64);
    let producer = thread::spawn(move || {
        let mut next = 0u64;
        while next < N {
            if p.push(next).is_ok() {
                next += 1;
            } else {
                thread::yield_now();
            }
        }
    });
    let first = thread::spawn(move || {
        let mut seen = 0u64;
        while seen < N / 2 {
            if let Some(v) = c.pop() {
                assert_eq!(v, seen);
                seen += 1;
            } else {
                thread::yield_now();
            }
        }
        (c, seen) // migrate the handle with elements still in flight
    });
    let (mut c, mut seen) = first.join().unwrap();
    let second = thread::spawn(move || {
        while seen < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, seen, "migration lost or reordered an element");
                seen += 1;
            } else {
                thread::yield_now();
            }
        }
        assert_eq!(c.pop(), None);
    });
    second.join().unwrap();
    producer.join().unwrap();
}

#[test]
fn mpsc_many_producers_single_consumer_stress() {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 10_000;
    let q = MpscRing::<u64>::new(256);
    thread::scope(|s| {
        for producer in 0..PRODUCERS {
            let q = &q;
            s.spawn(move || {
                for seq in 0..PER_PRODUCER {
                    let v = (producer << 32) | seq;
                    loop {
                        if q.push(v).is_ok() {
                            break;
                        }
                        thread::yield_now();
                    }
                }
            });
        }
        let mut last_seen = [None::<u64>; PRODUCERS as usize];
        let mut received = 0u64;
        while received < PRODUCERS * PER_PRODUCER {
            if let Some(v) = q.pop() {
                let (producer, seq) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
                assert!(
                    last_seen[producer].is_none_or(|prev| seq == prev + 1),
                    "producer {producer} not FIFO: {seq} after {:?}",
                    last_seen[producer]
                );
                last_seen[producer] = Some(seq);
                received += 1;
            } else {
                thread::yield_now();
            }
        }
        assert!(q.pop().is_none(), "ring must be drained");
    });
}

#[test]
fn mpsc_concurrent_stealing_consumers_never_lose_or_duplicate() {
    // Two producers, two CAS-claiming consumers (one "owner", one
    // "thief" — exactly the work-stealing hand-off).  Union of claims
    // must be the exact produced multiset; each consumer's local view
    // must be per-producer increasing (claims happen in dequeue order).
    const PRODUCERS: u64 = 2;
    const PER_PRODUCER: u64 = 10_000;
    let q = MpscRing::<u64>::new(128);
    let done = AtomicBool::new(false);
    let mut views: Vec<Vec<u64>> = Vec::new();
    thread::scope(|s| {
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|producer| {
                let q = &q;
                s.spawn(move || {
                    for seq in 0..PER_PRODUCER {
                        let v = (producer << 32) | seq;
                        while q.push(v).is_err() {
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let (q, done) = (&q, &done);
                s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match q.pop() {
                            Some(v) => got.push(v),
                            // Re-check emptiness *after* observing done:
                            // everything pushed before the signal is
                            // still claimable, so drain then stop.
                            None if done.load(Ordering::Acquire) => match q.pop() {
                                Some(v) => got.push(v),
                                None => break,
                            },
                            None => thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for h in consumers {
            views.push(h.join().unwrap());
        }
    });
    // Per-consumer: per-producer sequences strictly increase.
    for view in &views {
        let mut last = [None::<u64>; PRODUCERS as usize];
        for &v in view {
            let (producer, seq) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
            assert!(
                last[producer].is_none_or(|prev| seq > prev),
                "consumer view not per-producer increasing"
            );
            last[producer] = Some(seq);
        }
    }
    // Union: exactly the produced multiset — nothing lost, nothing
    // claimed twice.
    let mut all: Vec<u64> = views.concat();
    all.sort_unstable();
    let mut expect: Vec<u64> = (0..PRODUCERS)
        .flat_map(|p| (0..PER_PRODUCER).map(move |s| (p << 32) | s))
        .collect();
    expect.sort_unstable();
    assert_eq!(all, expect, "stealing lost or duplicated elements");
}
