//! Seeded property suite for scheduler semantics (the PR-1 SplitMix64
//! convention: explicit seed loops, no external property-test crate).
//!
//! The contract under test: the hierarchical timing wheel
//! ([`netsim::Wheel`], the default [`netsim::Engine`]) is observation-
//! equivalent to the seed binary heap ([`netsim::engine::reference`])
//! — same delivery trace, same clock, same pending/processed counters,
//! same `run_until` Overrun diagnostics, same cancellation results —
//! under arbitrary mixes of schedule / schedule_cancellable / cancel /
//! pop / advance / run_until, including handler-driven reentrant
//! scheduling and cancellation, equal-timestamp collisions, and
//! deadlines straddling wheel-level boundaries.

use netsim::engine::reference;
use netsim::rng::SplitMix64;
use netsim::sched::EventQueue;
use netsim::{Engine, Ns, Overrun};

/// Spawner bit: delivered events with this bit set schedule one child
/// event (bit cleared, so chains terminate).
const SPAWN: u32 = 0x8000_0000;

/// One scripted operation, replayed identically against both engines.
#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule { at: Ns, tag: u32 },
    ScheduleCancellable { at: Ns, tag: u32 },
    /// Cancel the `arm`-th issued token (modulo the issued count).
    Cancel { arm: usize },
    Pop { count: usize },
    RunUntil { deadline: Ns, budget: u64 },
    Advance { delta: Ns },
}

/// Everything observable about a run: deliveries, per-op snapshots of
/// (now, pending, processed), cancel results and run_until outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Trace {
    delivered: Vec<(Ns, u32)>,
    snapshots: Vec<(Ns, usize, u64)>,
    cancels: Vec<bool>,
    runs: Vec<Result<u64, Overrun>>,
}

/// A time offset that stresses every wheel shape: near offsets, far
/// offsets, exact 64^k level boundaries ±1, zero, and the past (which
/// must clamp to now).
fn gen_at(rng: &mut SplitMix64, now: Ns) -> Ns {
    match rng.below(10) {
        0..=2 => {
            let bits = 1 + rng.below(12) as u32;
            now + rng.below(1 << bits)
        }
        3..=4 => {
            let bits = 12 + rng.below(24) as u32;
            now + rng.below(1 << bits)
        }
        5 => {
            // Straddle a level boundary: 64^l - 1, 64^l, 64^l + 1.
            let l = 1 + rng.below(6) as u32;
            now.saturating_add((1u64 << (6 * l)) - 1 + rng.below(3))
        }
        6 => now, // immediate
        7 => now.saturating_sub(rng.below(1 << 20)), // past: clamps
        8 => now + 1 + rng.below(64), // dense same-block collisions
        _ => now + rng.below(1 << 30),
    }
}

fn gen_script(seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed);
    let mut now_guess: Ns = 0; // only steers time generation
    let mut armed = 0usize;
    let mut script = Vec::with_capacity(ops);
    for _ in 0..ops {
        let op = match rng.below(12) {
            0..=3 => Op::Schedule { at: gen_at(&mut rng, now_guess), tag: rng.next_u64() as u32 },
            4..=6 => {
                armed += 1;
                Op::ScheduleCancellable { at: gen_at(&mut rng, now_guess), tag: rng.next_u64() as u32 }
            }
            7 if armed > 0 => Op::Cancel { arm: rng.below(armed as u64) as usize },
            7 => Op::Schedule { at: gen_at(&mut rng, now_guess), tag: rng.next_u64() as u32 },
            8..=9 => Op::Pop { count: 1 + rng.below(8) as usize },
            10 => {
                now_guess = now_guess.saturating_add(rng.below(1 << 22));
                Op::RunUntil {
                    deadline: now_guess,
                    budget: 1 + rng.below(40),
                }
            }
            _ => {
                let delta = rng.below(1 << 16);
                now_guess = now_guess.saturating_add(delta);
                Op::Advance { delta }
            }
        };
        script.push(op);
    }
    // Always finish with a full drain so every schedule is observed.
    script.push(Op::RunUntil { deadline: Ns::MAX, budget: u64::MAX });
    script
}

/// Handler body shared by both engines: record the delivery, and let
/// SPAWN-tagged events reenter the scheduler (schedule, arm a
/// cancellable timer, cancel an armed one, or saturating schedule_in).
fn on_event<Q: EventQueue<u32>>(
    q: &mut Q,
    t: Ns,
    tag: u32,
    trace: &mut Trace,
    tokens: &mut Vec<Q::Token>,
) {
    trace.delivered.push((t, tag));
    if tag & SPAWN == 0 {
        return;
    }
    let child = tag & !SPAWN;
    match child % 4 {
        0 => q.schedule(t + (child as u64 % 97), child),
        1 => tokens.push(q.schedule_cancellable(t + 1 + (child as u64 % 4096), child)),
        2 if !tokens.is_empty() => {
            let i = child as usize % tokens.len();
            let tok = tokens[i];
            trace.cancels.push(q.cancel(tok));
        }
        _ => q.schedule_in(child as u64 % 300, child),
    }
}

fn run_script<Q: EventQueue<u32>>(q: &mut Q, script: &[Op]) -> Trace {
    let mut trace = Trace::default();
    let mut tokens: Vec<Q::Token> = Vec::new();
    for op in script {
        match *op {
            Op::Schedule { at, tag } => q.schedule(at, tag),
            Op::ScheduleCancellable { at, tag } => tokens.push(q.schedule_cancellable(at, tag)),
            Op::Cancel { arm } => {
                let tok = tokens[arm % tokens.len()];
                let r = q.cancel(tok);
                trace.cancels.push(r);
            }
            Op::Pop { count } => {
                for _ in 0..count {
                    match q.pop() {
                        Some((t, tag)) => trace.delivered.push((t, tag)),
                        None => break,
                    }
                }
            }
            Op::RunUntil { deadline, budget } => {
                let r = q.run_until(deadline, budget, |q, t, tag| {
                    on_event(q, t, tag, &mut trace, &mut tokens)
                });
                trace.runs.push(r);
            }
            Op::Advance { delta } => q.advance(delta),
        }
        trace.snapshots.push((q.now(), q.pending(), q.processed()));
    }
    trace
}

#[test]
fn wheel_matches_reference_on_random_mixes() {
    for case in 0..96u64 {
        let script = gen_script(0x5EED_0000 + case, 160);
        let mut wheel: Engine<u32> = Engine::new();
        let mut heap: reference::Engine<u32> = reference::Engine::new();
        let a = run_script(&mut wheel, &script);
        let b = run_script(&mut heap, &script);
        assert_eq!(a, b, "case {case}: wheel and reference heap diverged");
    }
}

#[test]
fn delivery_order_is_total_by_time_then_seq() {
    // Within any run, delivered times are non-decreasing, and every
    // burst at one timestamp preserves scheduling (seq) order — checked
    // via monotone tags at colliding timestamps.
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xF1F0_0000 + case);
        let mut wheel: Engine<u32> = Engine::new();
        let times: Vec<Ns> = (0..8).map(|_| rng.below(1 << 30)).collect();
        for counter in 0..400u32 {
            let t = times[rng.below(times.len() as u64) as usize];
            wheel.schedule(t, counter);
        }
        let mut seen: Vec<(Ns, u32)> = Vec::new();
        while let Some(pair) = wheel.pop() {
            seen.push(pair);
        }
        assert_eq!(seen.len(), 400);
        for w in seen.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated: {w:?}");
            if w[0].0 == w[1].0 {
                assert!(
                    w[0].1 < w[1].1,
                    "FIFO order violated at t={}: {} before {}",
                    w[0].0,
                    w[0].1,
                    w[1].1
                );
            }
        }
    }
}

#[test]
fn fifo_stability_survives_cascading() {
    // Schedule events at ONE far timestamp from several different clock
    // positions, so some file at high wheel levels and cascade down
    // while others file directly at level 0 — delivery must still be in
    // scheduling order.
    let target: Ns = (1 << 18) + 4242;
    let mut wheel = Engine::new();
    let mut heap = reference::Engine::new();
    let mut next_tag = 0u32;
    let mut milestones = vec![0u64, 1 << 6, 1 << 12, 1 << 17, target - 1];
    milestones.sort_unstable();
    for (i, m) in milestones.iter().enumerate() {
        // A pacing event to advance the clock to `m`...
        wheel.schedule(*m, u32::MAX - i as u32);
        heap.schedule(*m, u32::MAX - i as u32);
    }
    for _ in &milestones {
        // ...pop it, then schedule two target events from this clock.
        let (tw, _) = wheel.pop().unwrap();
        let (th, _) = heap.pop().unwrap();
        assert_eq!(tw, th);
        for _ in 0..2 {
            wheel.schedule(target, next_tag);
            heap.schedule(target, next_tag);
            next_tag += 1;
        }
    }
    let mut wheel_tags = Vec::new();
    while let Some((t, tag)) = wheel.pop() {
        assert_eq!(t, target);
        wheel_tags.push(tag);
    }
    let mut heap_tags = Vec::new();
    while let Some((t, tag)) = heap.pop() {
        assert_eq!(t, target);
        heap_tags.push(tag);
    }
    let expect: Vec<u32> = (0..next_tag).collect();
    assert_eq!(wheel_tags, expect, "wheel lost FIFO order across cascades");
    assert_eq!(heap_tags, expect);
}

#[test]
fn cascades_are_exact_at_level_boundaries() {
    // Deadlines packed around every 64^l boundary must come out in
    // exact sorted order on both engines, from both a zero clock and a
    // mid-flight clock.
    for start_pop in [false, true] {
        let mut wheel = Engine::new();
        let mut heap = reference::Engine::new();
        if start_pop {
            wheel.schedule(12_345, 0u32);
            heap.schedule(12_345, 0u32);
            wheel.pop();
            heap.pop();
        }
        let base = wheel.now();
        let mut tag = 1u32;
        for l in 1..=8u32 {
            let b = 1u64 << (6 * l);
            for d in [b - 2, b - 1, b, b + 1, b + 63, b + 64] {
                wheel.schedule(base + d, tag);
                heap.schedule(base + d, tag);
                tag += 1;
            }
        }
        let mut a = Vec::new();
        while let Some(p) = wheel.pop() {
            a.push(p);
        }
        let mut b = Vec::new();
        while let Some(p) = heap.pop() {
            b.push(p);
        }
        assert_eq!(a, b, "boundary drains diverged (start_pop={start_pop})");
        let mut sorted = a.clone();
        sorted.sort_by_key(|&(t, g)| (t, g));
        assert_eq!(a, sorted, "boundary drain out of order");
    }
}

#[test]
fn cancellation_equivalence_under_stress() {
    // Arm and cancel timers aggressively (the RTO pattern: most timers
    // are superseded before they fire) — both engines must agree on
    // every cancel result and every surviving delivery.
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xCA9C_E100 + case);
        let mut wheel: Engine<u32> = Engine::new();
        let mut heap: reference::Engine<u32> = reference::Engine::new();
        let mut wtoks = Vec::new();
        let mut htoks = Vec::new();
        let mut wres = Vec::new();
        let mut hres = Vec::new();
        for i in 0..600u32 {
            let at = rng.below(1 << 26);
            wtoks.push(wheel.schedule_cancellable(at, i));
            htoks.push(heap.schedule_cancellable(at, i));
            if rng.chance(0.7) && !wtoks.is_empty() {
                let j = rng.below(wtoks.len() as u64) as usize;
                wres.push(wheel.cancel(wtoks[j]));
                hres.push(heap.cancel(htoks[j]));
            }
            if rng.chance(0.2) {
                assert_eq!(wheel.pop(), heap.pop());
            }
        }
        assert_eq!(wres, hres, "case {case}: cancel results diverged");
        assert_eq!(wheel.pending(), heap.pending());
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b, "case {case}: drain diverged");
            if a.is_none() {
                break;
            }
        }
    }
}

#[test]
fn overrun_diagnostics_are_identical() {
    // Deadline and budget overruns must carry identical accounting on
    // both engines, including live pending counts with tombstones in
    // the queue.
    let mut wheel: Engine<u32> = Engine::new();
    let mut heap: reference::Engine<u32> = reference::Engine::new();
    for (at, tag) in [(100u64, 1u32), (200, 2), (300, 3), (10_000, 4)] {
        wheel.schedule(at, tag);
        heap.schedule(at, tag);
    }
    let wt = wheel.schedule_cancellable(250, 9);
    let ht = heap.schedule_cancellable(250, 9);
    assert!(wheel.cancel(wt));
    assert!(heap.cancel(ht));
    let rw = wheel.run_until(500, 100, |_, _, _| {});
    let rh = heap.run_until(500, 100, |_, _, _| {});
    assert_eq!(rw, rh);
    assert!(matches!(rw, Err(Overrun::Deadline { pending: 1, processed: 3, .. })));

    let rw = wheel.run_until(Ns::MAX, 0, |_, _, _| {});
    let rh = heap.run_until(Ns::MAX, 0, |_, _, _| {});
    assert_eq!(rw, rh);
    assert!(matches!(rw, Err(Overrun::EventBudget { pending: 1, .. })));
}
