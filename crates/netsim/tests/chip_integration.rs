//! Chip-level integration: two LANCE controllers exchanging frames over
//! the wire model with fault injection, exercising the sparse
//! shared-memory rings in both access disciplines.

use netsim::fault::{FaultInjector, Fate};
use netsim::frame::{EtherType, Frame, MacAddr};
use netsim::lance::{Descriptor, LanceChip, LanceTiming};
use netsim::wire::Wire;

fn chip(base: u64) -> LanceChip {
    let mut c = LanceChip::new(base, 4, LanceTiming::dec3000_600());
    for i in 0..4 {
        let at = c.rx.desc_at(i);
        Descriptor { buf: 0, flags: Descriptor::OWN, bcnt: 1518, status: 0, mcnt: 0 }
            .write_copy(&mut c.mem, at);
    }
    c.mem.reset_counters();
    c
}

fn queue_tx(c: &mut LanceChip, idx: usize, frame: &Frame) {
    let bytes = frame.to_bytes();
    let buf = c.tx.buf_at(idx);
    c.mem.write_buf(buf, &bytes);
    Descriptor {
        buf: buf as u32,
        flags: Descriptor::OWN | Descriptor::STP | Descriptor::ENP,
        bcnt: bytes.len() as u16,
        status: 0,
        mcnt: 0,
    }
    .write_copy(&mut c.mem, c.tx.desc_at(idx));
}

#[test]
fn frames_cross_between_two_chips() {
    let mut a = chip(0x0300_0000);
    let mut b = chip(0x0400_0000);
    let mut wire = Wire::ethernet_10mbps();

    let f = Frame::new(
        MacAddr([2, 0, 0, 0, 0, 2]),
        MacAddr([2, 0, 0, 0, 0, 1]),
        EtherType::Ipv4,
        b"chip-to-chip".to_vec(),
    );
    queue_tx(&mut a, 0, &f);
    let bytes = a.chip_transmit().expect("A transmits");
    let (_, arrival) = wire.transmit(0, &f);
    assert!(arrival > 57_000, "minimum frame time on the wire");
    let idx = b.chip_receive(&bytes).expect("B receives");
    let got = b.driver_read_rx_frame(idx).expect("parses");
    assert!(got.payload.starts_with(b"chip-to-chip"));
}

#[test]
fn ring_wraps_after_len_frames() {
    let mut a = chip(0x0300_0000);
    let mut b = chip(0x0400_0000);
    let f = Frame::new(
        MacAddr([0; 6]),
        MacAddr([1; 6]),
        EtherType::Xrpc,
        vec![7u8; 100],
    );
    for round in 0..10 {
        let idx = round % 4;
        queue_tx(&mut a, idx, &f);
        let bytes = a.chip_transmit().expect("tx");
        let ridx = b.chip_receive(&bytes).expect("rx");
        assert_eq!(ridx, idx, "rings advance in lockstep");
        // Driver re-arms the consumed rx descriptor.
        Descriptor { buf: 0, flags: Descriptor::OWN, bcnt: 1518, status: 0, mcnt: 0 }
            .write_copy(&mut b.mem, b.rx.desc_at(ridx));
    }
    assert_eq!(a.tx_done, 10);
    assert_eq!(b.rx_delivered, 10);
}

#[test]
fn corrupted_frames_fail_parse_at_the_receiver() {
    let mut a = chip(0x0300_0000);
    let mut b = chip(0x0400_0000);
    let mut inj = FaultInjector::new(0.0, 1.0, 3);
    let f = Frame::new(
        MacAddr([0; 6]),
        MacAddr([1; 6]),
        EtherType::Ipv4,
        b"to-be-corrupted".to_vec(),
    );
    queue_tx(&mut a, 0, &f);
    let mut bytes = a.chip_transmit().unwrap();
    assert_eq!(inj.process(&mut bytes), Fate::Corrupted);
    let idx = b.chip_receive(&bytes).expect("chip still DMAs the frame");
    assert!(
        b.driver_read_rx_frame(idx).is_none(),
        "FCS check at the driver rejects it"
    );
}

#[test]
fn usc_discipline_touches_fewer_shared_memory_words() {
    let mut copy_chip = chip(0x0300_0000);
    let mut usc_chip = chip(0x0400_0000);
    let f = Frame::new(
        MacAddr([0; 6]),
        MacAddr([1; 6]),
        EtherType::Ipv4,
        vec![1u8; 50],
    );
    let bytes = f.to_bytes();

    // Copy discipline: full descriptor read + write around the update.
    copy_chip.mem.write_buf(copy_chip.tx.buf_at(0), &bytes);
    let at = copy_chip.tx.desc_at(0);
    let mut d = Descriptor::read_copy(&mut copy_chip.mem, at);
    d.buf = copy_chip.tx.buf_at(0) as u32;
    d.bcnt = bytes.len() as u16;
    d.flags = Descriptor::OWN | Descriptor::STP | Descriptor::ENP;
    d.write_copy(&mut copy_chip.mem, at);
    let copy_words = copy_chip.mem.word_reads + copy_chip.mem.word_writes
        - (bytes.len() as u64).div_ceil(2); // exclude the payload copy

    // USC discipline: only the words that change.
    usc_chip.mem.write_buf(usc_chip.tx.buf_at(0), &bytes);
    let at = usc_chip.tx.desc_at(0);
    Descriptor::direct_write_bcnt(&mut usc_chip.mem, at, bytes.len() as u16);
    Descriptor::direct_write_flags(
        &mut usc_chip.mem,
        at,
        Descriptor::OWN | Descriptor::STP | Descriptor::ENP,
    );
    let usc_words = usc_chip.mem.word_reads + usc_chip.mem.word_writes
        - (bytes.len() as u64).div_ceil(2);

    assert!(
        usc_words * 3 <= copy_words,
        "USC {usc_words} words vs copy {copy_words} words"
    );
}
