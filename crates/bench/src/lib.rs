//! Shared setup for the benchmark suite: prepared worlds, episodes and
//! images so the benchmarked closures measure replay/simulation work,
//! not world construction — plus the in-tree [`harness`] the bench
//! binaries time themselves with.

pub mod harness;

use kcode::events::EventStream;
use kcode::Image;
use protolat_core::config::Version;
use protolat_core::harness::{run_rpc, run_tcpip, RoundtripEpisodes};
use protolat_core::world::{RpcWorld, TcpIpWorld};
use protocols::StackOptions;

/// A prepared TCP/IP measurement context.
pub struct TcpCtx {
    pub world: TcpIpWorld,
    pub episodes: RoundtripEpisodes,
    pub canonical: EventStream,
}

impl TcpCtx {
    pub fn new() -> Self {
        let run = run_tcpip(TcpIpWorld::build(StackOptions::improved()), 2);
        let canonical = run.episodes.client_trace();
        TcpCtx { world: run.world, episodes: run.episodes, canonical }
    }

    pub fn image(&self, v: Version) -> Image {
        v.build_tcpip(&self.world, &self.canonical)
    }
}

impl Default for TcpCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// A prepared RPC measurement context.
pub struct RpcCtx {
    pub world: RpcWorld,
    pub episodes: RoundtripEpisodes,
    pub canonical: EventStream,
}

impl RpcCtx {
    pub fn new() -> Self {
        let run = run_rpc(RpcWorld::build(StackOptions::improved()), 2);
        let canonical = run.episodes.client_trace();
        RpcCtx { world: run.world, episodes: run.episodes, canonical }
    }

    pub fn image(&self, v: Version) -> Image {
        v.build_rpc(&self.world, &self.canonical)
    }
}

impl Default for RpcCtx {
    fn default() -> Self {
        Self::new()
    }
}
