//! A minimal, dependency-free benchmark harness.
//!
//! The benches in `benches/` are plain `harness = false` binaries: each
//! builds a [`Criterion`], registers timed closures through the same
//! `benchmark_group` / `bench_function` / `bench_with_input` surface the
//! old criterion-based benches used, and prints a summary table on
//! [`Criterion::report`].  Timing is wall-clock (`std::time::Instant`)
//! with one warm-up pass and automatic inner batching for kernels too
//! fast to time one call at a time.  No statistics machinery beyond
//! mean/min/max — these benches exist to rank configurations and catch
//! large regressions, not to resolve nanoseconds.

use std::fmt::Display;
use std::time::Instant;

/// Ordered, dependency-free writer for the `BENCH_*.json` contract
/// files every bench binary emits: insertion-ordered `"key": value`
/// lines, one field per line, so `scripts/bench_smoke.sh` can grep/sed
/// individual keys and two deterministic runs render byte-identical
/// files.  Values are pre-rendered by the caller (numbers with explicit
/// precision, booleans, nested arrays/objects as raw strings) — the
/// writer owns only ordering, punctuation and the trailing-comma rule.
#[derive(Debug, Clone, Default)]
pub struct JsonReport {
    fields: Vec<(String, String)>,
}

impl JsonReport {
    /// A report for one bench target; `"bench": "<name>"` is always
    /// the first field.
    pub fn new(bench: &str) -> Self {
        let mut r = JsonReport { fields: Vec::new() };
        r.text("bench", bench);
        r
    }

    /// Append a field with a pre-rendered JSON value — a number
    /// (callers keep full control of formatting precision), a boolean,
    /// or a raw array/object string.
    pub fn field(&mut self, key: impl Into<String>, value: impl Display) -> &mut Self {
        self.fields.push((key.into(), value.to_string()));
        self
    }

    /// Append a string-valued field (quoted; bench keys and values are
    /// plain ASCII identifiers, so no escaping).
    pub fn text(&mut self, key: impl Into<String>, value: impl Display) -> &mut Self {
        self.fields.push((key.into(), format!("\"{value}\"")));
        self
    }

    /// The rendered JSON object.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(k);
            out.push_str("\": ");
            out.push_str(v);
            out.push_str(if i + 1 == self.fields.len() { "\n" } else { ",\n" });
        }
        out.push_str("}\n");
        out
    }

    /// Write to `path` and log it the way every bench binary does.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub group: String,
    pub name: String,
    /// Timed samples (after the warm-up pass).
    pub samples: usize,
    /// Calls per sample (inner batching for sub-microsecond kernels).
    pub batch: usize,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

impl BenchResult {
    /// `{"group":"g","name":"n","mean_ns":1.0,...}` — hand-rolled so the
    /// harness stays dependency-free.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"group\":\"{}\",\"name\":\"{}\",\"samples\":{},\"batch\":{},\
             \"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}",
            self.group, self.name, self.samples, self.batch, self.mean_ns, self.min_ns,
            self.max_ns
        )
    }
}

/// Collects results across benchmark groups; one per bench binary.
pub struct Criterion {
    target: String,
    pub results: Vec<BenchResult>,
}

impl Criterion {
    pub fn new(target: &str) -> Self {
        Criterion { target: target.to_string(), results: Vec::new() }
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_string(), sample_size: 20 }
    }

    /// Print the summary table for every recorded result.
    pub fn report(&self) {
        println!("bench target: {}", self.target);
        for r in &self.results {
            println!(
                "  {:<28} {:<32} mean {:>12.1} ns  (min {:>12.1}, max {:>12.1}, {} x {} calls)",
                r.group, r.name, r.mean_ns, r.min_ns, r.max_ns, r.samples, r.batch
            );
        }
    }

    /// All results as a JSON array.
    pub fn json_results(&self) -> String {
        let body: Vec<String> = self.results.iter().map(|r| r.to_json()).collect();
        format!("[{}]", body.join(","))
    }
}

/// A named identifier, optionally parameterized: `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    pub id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), param) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, result: None };
        f(&mut b);
        self.record(id, b);
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, result: None };
        f(&mut b, input);
        self.record(id, b);
    }

    fn record(&mut self, id: BenchmarkId, b: Bencher) {
        let (batch, times) = b.result.expect("bench closure must call Bencher::iter");
        let n = times.len() as f64;
        let mean = times.iter().sum::<f64>() / n;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        self.c.results.push(BenchResult {
            group: self.name.clone(),
            name: id.id,
            samples: times.len(),
            batch,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        });
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: usize,
    /// (batch size, per-call nanoseconds of each sample).
    result: Option<(usize, Vec<f64>)>,
}

impl Bencher {
    /// Time `f`: one warm-up call sizes an inner batch so each sample
    /// spans at least ~20 us of wall clock, then `samples` batched
    /// samples record per-call nanoseconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm = Instant::now();
        std::hint::black_box(f());
        let once_ns = warm.elapsed().as_nanos().max(1) as u64;
        let batch = (20_000 / once_ns).clamp(1, 10_000) as usize;

        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            times.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.result = Some((batch, times));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_renders_ordered_fields() {
        let mut r = JsonReport::new("demo");
        r.field("count", 3)
            .field("rate", format_args!("{:.3}", 0.5f64))
            .field("flag", true)
            .text("label", "all")
            .field("curve", "[\n    {\"x\": 1}\n  ]");
        let s = r.render();
        assert!(s.starts_with("{\n  \"bench\": \"demo\",\n"));
        assert!(s.ends_with("\n}\n"));
        assert!(s.contains("  \"count\": 3,\n"));
        assert!(s.contains("  \"rate\": 0.500,\n"));
        assert!(s.contains("  \"flag\": true,\n"));
        assert!(s.contains("  \"label\": \"all\",\n"));
        // Insertion order is preserved and the last field has no comma.
        let count_at = s.find("\"count\"").unwrap();
        let flag_at = s.find("\"flag\"").unwrap();
        assert!(count_at < flag_at);
        assert!(s.contains("  \"curve\": [\n    {\"x\": 1}\n  ]\n}"));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(s, r.render());
    }

    #[test]
    fn records_results_with_plausible_timings() {
        let mut c = Criterion::new("self-test");
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &k| {
            b.iter(|| k * 2)
        });
        g.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].group, "g");
        assert_eq!(c.results[0].name, "spin");
        assert_eq!(c.results[1].name, "param/7");
        for r in &c.results {
            assert_eq!(r.samples, 5);
            assert!(r.mean_ns > 0.0);
            assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        }
        let j = c.json_results();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"name\":\"param/7\""));
    }
}
