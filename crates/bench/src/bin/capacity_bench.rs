//! Load-ramp capacity benchmark: throughput-vs-p99 curves and the
//! saturation knee of every (stack, layout) cell.
//!
//! `traffic_bench` measures every cell at one fixed offered rate — the
//! seed's 4×2000 msg/s, far below saturation, where every cell trivially
//! serves the offered load and layout quality shows up only as latency.
//! This bench climbs a geometric offered-rate ladder per cell and finds
//! the *knee*: the first rate where p99 exceeds the latency SLO (1 ms)
//! or achieved throughput falls below 97% of offered.  The rungs below
//! the knee define the cell's max sustainable rate — layout quality
//! expressed as *capacity*.
//!
//! Probes asserted here:
//! * per-cell: a knee is detected and the curve's offered rates are
//!   strictly increasing;
//! * the bisection-refined knee lies strictly inside each cell's
//!   bracketing ladder rungs (last good rung, ladder knee];
//! * the dispatch plane reproduces `runloop::reference` bit-for-bit at
//!   the seed offered rate (the acceptance gate for the lock-free
//!   hand-off plane);
//! * a fresh (memo-cold) engine reproduces a memoized curve exactly;
//! * the best cell sustains ≥ 2× the seed 7953 msg/s plateau.
//!
//! Writes `BENCH_capacity.json` (override the path with
//! `BENCH_CAPACITY_PATH`; set `CAPACITY_SMOKE=1` for the reduced-size
//! smoke sweep `scripts/bench_smoke.sh` drives twice for its
//! cross-process bit-repro check).

use protolat_bench::harness::JsonReport;
use protolat_core::config::{StackKind, Version};
use protolat_core::sweep::{CapacityCurve, CapacityRamp, SweepEngine};
use protocols::StackOptions;
use traffic::runloop::reference;
use traffic::{ReplayService, TrafficConfig};

/// The serving scenario (identical to `traffic_bench`'s cell scenario).
const WORKERS: u32 = 4;
const SESSIONS_PER_WORKER: u32 = 512;
/// The seed offered rate per worker — rung 0 of the ladder.
const SEED_RATE_MPS: u64 = 2_000;
/// The seed sweep's aggregate throughput plateau (all 12 cells pinned
/// at the offered rate); the dispatch-plane acceptance floor is 2×.
const SEED_PLATEAU_MPS: f64 = 7_953.0;

fn stack_key(stack: StackKind) -> &'static str {
    match stack {
        StackKind::TcpIp => "tcpip",
        StackKind::Rpc => "rpc",
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn main() {
    let smoke = std::env::var("CAPACITY_SMOKE").is_ok_and(|v| v == "1");
    let out_path =
        std::env::var("BENCH_CAPACITY_PATH").unwrap_or_else(|_| "BENCH_capacity.json".into());
    let messages_per_worker: u32 = if smoke { 4_000 } else { 20_000 };

    let base = TrafficConfig::open_loop(SEED_RATE_MPS, messages_per_worker, SESSIONS_PER_WORKER)
        .with_workers(WORKERS)
        .with_shards(8, 24)
        .with_theta(900)
        .with_seed(0x7EA5)
        .with_faults(3_000, 1_500, 3_000, 1_500);
    let ramp = CapacityRamp::new(base, SEED_RATE_MPS);

    let eng = SweepEngine::global();
    let opts = StackOptions::improved();

    println!(
        "capacity ramp: {} workers x {} msgs, rungs x{}/{} from {} msg/s/worker, \
         SLO p99 <= {} µs, achieved >= {}.{}% of offered{}",
        WORKERS,
        messages_per_worker,
        ramp.growth_num,
        ramp.growth_den,
        ramp.start_rate_mps,
        ramp.slo_p99_ns / 1_000,
        ramp.min_achieved_ppt / 10,
        ramp.min_achieved_ppt % 10,
        if smoke { " [smoke]" } else { "" },
    );

    // --- the 12-cell capacity sweep (parallel prefetch, memoized) ------
    let rows = eng.capacity_sweep(opts, 2, ramp);

    println!(
        "{:<6} {:<5} {:>12} {:>14} {:>7} {:>10}",
        "stack", "ver", "knee mps", "max sust mps", "rungs", "p99@last µs"
    );
    for (stack, version, curve) in &rows {
        let last = curve.points.last().expect("curve has at least one rung");
        println!(
            "{:<6} {:<5} {:>12} {:>14.0} {:>7} {:>10.1}",
            stack_key(*stack),
            version.name(),
            curve.knee_offered_mps.map_or_else(|| "none".into(), |k| k.to_string()),
            curve.max_sustainable_mps,
            curve.points.len(),
            us(last.p99_ns),
        );
    }

    // --- per-cell contract: knee found, offered rates monotone ---------
    for (stack, version, curve) in &rows {
        let cell = format!("{}/{}", stack_key(*stack), version.name());
        assert!(
            curve.knee_offered_mps.is_some(),
            "{cell}: ladder topped out without finding a knee — raise max_rungs"
        );
        for w in curve.points.windows(2) {
            assert!(
                w[1].offered_mps > w[0].offered_mps,
                "{cell}: offered rate not strictly increasing along the curve"
            );
        }
        for p in &curve.points[..curve.points.len() - 1] {
            assert!(!p.violated, "{cell}: non-terminal rung marked as violating");
        }
    }
    println!("\nper-cell contract: knee detected, curves monotone in offered rate");

    // --- bisection refinement: refined knee within the bracketing rungs
    for (stack, version, curve) in &rows {
        let cell = format!("{}/{}", stack_key(*stack), version.name());
        let ladder_knee = curve.knee_offered_mps.expect("knee asserted above");
        let last_good = curve.points.iter().rev().find(|p| !p.violated).map(|p| p.offered_mps);
        match (last_good, curve.refined_knee_mps) {
            (Some(lo), Some(refined)) => {
                assert!(
                    lo < refined && refined <= ladder_knee,
                    "{cell}: refined knee {refined} outside bracket ({lo}, {ladder_knee}]"
                );
                for p in &curve.refined {
                    assert!(
                        p.offered_mps > lo && p.offered_mps < ladder_knee,
                        "{cell}: bisection probe {} outside the open bracket",
                        p.offered_mps
                    );
                }
            }
            (None, refined) => assert!(
                refined.is_none(),
                "{cell}: refined knee without a good rung to bracket from"
            ),
            (Some(_), None) => {
                panic!("{cell}: bracketed knee but no bisection refinement ran")
            }
        }
    }
    println!("bisection contract: refined knees lie within their bracketing rungs");

    // --- layout quality as capacity: ALL must not knee below BAD -------
    for stack in [StackKind::TcpIp, StackKind::Rpc] {
        let knee = |v: Version| {
            rows.iter()
                .find(|(s, ver, _)| *s == stack && *ver == v)
                .and_then(|(_, _, c)| c.knee_offered_mps)
                .expect("knee present")
        };
        let (bad, all) = (knee(Version::Bad), knee(Version::All));
        assert!(
            all >= bad,
            "{}: ALL kneed at {all} mps below BAD at {bad} mps",
            stack_key(stack)
        );
    }

    // --- dispatch plane vs seed FIFO at the seed rate ------------------
    let seed_cfg = ramp.rung_config(SEED_RATE_MPS);
    let memoized = eng.traffic(StackKind::TcpIp, opts, 2, Version::Std, seed_cfg);
    let img = eng.image(StackKind::TcpIp, opts, 2, Version::Std);
    let episode = eng.tcpip(opts, 2).run.episodes.server_turn.clone();
    let fifo = reference::run_traffic(&seed_cfg, |_| ReplayService::new(&img, &episode))
        .expect("reference run must drain");
    let seed_rate_bit_identical = *memoized == fifo;
    assert!(
        seed_rate_bit_identical,
        "dispatch plane diverged from runloop::reference at the seed offered rate"
    );
    println!("dispatch-vs-reference probe: bit-identical at {SEED_RATE_MPS} msg/s/worker");

    // --- memo-cold bit-repro probe -------------------------------------
    let fresh = SweepEngine::new();
    let recomputed = fresh.capacity(StackKind::TcpIp, opts, 2, Version::All, ramp);
    let cached = rows
        .iter()
        .find(|(s, v, _)| *s == StackKind::TcpIp && *v == Version::All)
        .map(|(_, _, c)| c.clone())
        .expect("tcpip/ALL curve present");
    assert_eq!(
        *recomputed, *cached,
        "memo-cold recompute of the tcpip/ALL curve diverged"
    );
    println!("bit-repro probe: memo-cold recompute of tcpip/ALL reproduced the curve");

    // --- acceptance: best cell sustains >= 2x the seed plateau ---------
    let best: &(StackKind, Version, std::sync::Arc<CapacityCurve>) = rows
        .iter()
        .max_by(|a, b| a.2.max_sustainable_mps.total_cmp(&b.2.max_sustainable_mps))
        .expect("rows non-empty");
    let best_mps = best.2.max_sustainable_mps;
    println!(
        "best cell {}/{}: {:.0} msg/s sustained ({:.1}x the {SEED_PLATEAU_MPS:.0} msg/s seed plateau)",
        stack_key(best.0),
        best.1.name(),
        best_mps,
        best_mps / SEED_PLATEAU_MPS
    );
    assert!(
        best_mps >= 2.0 * SEED_PLATEAU_MPS,
        "no cell sustained 2x the seed plateau: best {best_mps:.0} msg/s"
    );

    // --- JSON ----------------------------------------------------------
    let mut report = JsonReport::new("capacity");
    report
        .field("workers", WORKERS)
        .field("messages_per_worker", messages_per_worker)
        .field("sessions_per_worker", SESSIONS_PER_WORKER)
        .field("start_rate_mps", ramp.start_rate_mps)
        .text("growth", format_args!("{}x/{}", ramp.growth_num, ramp.growth_den))
        .field("max_rungs", ramp.max_rungs)
        .field("slo_p99_us", format_args!("{:.1}", ramp.slo_p99_ns as f64 / 1e3))
        .field("min_achieved_ppt", ramp.min_achieved_ppt)
        .field("smoke", smoke);
    for (stack, version, curve) in &rows {
        let k = format!("{}_{}", stack_key(*stack), version.name().to_lowercase());
        report.field(
            format!("{k}_knee_mps"),
            curve.knee_offered_mps.expect("knee asserted above"),
        );
        report.field(
            format!("{k}_max_sustainable_mps"),
            format_args!("{:.1}", curve.max_sustainable_mps),
        );
        report.field(
            format!("{k}_refined_knee_mps"),
            curve.refined_knee_mps.unwrap_or_else(|| curve.knee_offered_mps.expect("knee")),
        );
        let mut arr = String::from("[\n");
        for (i, p) in curve.points.iter().enumerate() {
            arr.push_str(&format!(
                "    {{\"offered_mps\": {}, \"achieved_mps\": {:.1}, \"p50_us\": {:.3}, \
                 \"p99_us\": {:.3}, \"p999_us\": {:.3}, \"violated\": {}}}{}\n",
                p.offered_mps,
                p.achieved_mps,
                us(p.p50_ns),
                us(p.p99_ns),
                us(p.p999_ns),
                p.violated,
                if i + 1 == curve.points.len() { "" } else { "," }
            ));
        }
        arr.push_str("  ]");
        report.field(format!("{k}_curve"), arr);
    }
    report
        .text("best_cell", format_args!("{}_{}", stack_key(best.0), best.1.name().to_lowercase()))
        .field("best_max_sustainable_mps", format_args!("{best_mps:.1}"))
        .field("seed_plateau_mps", format_args!("{SEED_PLATEAU_MPS:.1}"))
        .field("seed_rate_bit_identical", seed_rate_bit_identical);
    report.write(&out_path);
}
