//! Wire data-plane benchmark: the zero-copy pooled codec against the
//! copy-and-materialize reference, plus the byte plane's three
//! contracts.
//!
//! 1. **Zero-copy pays.**  Encode + demux of seeded TCP/IP frames
//!    through pooled buffers and in-place header views must be at
//!    least 2x faster than the reference codec's materialize-every-
//!    layer path (min-of-3, gated in full mode) — the paper's
//!    avoid-data-touching argument measured at the byte level.
//! 2. **The pool is allocation-free at steady state.**  A serving run
//!    in zero-copy mode must recycle every buffer: `grows == 0`, one
//!    alloc per encoded frame, recycle rate ~1.
//! 3. **Bytes change nothing.**  The serving report in zero-copy and
//!    reference wire modes must equal the descriptor-mode report
//!    bit-for-bit on the dispatch plane at every probed executor
//!    count, and the two wire paths must agree on every decode
//!    counter.  The checked-in `tcpip_roundtrip.pcap` must ingest,
//!    demux on both codecs, and re-emit byte-identically.
//!
//! Writes `BENCH_wire.json` (override with `BENCH_WIRE_PATH`).
//! `scripts/bench_smoke.sh` drives the `WIRE_SMOKE=1` reduced run,
//! which omits the wall-clock fields so two runs emit identical bytes.

use std::time::Instant;

use netsim::buf::BufPool;
use netsim::rng::SplitMix64;
use protolat_bench::harness::JsonReport;
use protocols::wire::codec::{self, PktSpec};
use protocols::wire::reference;
use trace::pcap::{PcapSink, PcapSource};
use traffic::runloop::reference as runloop_reference;
use traffic::{run_traffic, FixedService, TrafficConfig, TrafficReport, WirePath, WireStats};

const WORKERS: u32 = 3;
const SESSIONS_PER_WORKER: u32 = 192;
const RATE_MPS: u64 = 60_000;
/// Executor counts the bit-identity probe pins the dispatch plane to.
const EXECUTORS: [u32; 2] = [1, 3];

fn svc(_worker: u32) -> FixedService {
    FixedService { cache_hit_ns: 9_000, chain_hit_ns: 11_000, miss_ns: 40_000 }
}

/// Seeded micro-bench corpus: specs + payload lengths covering the
/// padding boundary (tiny payloads) up to a few cache lines.
fn corpus(n: usize) -> Vec<(PktSpec, Vec<u8>)> {
    let mut rng = SplitMix64::new(0xB17E_57A7);
    (0..n)
        .map(|_| {
            let spec = PktSpec {
                src_ip: rng.next_u64() as u32,
                dst_ip: rng.next_u64() as u32,
                src_port: rng.next_u64() as u16,
                dst_port: rng.next_u64() as u16,
                seq: rng.next_u64() as u32,
                ack: rng.next_u64() as u32,
                ident: rng.next_u64() as u16,
                ..PktSpec::default()
            };
            let len = rng.below(193) as usize;
            let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            (spec, payload)
        })
        .collect()
}

/// Fold a demux result into a running fingerprint so the two codec
/// passes are forced to do the work and provably agree.
fn fold(acc: u64, d: &codec::Demux) -> u64 {
    acc.rotate_left(7)
        ^ u64::from(d.src_ip)
        ^ (u64::from(d.src_port) << 32)
        ^ (d.payload_len as u64) << 48
        ^ u64::from(d.seq)
}

fn main() {
    let smoke = std::env::var("WIRE_SMOKE").is_ok_and(|v| v == "1");
    let out_path = std::env::var("BENCH_WIRE_PATH").unwrap_or_else(|_| "BENCH_wire.json".into());
    let packets = if smoke { 256 } else { 2_048 };
    let rounds = if smoke { 20 } else { 200 };
    let messages_per_worker: u32 = if smoke { 2_000 } else { 10_000 };

    println!(
        "wire data plane: {packets} seeded frames x {rounds} rounds, serving probe {} workers x {} msgs{}",
        WORKERS,
        messages_per_worker,
        if smoke { " [smoke]" } else { "" },
    );

    // --- codec micro-bench: pooled zero-copy vs materializing copies ---
    let pkts = corpus(packets);
    let mut pool = BufPool::new(1);
    let time = |f: &mut dyn FnMut() -> u64| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut fp = 0;
        for _ in 0..3 {
            let t0 = Instant::now();
            fp = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, fp)
    };

    let (zc_s, zc_fp) = time(&mut || {
        let mut acc = 0u64;
        for _ in 0..rounds {
            for (spec, payload) in &pkts {
                let h = pool.alloc();
                let buf = pool.bytes_mut(h).expect("fresh handle");
                let len = codec::encode_frame(buf, spec, payload);
                let bytes = pool.bytes(h).expect("live handle");
                let d = codec::demux_frame(&bytes[..len]).expect("own frame demuxes");
                acc = fold(acc, &d);
                pool.free(h).expect("single free");
            }
        }
        acc
    });
    let (ref_s, ref_fp) = time(&mut || {
        let mut acc = 0u64;
        for _ in 0..rounds {
            for (spec, payload) in &pkts {
                let frame = reference::encode_frame(spec, payload);
                let d = reference::demux_frame(&frame).expect("own frame demuxes");
                acc = fold(acc, &d);
            }
        }
        acc
    });
    assert_eq!(zc_fp, ref_fp, "the two codecs parsed different packets");
    assert_eq!(pool.stats().grows, 0, "micro-bench pool must stay at one buffer");

    let total = (packets * rounds) as f64;
    let zc_ns = zc_s * 1e9 / total;
    let ref_ns = ref_s * 1e9 / total;
    let codec_speedup = ref_ns / zc_ns;
    println!(
        "codec encode+demux: zero-copy {zc_ns:.1} ns/pkt, reference {ref_ns:.1} ns/pkt, {codec_speedup:.2}x"
    );

    // --- serving probe: bytes must change nothing -----------------------
    let base = TrafficConfig::open_loop(RATE_MPS, messages_per_worker, SESSIONS_PER_WORKER)
        .with_workers(WORKERS)
        .with_shards(8, 24)
        .with_theta(900)
        .with_seed(0x77_1BE)
        .with_faults(4_000, 3_000, 2_500, 2_000)
        .with_wire_faults(3_000, 2_000, 2_500);
    let sans_wire = |mut r: TrafficReport| -> TrafficReport {
        r.wire = WireStats::default();
        r
    };
    let descriptor = runloop_reference::run_traffic(&base, svc).expect("descriptor run");
    let mut wire_bit_identical = true;
    let mut reports = Vec::new();
    for path in [WirePath::ZeroCopy, WirePath::Reference] {
        let cfg = base.with_wire(path);
        let fifo = runloop_reference::run_traffic(&cfg, svc).expect("reference-plane run");
        if sans_wire(fifo.clone()) != descriptor {
            wire_bit_identical = false;
            println!("DIVERGED: {path:?} reference plane vs descriptor");
        }
        for executors in EXECUTORS {
            let got = run_traffic(&cfg.with_executors(executors), svc).expect("dispatch run");
            if got != fifo {
                wire_bit_identical = false;
                println!("DIVERGED: {path:?} dispatch plane at {executors} executors");
            }
        }
        reports.push(fifo);
    }
    let (zc_report, ref_report) = (&reports[0], &reports[1]);
    if zc_report.wire.decode_counters() != ref_report.wire.decode_counters() {
        wire_bit_identical = false;
        println!("DIVERGED: zero-copy and reference decode counters");
    }
    assert!(wire_bit_identical, "the wire data plane perturbed the simulation");
    let w = &zc_report.wire;
    println!(
        "serving probe: {} frames encoded, {} demuxed, anomalies fcs={} trunc={} malformed={} frag={}",
        w.encoded, w.demuxed, w.bad_fcs, w.truncated, w.malformed, w.fragmented
    );
    assert!(
        w.bad_fcs > 0 && w.truncated > 0 && w.malformed > 0 && w.fragmented > 0,
        "fault mix must exercise every wire anomaly class: {w:?}"
    );

    // --- pool steady state ----------------------------------------------
    println!(
        "buffer pool: {} allocs, {} recycled ({:.4} rate), {} grows, high water {}",
        w.pool.allocs,
        w.pool.recycled,
        w.pool.recycle_rate(),
        w.pool.grows,
        w.pool.high_water
    );
    assert_eq!(w.pool.grows, 0, "steady state allocated: {:?}", w.pool);
    assert_eq!(w.pool.allocs, w.encoded, "one pooled buffer per encoded frame");
    assert_eq!(w.pool.frees, w.pool.allocs, "every buffer returned to the pool");
    assert!(w.pool.recycle_rate() > 0.99, "pool must recycle: {:?}", w.pool);

    // --- pcap round trip -------------------------------------------------
    let pcap_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tcpip_roundtrip.pcap");
    let original = std::fs::read(pcap_path).expect("checked-in tcpip_roundtrip.pcap");
    let mut src = PcapSource::new(&original[..]).expect("valid capture");
    let mut sink = PcapSink::new(Vec::new()).expect("sink header");
    let mut pcap_frames = 0u64;
    while let Some(pkt) = src.next_packet().expect("clean record stream") {
        let d = codec::demux_frame(&pkt.data).expect("captured frame demuxes");
        assert_eq!(reference::demux_frame(&pkt.data), Ok(d), "codecs diverged on capture");
        sink.emit(&pkt).expect("re-emit");
        pcap_frames += 1;
    }
    let pcap_roundtrip_ok = sink.finish().expect("finish") == original;
    println!("pcap: {pcap_frames} frames ingested, round trip {}", if pcap_roundtrip_ok { "bit-identical" } else { "DIVERGED" });
    assert!(pcap_roundtrip_ok, "pcap re-emit must be byte-identical");

    // --- JSON ------------------------------------------------------------
    let mut report = JsonReport::new("wire");
    report
        .field("smoke", u8::from(smoke))
        .field("packets", packets)
        .field("rounds", rounds)
        .field("workers", WORKERS)
        .field("messages_per_worker", messages_per_worker)
        .field("frames_encoded", w.encoded)
        .field("frames_demuxed", w.demuxed)
        .field("payload_bytes", w.payload_bytes)
        .field("bad_fcs", w.bad_fcs)
        .field("truncated", w.truncated)
        .field("malformed", w.malformed)
        .field("fragmented", w.fragmented)
        .field("pool_allocs", w.pool.allocs)
        .field("pool_recycled", w.pool.recycled)
        .field("pool_grows", w.pool.grows)
        .field("pool_high_water", w.pool.high_water)
        .field("pool_recycle_rate", format_args!("{:.6}", w.pool.recycle_rate()))
        .field("wire_bit_identical", wire_bit_identical)
        .field("pcap_frames", pcap_frames)
        .field("pcap_roundtrip_ok", u8::from(pcap_roundtrip_ok));
    if !smoke {
        // Wall-clock fields only in full mode, so two smoke runs emit
        // byte-identical artifacts.
        report
            .field("zero_copy_ns_per_pkt", format_args!("{zc_ns:.2}"))
            .field("reference_ns_per_pkt", format_args!("{ref_ns:.2}"))
            .field("codec_speedup", format_args!("{codec_speedup:.3}"));
        assert!(
            codec_speedup >= 2.0,
            "zero-copy codec gave only {codec_speedup:.2}x over the copying reference"
        );
    }
    report.write(&out_path);
}
