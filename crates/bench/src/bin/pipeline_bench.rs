//! End-to-end pipeline benchmark: the experiment workload computed the
//! pre-engine way (every consumer rebuilds world, functional run, image
//! and replay from scratch) vs through the memoized parallel
//! [`SweepEngine`], plus per-stage costs of the measurement pipeline
//! (functional run, image build, materialized vs fused replay).
//!
//! The workload models what `experiments::run_all` actually demands:
//! three drivers (Tables 4, 7 and 8) each consume the full 6-version x
//! 2-stack roundtrip-timing sweep, and two drivers (Tables 6 and 8)
//! each consume the full cold-cache sweep.  Before the engine, each
//! driver recomputed every cell; the engine computes each cell once and
//! serves the rest from the cache.
//!
//! Writes `BENCH_pipeline.json` for `scripts/bench_smoke.sh`.

use std::time::Instant;

use protolat_bench::harness::JsonReport;
use protolat_core::config::{StackKind, Version};
use protolat_core::harness::{run_rpc, run_tcpip};
use protolat_core::sweep::SweepEngine;
use protolat_core::timing::{
    cold_client_stats, time_roundtrip_materialized, time_roundtrip_with,
    RPC_UNTRACED_PER_HOP_US, UNTRACED_PER_HOP_US,
};
use protolat_core::world::{RpcWorld, TcpIpWorld};
use protocols::StackOptions;

/// How many experiment drivers consume each sweep (see module docs).
const TIMING_CONSUMERS: usize = 3;
const COLD_CONSUMERS: usize = 2;

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`reps` wall-clock milliseconds for `f`.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(ms(t));
    }
    best
}

/// One pre-engine sweep pass: every (stack, version) cell builds its own
/// world, functional run and image before timing it.
fn fresh_timing_sweep(opts: StackOptions) {
    for v in Version::all() {
        let run = run_tcpip(TcpIpWorld::build(opts), 2);
        let canonical = run.episodes.client_trace();
        let img = v.build_tcpip(&run.world, &canonical);
        std::hint::black_box(time_roundtrip_with(
            &run.episodes,
            &img,
            &img,
            run.world.lance_model.f_tx,
            UNTRACED_PER_HOP_US,
        ));
    }
    for v in Version::all() {
        let run = run_rpc(RpcWorld::build(opts), 2);
        let canonical = run.episodes.client_trace();
        let img = v.build_rpc(&run.world, &canonical);
        let server = Version::All.build_rpc(&run.world, &canonical);
        std::hint::black_box(time_roundtrip_with(
            &run.episodes,
            &img,
            &server,
            run.world.lance_model.f_tx,
            RPC_UNTRACED_PER_HOP_US,
        ));
    }
}

/// One pre-engine cold-cache sweep pass.
fn fresh_cold_sweep(opts: StackOptions) {
    for v in Version::all() {
        let run = run_tcpip(TcpIpWorld::build(opts), 2);
        let canonical = run.episodes.client_trace();
        let img = v.build_tcpip(&run.world, &canonical);
        std::hint::black_box(cold_client_stats(&run.episodes, &img));
    }
    for v in Version::all() {
        let run = run_rpc(RpcWorld::build(opts), 2);
        let canonical = run.episodes.client_trace();
        let img = v.build_rpc(&run.world, &canonical);
        std::hint::black_box(cold_client_stats(&run.episodes, &img));
    }
}

fn main() {
    let opts = StackOptions::improved();

    // --- per-stage costs (one TCP/IP STD cell) -------------------------
    let functional_run_ms = time_ms(3, || run_tcpip(TcpIpWorld::build(opts), 2));
    let run = run_tcpip(TcpIpWorld::build(opts), 2);
    let canonical = run.episodes.client_trace();
    let image_build_ms = time_ms(3, || Version::Std.build_tcpip(&run.world, &canonical));
    let img = Version::Std.build_tcpip(&run.world, &canonical);
    let f_tx = run.world.lance_model.f_tx;
    let replay_materialized_ms = time_ms(5, || {
        time_roundtrip_materialized(&run.episodes, &img, &img, f_tx, UNTRACED_PER_HOP_US)
    });
    let replay_fused_ms = time_ms(5, || {
        time_roundtrip_with(&run.episodes, &img, &img, f_tx, UNTRACED_PER_HOP_US)
    });

    // --- the experiment workload: fresh per consumer -------------------
    let t = Instant::now();
    for _ in 0..TIMING_CONSUMERS {
        fresh_timing_sweep(opts);
    }
    for _ in 0..COLD_CONSUMERS {
        fresh_cold_sweep(opts);
    }
    let fresh_serial_ms = ms(t);

    // --- the same workload through the memoized parallel engine --------
    let eng = SweepEngine::new();
    let t = Instant::now();
    let rows = eng.sweep(opts, 2); // parallel prefetch of every cell
    for _ in 0..TIMING_CONSUMERS {
        for stack in [StackKind::TcpIp, StackKind::Rpc] {
            for v in Version::all() {
                std::hint::black_box(eng.timing(stack, opts, 2, v));
            }
        }
    }
    for _ in 0..COLD_CONSUMERS {
        for stack in [StackKind::TcpIp, StackKind::Rpc] {
            for v in Version::all() {
                std::hint::black_box(eng.cold_stats(stack, opts, 2, v));
            }
        }
    }
    let memoized_parallel_ms = ms(t);
    let counters = eng.counters();
    let speedup = fresh_serial_ms / memoized_parallel_ms;

    println!("pipeline stage costs (TCP/IP STD cell):");
    println!("  functional run        {functional_run_ms:>9.2} ms");
    println!("  image build           {image_build_ms:>9.2} ms");
    println!("  replay (materialized) {replay_materialized_ms:>9.2} ms");
    println!("  replay (fused)        {replay_fused_ms:>9.2} ms");
    println!();
    println!(
        "experiment workload ({TIMING_CONSUMERS} timing consumers + {COLD_CONSUMERS} \
         cold-cache consumers of the {}-row sweep):",
        rows.len()
    );
    println!("  fresh serial          {fresh_serial_ms:>9.2} ms");
    println!("  memoized parallel     {memoized_parallel_ms:>9.2} ms");
    println!("  speedup               {speedup:>9.2} x");
    println!(
        "  engine computed: {} runs, {} images, {} timings, {} cold-stats \
         (each cell exactly once)",
        counters.runs, counters.images, counters.timings, counters.cold_stats
    );

    let mut report = JsonReport::new("pipeline");
    report
        .field("timing_consumers", TIMING_CONSUMERS)
        .field("cold_consumers", COLD_CONSUMERS)
        .field("fresh_serial_ms", format_args!("{fresh_serial_ms:.3}"))
        .field("memoized_parallel_ms", format_args!("{memoized_parallel_ms:.3}"))
        .field("speedup", format_args!("{speedup:.3}"))
        .field("rows", rows.len())
        .field(
            "counters",
            format_args!(
                "{{\"runs\": {}, \"images\": {}, \"timings\": {}, \"cold_stats\": {}}}",
                counters.runs, counters.images, counters.timings, counters.cold_stats
            ),
        )
        .field(
            "stages",
            format_args!(
                "{{\n    \"functional_run_ms\": {functional_run_ms:.3},\n    \
                 \"image_build_ms\": {image_build_ms:.3},\n    \
                 \"replay_materialized_ms\": {replay_materialized_ms:.3},\n    \
                 \"replay_fused_ms\": {replay_fused_ms:.3}\n  }}"
            ),
        );
    report.write("BENCH_pipeline.json");

    assert!(
        speedup >= 2.0,
        "memoized engine must beat per-consumer recomputation at least 2x (got {speedup:.2}x)"
    );
    assert!(
        replay_fused_ms <= replay_materialized_ms,
        "fused streaming replay must not lose to the materialized pipeline \
         (fused {replay_fused_ms:.3} ms vs materialized {replay_materialized_ms:.3} ms)"
    );
}
