//! Event-scheduler benchmark: the hierarchical timing wheel
//! (`netsim::sched`, the default engine) against the reference binary
//! heap (`netsim::engine::reference`), microbenchmarked at 128k pending
//! events and end-to-end through the 12-cell traffic-serving sweep.
//!
//! Three measurements:
//!
//! * **fill+drain** — schedule 131 072 events at seeded random offsets,
//!   then pop them all.  The heap pays O(log n) sift-down per pop with
//!   tuple comparisons; the wheel files in O(1) and drains matured
//!   slots in batches.
//! * **churn** — steady state at 131 072 pending: pop one, schedule
//!   one, 256k times, with a cancellable timer armed and cancelled
//!   every fourth op (the RTO pattern the traffic loop runs).
//! * **traffic e2e** — the full 12-cell (stack × layout) serving sweep
//!   on each engine, both sides driving the *seed per-lane FIFO*
//!   (`runloop::reference`) so the scheduler is the only variable —
//!   the dispatch plane's own wall-clock story is `capacity_bench`'s
//!   subject.  Reports must be bit-identical; the wheel run must also
//!   be faster in wall-clock.
//!
//! Writes `BENCH_engine.json` for `scripts/bench_smoke.sh`.

use std::time::Instant;

use netsim::engine::reference;
use netsim::rng::SplitMix64;
use netsim::{Engine, EventQueue};
use protolat_bench::harness::JsonReport;
use protolat_core::config::{StackKind, Version};
use protolat_core::sweep::{SweepEngine, SweepJob};
use protocols::StackOptions;
use traffic::runloop::reference as seed_fifo;
use traffic::{ReplayService, TrafficConfig, TrafficReport};

/// Pending-event population for the microbenchmarks (the acceptance
/// floor is "≥ 2x at ≥ 64k pending").
const PENDING: usize = 131_072;
/// Steady-state operations in the churn microbenchmark.
const CHURN_OPS: usize = 262_144;
/// Timing rounds per measurement; the minimum is reported.
const ROUNDS: usize = 3;

/// The e2e serving scenario: steady state by design.  The session
/// population fits shard residency (128 sessions vs 8×24 slots), so
/// after first touch every message rides the service memo and the
/// per-message cost is demux + histogram + *scheduler* — the regime
/// where the event queue is actually on the critical path (the
/// eviction-churn regime is `traffic_bench`'s subject, and there the
/// machine-model replays dominate whatever the scheduler does).
const WORKERS: u32 = 4;
const MESSAGES_PER_WORKER: u32 = 60_000;

fn serving_cfg() -> TrafficConfig {
    TrafficConfig::open_loop(2_000, MESSAGES_PER_WORKER, 128)
        .with_workers(WORKERS)
        .with_shards(8, 24)
        .with_theta(900)
        .with_seed(0x7EA5)
        .with_faults(3_000, 1_500, 3_000, 1_500)
}

/// Seeded delay offsets, drawn outside the timed region so the RNG's
/// cost doesn't dilute the engine comparison.
fn delays(seed: u64, n: usize, bits: u32) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| 1 + rng.below(1 << bits)).collect()
}

/// Schedule `PENDING` seeded events, then drain them all.  Returns
/// (elapsed ms, fletcher-style digest of the delivery sequence) so the
/// two engines can be checked for identical behaviour.
fn fill_drain<Q: EventQueue<u64> + Default>(seed: u64) -> (f64, u64) {
    let mut q = Q::default();
    let ds = delays(seed, PENDING, 24);
    let start = Instant::now();
    for (i, d) in ds.iter().enumerate() {
        q.schedule(q.now() + d, i as u64);
    }
    let mut digest = 0u64;
    while let Some((t, v)) = q.pop() {
        digest = digest.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ t ^ (v << 1);
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(q.pending(), 0);
    (ms, digest)
}

/// Fill to `PENDING`, then run pop-one/schedule-one steady state with a
/// cancellable timer armed and cancelled every fourth operation.
fn churn<Q: EventQueue<u64> + Default>(seed: u64) -> (f64, u64) {
    let mut q = Q::default();
    for (i, d) in delays(seed, PENDING, 24).iter().enumerate() {
        q.schedule(*d, i as u64);
    }
    let ds = delays(seed ^ 0xC0FFEE, CHURN_OPS, 24);
    let rto = delays(seed ^ 0xBADDAD, CHURN_OPS, 20);
    let start = Instant::now();
    let mut digest = 0u64;
    for i in 0..CHURN_OPS {
        let (t, v) = q.pop().expect("population stays constant");
        digest = digest.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ t ^ (v << 1);
        q.schedule(q.now() + ds[i], (PENDING + i) as u64);
        if i % 4 == 0 {
            let tok = q.schedule_cancellable(q.now() + rto[i], u64::MAX);
            assert!(q.cancel(tok));
        }
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(q.pending(), PENDING);
    (ms, digest)
}

/// Best-of-`ROUNDS` for a timed closure; asserts every round produces
/// the same digest.
fn best_of(mut f: impl FnMut(u64) -> (f64, u64)) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut digest = None;
    for round in 0..ROUNDS as u64 {
        let (ms, d) = f(0xE9E1_0000 + round);
        best = best.min(ms);
        digest = Some(d);
    }
    (best, digest.unwrap())
}

fn main() {
    // --- microbenchmarks ----------------------------------------------
    // Same seed per round on both engines: digests must match exactly.
    let mut wheel_fd = Vec::new();
    let mut heap_fd = Vec::new();
    for round in 0..ROUNDS as u64 {
        let seed = 0xF111_0000 + round;
        let (wms, wd) = fill_drain::<Engine<u64>>(seed);
        let (hms, hd) = fill_drain::<reference::Engine<u64>>(seed);
        assert_eq!(wd, hd, "fill+drain delivery sequences diverged");
        wheel_fd.push(wms);
        heap_fd.push(hms);
    }
    let fd_wheel = wheel_fd.iter().cloned().fold(f64::INFINITY, f64::min);
    let fd_heap = heap_fd.iter().cloned().fold(f64::INFINITY, f64::min);
    let fd_speedup = fd_heap / fd_wheel;
    println!(
        "fill+drain @ {PENDING} pending: wheel {fd_wheel:.2} ms, heap {fd_heap:.2} ms, {fd_speedup:.2}x"
    );

    let (churn_wheel, wd) = best_of(churn::<Engine<u64>>);
    let (churn_heap, hd) = best_of(churn::<reference::Engine<u64>>);
    assert_eq!(wd, hd, "churn delivery sequences diverged");
    let churn_speedup = churn_heap / churn_wheel;
    println!(
        "churn @ {PENDING} pending, {CHURN_OPS} ops: wheel {churn_wheel:.2} ms, heap {churn_heap:.2} ms, {churn_speedup:.2}x"
    );

    // --- traffic end-to-end -------------------------------------------
    let eng = SweepEngine::global();
    let opts = StackOptions::improved();
    let cfg = serving_cfg();

    // Prefetch every cell's layout/image so the timed region measures
    // the serving loop, not image construction.
    let mut jobs = Vec::new();
    let mut cells = Vec::new();
    for stack in [StackKind::TcpIp, StackKind::Rpc] {
        for version in Version::all() {
            jobs.push(SweepJob::Layout(stack, opts, 2, version));
            cells.push((stack, version));
        }
    }
    eng.prefetch(&jobs);
    let prepared: Vec<_> = cells
        .iter()
        .map(|&(stack, version)| {
            let img = eng.image(stack, opts, 2, version);
            let episode = match stack {
                StackKind::TcpIp => eng.tcpip(opts, 2).run.episodes.server_turn.clone(),
                StackKind::Rpc => eng.rpc(opts, 2).run.episodes.server_turn.clone(),
            };
            (stack, version, img, episode)
        })
        .collect();

    let run_cells = |use_heap: bool| -> (f64, Vec<TrafficReport>) {
        let start = Instant::now();
        let reports = prepared
            .iter()
            .map(|(_, _, img, episode)| {
                if use_heap {
                    seed_fifo::run_traffic_heap(&cfg, |_| ReplayService::new(img, episode))
                } else {
                    seed_fifo::run_traffic(&cfg, |_| ReplayService::new(img, episode))
                }
                .expect("serving scenario must drain")
            })
            .collect();
        (start.elapsed().as_secs_f64() * 1e3, reports)
    };

    let mut traffic_wheel = f64::INFINITY;
    let mut traffic_heap = f64::INFINITY;
    let mut wheel_reports = Vec::new();
    let mut heap_reports = Vec::new();
    for _ in 0..2 {
        let (wms, wr) = run_cells(false);
        let (hms, hr) = run_cells(true);
        traffic_wheel = traffic_wheel.min(wms);
        traffic_heap = traffic_heap.min(hms);
        wheel_reports = wr;
        heap_reports = hr;
    }
    let identical = wheel_reports == heap_reports;
    let traffic_speedup = traffic_heap / traffic_wheel;
    println!(
        "traffic e2e, {} cells x {} workers x {} msgs: wheel {traffic_wheel:.0} ms, heap {traffic_heap:.0} ms, {traffic_speedup:.2}x, bit-identical: {identical}",
        prepared.len(),
        WORKERS,
        MESSAGES_PER_WORKER
    );

    // --- JSON ----------------------------------------------------------
    let mut report = JsonReport::new("engine");
    report
        .field("pending_events", PENDING)
        .field("churn_ops", CHURN_OPS)
        .field("fill_drain_wheel_ms", format_args!("{fd_wheel:.3}"))
        .field("fill_drain_heap_ms", format_args!("{fd_heap:.3}"))
        .field("fill_drain_speedup", format_args!("{fd_speedup:.3}"))
        .field("churn_wheel_ms", format_args!("{churn_wheel:.3}"))
        .field("churn_heap_ms", format_args!("{churn_heap:.3}"))
        .field("churn_speedup", format_args!("{churn_speedup:.3}"))
        .field("traffic_cells", prepared.len())
        .field("traffic_wheel_ms", format_args!("{traffic_wheel:.1}"))
        .field("traffic_heap_ms", format_args!("{traffic_heap:.1}"))
        .field("traffic_speedup", format_args!("{traffic_speedup:.3}"))
        .field("traffic_bit_identical", identical);
    report.write("BENCH_engine.json");

    // --- acceptance ----------------------------------------------------
    assert!(
        identical,
        "12-cell traffic sweep must be bit-identical across schedulers"
    );
    assert!(
        fd_speedup >= 2.0,
        "wheel must beat the heap >= 2x on fill+drain at {PENDING} pending, got {fd_speedup:.2}x"
    );
    assert!(
        traffic_speedup >= 1.1,
        "wheel must speed up the end-to-end traffic sweep >= 1.1x, got {traffic_speedup:.2}x"
    );
}
