//! Record/replay trace benchmark: the capture subsystem's three
//! contracts, measured on the canonical 12-cell serving grid.
//!
//! 1. **Recording is near-free.**  The capture tap appends three small
//!    copies per message (arrival, fate, RTO if fired) to per-lane
//!    buffers; a recorded run must cost within 10% of the identical
//!    live run (min-of-3 over the whole grid, gated in full mode).
//! 2. **Replay is bit-identical.**  Every cell's recorded trace,
//!    replayed through [`TraceStream`], must reproduce the recording
//!    run's full report — and stay bit-identical when the stream is
//!    re-sliced to different executor counts, and when it goes through
//!    the sweep engine's memoized replay stage, and for an adaptive
//!    run whose recorded verdicts the replay re-derives live.
//! 3. **The codecs are dense and interchangeable.**  Bytes/event for
//!    the binary and JSON encodings of the same logs, plus a
//!    write→read round trip of both file formats under `target/`.
//!
//! Writes `BENCH_trace.json` (override with `BENCH_TRACE_PATH`).
//! `scripts/bench_smoke.sh` drives the `TRACE_SMOKE=1` reduced run,
//! which omits the wall-clock fields so two runs emit identical bytes.

use std::path::Path;
use std::time::Instant;

use protolat_bench::harness::JsonReport;
use protolat_core::config::{StackKind, Version};
use protolat_core::sweep::SweepEngine;
use protocols::StackOptions;
use trace::{encode, fingerprint, read_events, write_events, Format};
use traffic::{
    record_adaptive, record_traffic, replay_adaptive, replay_traffic, run_traffic, AdaptConfig,
    Candidate, LocalPlanCache, Phase, PhasePlan, ReplayService, StreamKind, TraceStream,
    TrafficConfig,
};

const WORKERS: u32 = 4;
const SESSIONS_PER_WORKER: u32 = 512;
const RATE_MPS: u64 = 2_000;
/// The executor counts the re-slice probe replays under — the
/// bit-identity claim must hold for every count, so two is enough to
/// prove the trace carries no executor-dependent state.
const EXECUTORS: [u32; 2] = [1, 3];

fn stack_key(stack: StackKind) -> &'static str {
    match stack {
        StackKind::TcpIp => "tcpip",
        StackKind::Rpc => "rpc",
    }
}

fn main() {
    let smoke = std::env::var("TRACE_SMOKE").is_ok_and(|v| v == "1");
    let out_path = std::env::var("BENCH_TRACE_PATH").unwrap_or_else(|_| "BENCH_trace.json".into());
    let messages_per_worker: u32 = if smoke { 2_000 } else { 20_000 };

    let cfg = TrafficConfig::open_loop(RATE_MPS, messages_per_worker, SESSIONS_PER_WORKER)
        .with_workers(WORKERS)
        .with_shards(8, 24)
        .with_theta(900)
        .with_seed(0x7EA5)
        .with_faults(3_000, 1_500, 3_000, 1_500);

    let eng = SweepEngine::global();
    let opts = StackOptions::improved();

    println!(
        "trace record/replay: {} workers x {} msgs, open loop {} msg/s/worker{}",
        WORKERS,
        messages_per_worker,
        RATE_MPS,
        if smoke { " [smoke]" } else { "" },
    );

    // Resolve every cell's image and episode up front so the timed
    // passes measure serving (live vs recording), not pipeline stages.
    let mut cells = Vec::new();
    for stack in [StackKind::TcpIp, StackKind::Rpc] {
        let episode = match stack {
            StackKind::TcpIp => eng.tcpip(opts, 2).run.episodes.server_turn.clone(),
            StackKind::Rpc => eng.rpc(opts, 2).run.episodes.server_turn.clone(),
        };
        for version in Version::all() {
            let img = eng.image(stack, opts, 2, version);
            cells.push((stack, version, img, episode.clone()));
        }
    }

    // --- bit-identity: record every cell, replay through TraceStream ---
    let mut all_identical = true;
    let mut total_events = 0u64;
    let mut bin_bytes = 0u64;
    let mut json_bytes = 0u64;
    let mut probe_events = None;
    for (stack, version, img, episode) in &cells {
        let (live, events) = record_traffic(&cfg, |_| ReplayService::new(img, episode))
            .expect("serving scenario must drain");
        total_events += events.len() as u64;
        bin_bytes += encode(&events, Format::Binary).len() as u64;
        json_bytes += encode(&events, Format::Json).len() as u64;

        let stream = TraceStream::from_events(&events).expect("recorded log must validate");
        let replayed = replay_traffic(&stream, |_| ReplayService::new(img, episode))
            .expect("recorded trace must replay");
        if replayed != live {
            all_identical = false;
            println!("DIVERGED: {}/{}", stack_key(*stack), version.name());
        }
        // The engine's memoized replay stage must agree with the
        // direct replay (and with the live run).
        let staged = eng.replay_trace(*stack, opts, 2, *version, &stream);
        if *staged != live {
            all_identical = false;
            println!("STAGE DIVERGED: {}/{}", stack_key(*stack), version.name());
        }
        if *stack == StackKind::TcpIp && *version == Version::All {
            probe_events = Some((events, live));
        }
    }
    println!(
        "bit-identity: 12/12 cells recorded, replayed {}",
        if all_identical { "bit-identical" } else { "WITH DIVERGENCE" }
    );

    // --- executor re-slice probe on the representative cell ------------
    let (probe_events, probe_live) = probe_events.expect("tcpip/ALL is on the grid");
    let probe_img = eng.image(StackKind::TcpIp, opts, 2, Version::All);
    let probe_episode = eng.tcpip(opts, 2).run.episodes.server_turn.clone();
    let mut executors_identical = true;
    for ex in EXECUTORS {
        let stream = TraceStream::from_events(&probe_events)
            .expect("recorded log must validate")
            .with_executors(ex);
        let replayed = replay_traffic(&stream, |_| ReplayService::new(&probe_img, &probe_episode))
            .expect("recorded trace must replay");
        if replayed != probe_live {
            executors_identical = false;
            println!("DIVERGED at {ex} executors");
        }
    }
    println!(
        "executor re-slice: replay at {:?} executors {}",
        EXECUTORS,
        if executors_identical { "bit-identical" } else { "DIVERGED" }
    );

    // --- file round trip: both codecs through target/ ------------------
    let fp = fingerprint(&probe_events);
    let mut files_roundtrip = true;
    std::fs::create_dir_all("target").expect("target dir");
    for name in ["target/trace_bench.trace", "target/trace_bench.json"] {
        let path = Path::new(name);
        write_events(path, &probe_events).expect("trace artifact must write");
        let back = read_events(path).expect("trace artifact must read back");
        if fingerprint(&back) != fp {
            files_roundtrip = false;
            println!("ROUND TRIP FAILED: {name}");
        }
    }
    println!("file round trip: .trace and .json reproduce fingerprint {fp:#018x}");

    // --- adaptive verdict probe ----------------------------------------
    // A phase-shifting adaptive run is recorded (verdicts included) and
    // replayed: arrivals/fates come from the log while the profiler,
    // re-layout worker and hot swaps run live, so matching swap
    // timelines prove the adaptation machinery is itself deterministic
    // given the replayed inputs.
    let total_ns = messages_per_worker as u64 * 1_000_000_000 / RATE_MPS;
    let phase = |stream: StreamKind, theta: u32, last: bool| Phase {
        stream,
        milli_theta: theta,
        duration_ns: if last { 0 } else { total_ns / 3 },
        settle_ns: total_ns / 5,
    };
    let plan = PhasePlan::new(&[
        phase(StreamKind::Zipf, 900, false),
        phase(StreamKind::Conflict { slots: 8, cycle: 6 }, 900, false),
        phase(StreamKind::Zipf, 1_100, true),
    ]);
    let adapt_cfg = cfg.with_phases(plan);
    let adapt = AdaptConfig {
        stride: 8,
        window: 48,
        min_dwell_ns: total_ns / 20,
        relayout_latency_ns: total_ns / 40,
        jit: false,
    };
    let program = std::sync::Arc::clone(&eng.tcpip(opts, 2).run.world.program);
    let pool = [Version::Bad, Version::Std, Version::All];
    let candidates: Vec<Candidate> = pool
        .iter()
        .map(|&v| Candidate::new(v.name(), eng.image(StackKind::TcpIp, opts, 2, v)))
        .collect();
    let image_config = Version::Bad.image_config();
    let (a_live, a_report, a_events) = record_adaptive(
        &adapt_cfg,
        &adapt,
        &program,
        &probe_episode,
        &image_config,
        &candidates,
        0,
        LocalPlanCache::default(),
    )
    .expect("adaptive scenario must drain");
    let a_stream = TraceStream::from_events(&a_events).expect("adaptive log must validate");
    let adapt_verdicts_match = match replay_adaptive(
        &a_stream,
        &adapt,
        &program,
        &probe_episode,
        &image_config,
        &candidates,
        0,
        LocalPlanCache::default(),
    ) {
        Ok((r_live, r_report)) => r_live == a_live && r_report.swaps == a_report.swaps,
        Err(e) => {
            println!("ADAPTIVE REPLAY FAILED: {e}");
            false
        }
    };
    println!(
        "adaptive verdicts: {} swaps recorded, replay {}",
        a_report.swaps.len(),
        if adapt_verdicts_match { "matched" } else { "DIVERGED" }
    );

    // --- record overhead: min-of-3 full-grid passes, live vs record ----
    let live_pass = || {
        let t = Instant::now();
        for (_, _, img, episode) in &cells {
            run_traffic(&cfg, |_| ReplayService::new(img, episode)).expect("must drain");
        }
        t.elapsed().as_secs_f64()
    };
    let record_pass = || {
        let t = Instant::now();
        for (_, _, img, episode) in &cells {
            record_traffic(&cfg, |_| ReplayService::new(img, episode)).expect("must drain");
        }
        t.elapsed().as_secs_f64()
    };
    let (mut live_s, mut record_s) = (f64::INFINITY, f64::INFINITY);
    let passes = if smoke { 1 } else { 3 };
    for _ in 0..passes {
        live_s = live_s.min(live_pass());
        record_s = record_s.min(record_pass());
    }
    let overhead_pct = (record_s / live_s - 1.0) * 100.0;
    println!(
        "record overhead: live {:.1} ms, recording {:.1} ms ({overhead_pct:+.1}%) over {} cells x{passes}",
        live_s * 1e3,
        record_s * 1e3,
        cells.len(),
    );

    // --- JSON ----------------------------------------------------------
    let events_per_cell = total_events as f64 / cells.len() as f64;
    let mut report = JsonReport::new("trace");
    report
        .field("smoke", u32::from(smoke))
        .field("workers", WORKERS)
        .field("messages_per_worker", messages_per_worker)
        .field("rate_mps", RATE_MPS)
        .field("cells", cells.len())
        .field("events_per_cell", format_args!("{events_per_cell:.1}"))
        .field(
            "bytes_per_event_binary",
            format_args!("{:.2}", bin_bytes as f64 / total_events as f64),
        )
        .field(
            "bytes_per_event_json",
            format_args!("{:.2}", json_bytes as f64 / total_events as f64),
        )
        .field("replay_bit_identical", u32::from(all_identical))
        .text("executor_probe", format_args!("{EXECUTORS:?}"))
        .field("executor_bit_identical", u32::from(executors_identical))
        .field("file_roundtrip_ok", u32::from(files_roundtrip))
        .field("adapt_swaps", a_report.swaps.len())
        .field("adapt_verdicts_match", u32::from(adapt_verdicts_match));
    if !smoke {
        // Wall-clock fields only in full mode: the smoke contract is
        // byte-reproducible across runs (bench_smoke.sh cmp-probes it).
        report
            .field("live_ms", format_args!("{:.1}", live_s * 1e3))
            .field("record_ms", format_args!("{:.1}", record_s * 1e3))
            .field("record_overhead_pct", format_args!("{overhead_pct:.2}"));
    }
    report.write(&out_path);

    // --- acceptance ----------------------------------------------------
    assert!(all_identical, "every recorded cell must replay bit-identically");
    assert!(executors_identical, "replay must be executor-invariant");
    assert!(files_roundtrip, "both trace codecs must round-trip through files");
    assert!(!a_report.swaps.is_empty(), "the adaptive probe must actually swap");
    assert!(adapt_verdicts_match, "adaptive replay must re-derive the recorded verdicts");
    if !smoke {
        assert!(
            overhead_pct <= 10.0,
            "recording must cost <= 10% over live serving, measured {overhead_pct:.2}%"
        );
    }
}
