//! Layout-synthesis benchmark: the data-oriented micro-positioner
//! (dense triangular weights, differential offset scoring, sorted
//! interval set) against the seed greedy kept as `layout::reference`,
//! plus the SweepEngine's parallel memoized 12-cell synthesis.
//!
//! Three measurements:
//!
//! * **micro** — one `micro_position` call on each stack's canonical
//!   trace, optimized vs reference (placements sanity-checked equal).
//!   The RPC stack is the paper's many-small-functions worst case; the
//!   bench asserts the optimized placer is at least 2x faster there.
//! * **cells** — synthesizing all 12 experiment layouts (6 versions x
//!   2 stacks): serial direct calls vs the engine's parallel prefetch
//!   (functional runs prewarmed out of both timings).
//! * **memo** — layout-cache traffic of a full canonical sweep: the
//!   hit rate shows how often drivers reuse a synthesized plan.
//!
//! Writes `BENCH_layout.json`; `scripts/bench_smoke.sh` checks the
//! contract.

use std::collections::HashSet;
use std::time::Instant;

use protolat_bench::harness::JsonReport;
use protolat_bench::{RpcCtx, TcpCtx};
use kcode::layout::{micro_position, reference, LayoutRequest, LayoutStrategy};
use protolat_core::config::{StackKind, Version};
use protolat_core::sweep::{SweepEngine, SweepJob};
use protocols::StackOptions;

/// Best-of-`reps` seconds for one invocation of `f`.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct MicroCell {
    label: String,
    opt_ms: f64,
    ref_ms: f64,
}

fn measure_micro(
    label: &str,
    program: &std::sync::Arc<kcode::Program>,
    canonical: &kcode::EventStream,
) -> MicroCell {
    let req = LayoutRequest::new(
        LayoutStrategy::MicroPosition,
        kcode::ImageConfig::plain("bench").with_outline(true),
    );
    let none = HashSet::new();

    // Sanity: both placers agree before either is timed.
    let opt = micro_position(program, canonical, &req, &none);
    let seed = reference::micro_position(program, canonical, &req, &none);
    assert_eq!(opt, seed, "{label}: optimized placements diverge from reference");

    let opt_ms = best_secs(30, || micro_position(program, canonical, &req, &none)) * 1e3;
    let ref_ms =
        best_secs(10, || reference::micro_position(program, canonical, &req, &none)) * 1e3;
    MicroCell { label: label.to_string(), opt_ms, ref_ms }
}

fn main() {
    let opts = StackOptions::improved();
    let tcp = TcpCtx::new();
    let rpc = RpcCtx::new();

    let tcp_micro = measure_micro("tcpip", &tcp.world.program, &tcp.canonical);
    let rpc_micro = measure_micro("rpc", &rpc.world.program, &rpc.canonical);

    // 12-cell synthesis: serial direct calls vs parallel engine
    // prefetch.  Both engines get their functional runs prewarmed so
    // only layout synthesis is on the clock.
    let serial_eng = SweepEngine::new();
    serial_eng.tcpip(opts, 2);
    serial_eng.rpc(opts, 2);
    let t = Instant::now();
    for stack in [StackKind::TcpIp, StackKind::Rpc] {
        for v in Version::all() {
            serial_eng.layout(stack, opts, 2, v);
        }
    }
    let cells_serial_ms = t.elapsed().as_secs_f64() * 1e3;

    let par_eng = SweepEngine::new();
    par_eng.tcpip(opts, 2);
    par_eng.rpc(opts, 2);
    let jobs: Vec<SweepJob> = [StackKind::TcpIp, StackKind::Rpc]
        .into_iter()
        .flat_map(|stack| {
            Version::all().map(move |v| SweepJob::Layout(stack, opts, 2, v))
        })
        .collect();
    let t = Instant::now();
    par_eng.prefetch(&jobs);
    let cells_parallel_ms = t.elapsed().as_secs_f64() * 1e3;

    // Memoization hit rate over a full canonical sweep.
    let sweep_eng = SweepEngine::new();
    sweep_eng.sweep(opts, 2);
    let (layout_requests, layout_computed) = sweep_eng.layout_stats();
    let layout_hit_rate = 1.0 - layout_computed as f64 / layout_requests as f64;

    let tcp_speedup = tcp_micro.ref_ms / tcp_micro.opt_ms;
    let rpc_speedup = rpc_micro.ref_ms / rpc_micro.opt_ms;

    println!("layout synthesis (best-of, ms):");
    println!("  {:<8} {:>10} {:>10} {:>9}", "stack", "optimized", "reference", "speedup");
    for c in [&tcp_micro, &rpc_micro] {
        println!(
            "  {:<8} {:>10.3} {:>10.3} {:>8.2}x",
            c.label,
            c.opt_ms,
            c.ref_ms,
            c.ref_ms / c.opt_ms
        );
    }
    println!("  12-cell synthesis serial:   {cells_serial_ms:>8.2} ms");
    println!("  12-cell synthesis parallel: {cells_parallel_ms:>8.2} ms");
    println!(
        "  sweep layout memo: {layout_requests} requests, {layout_computed} computed \
         ({:.0}% hit rate)",
        layout_hit_rate * 100.0
    );

    let mut report = JsonReport::new("layout");
    report
        .field("tcpip_micro_opt_ms", format_args!("{:.4}", tcp_micro.opt_ms))
        .field("tcpip_micro_ref_ms", format_args!("{:.4}", tcp_micro.ref_ms))
        .field("tcpip_micro_speedup", format_args!("{tcp_speedup:.3}"))
        .field("rpc_micro_opt_ms", format_args!("{:.4}", rpc_micro.opt_ms))
        .field("rpc_micro_ref_ms", format_args!("{:.4}", rpc_micro.ref_ms))
        .field("rpc_micro_speedup", format_args!("{rpc_speedup:.3}"))
        .field("cells_serial_ms", format_args!("{cells_serial_ms:.3}"))
        .field("cells_parallel_ms", format_args!("{cells_parallel_ms:.3}"))
        .field("layout_requests", layout_requests)
        .field("layout_computed", layout_computed)
        .field("layout_hit_rate", format_args!("{layout_hit_rate:.3}"));
    report.write("BENCH_layout.json");

    assert!(
        rpc_speedup >= 2.0,
        "optimized micro-positioning must be >= 2x the reference on the RPC stack \
         (got {rpc_speedup:.2}x)"
    );
}
