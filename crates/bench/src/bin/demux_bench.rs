//! Demux-locality benchmark: the address-cache policy × reference-
//! stream matrix of the Jain destination-cache study, measured end to
//! end through the serving pipeline.
//!
//! The paper's x-kernel demultiplexer fixes a one-entry cache in front
//! of the hash walk; DEC-TR-592 shows the right policy depends on the
//! reference stream's locality structure.  This bench runs the
//! tcpip/ALL cell under every (policy, stream) pair and reports each
//! cell's address-cache hit rate, modelled mean demux cost and
//! end-to-end latency quantiles.  Faults are disabled so the matrix
//! isolates demux behaviour.
//!
//! Probes asserted here:
//! * the fill-on-chain-hit contract makes `misses` (and total hit
//!   rate) policy-invariant per stream — only the cache/chain split
//!   moves;
//! * the best policy on the adversarial conflict stream strictly beats
//!   the seed one-entry cache there, and is no slower than the seed on
//!   the Zipf stream;
//! * the dispatch plane reproduces `runloop::reference` bit-for-bit on
//!   a conflict-stream cell (stateful streams cross planes exactly);
//! * a fresh (memo-cold) engine reproduces a memoized cell exactly.
//!
//! A raw table microbench (wall-clock ns/lookup per policy on a hot
//! Zipf loop) prints to stdout only — the JSON carries exclusively
//! deterministic modelled values, so two runs of this binary produce
//! byte-identical files (`scripts/bench_smoke.sh` drives the
//! `DEMUX_SMOKE=1` reduced matrix twice and `cmp`s them).
//!
//! Writes `BENCH_demux.json` (override with `BENCH_DEMUX_PATH`).

use std::time::Instant;

use netsim::rng::SplitMix64;
use protolat_bench::harness::JsonReport;
use protolat_core::config::{StackKind, Version};
use protolat_core::sweep::{DemuxCell, DemuxSpec, SweepEngine};
use protocols::StackOptions;
use traffic::runloop::reference;
use traffic::{
    buckets_for_capacity, DemuxKey, PolicyKind, ReplayService, SessionTable, StreamKind,
    TrafficConfig, Zipf,
};

const WORKERS: u32 = 4;
const SESSIONS_PER_WORKER: u32 = 512;
const RATE_MPS: u64 = 2_000;
/// Shards per worker table (power of two, matches traffic_bench).
const SHARDS: u32 = 8;
/// Address-cache capacity of the multi-entry policies.
const SLOTS: u32 = 8;
/// Conflict-cycle length: defeats every set-indexed policy of ≤ SLOTS
/// slots and the one-entry cache, while fitting FIFO/random.
const CYCLE: u32 = 6;

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::OneEntry,
    PolicyKind::DirectMapped { slots: SLOTS },
    PolicyKind::TwoWayLru { sets: SLOTS / 2 },
    PolicyKind::Fifo { slots: SLOTS },
    PolicyKind::Random { slots: SLOTS },
];

const STREAMS: [StreamKind; 4] = [
    StreamKind::Zipf,
    StreamKind::StackDepth { milli_p: 800 },
    StreamKind::Train { milli_cont: 950 },
    StreamKind::Conflict { slots: SLOTS, cycle: CYCLE },
];

fn main() {
    let smoke = std::env::var("DEMUX_SMOKE").is_ok_and(|v| v == "1");
    let out_path = std::env::var("BENCH_DEMUX_PATH").unwrap_or_else(|_| "BENCH_demux.json".into());
    let messages_per_worker: u32 = if smoke { 4_000 } else { 20_000 };

    // Faults off: retransmissions would re-reference sessions on the
    // fault RNG's schedule and blur the stream's locality structure.
    let base = TrafficConfig::open_loop(RATE_MPS, messages_per_worker, SESSIONS_PER_WORKER)
        .with_workers(WORKERS)
        .with_shards(SHARDS, 24)
        .with_theta(900)
        .with_seed(0x7EA5);

    let eng = SweepEngine::global();
    let opts = StackOptions::improved();
    let (stack, version) = (StackKind::TcpIp, Version::All);

    println!(
        "demux matrix: tcpip/ALL, {} workers x {} msgs, {} sessions/worker, \
         {} policies x {} streams{}",
        WORKERS,
        messages_per_worker,
        SESSIONS_PER_WORKER,
        POLICIES.len(),
        STREAMS.len(),
        if smoke { " [smoke]" } else { "" },
    );

    let specs = DemuxSpec::cross(base, &POLICIES, &STREAMS);
    let rows = eng.demux_matrix(stack, opts, 2, version, &specs);

    println!(
        "{:<14} {:<12} {:>7} {:>7} {:>10} {:>9} {:>9}",
        "policy", "stream", "cache%", "hit%", "lookup ns", "p99 µs", "evict"
    );
    for (spec, c) in &rows {
        println!(
            "{:<14} {:<12} {:>6.1}% {:>6.1}% {:>10.1} {:>9.1} {:>9}",
            spec.policy.name(),
            spec.stream.name(),
            c.cache_hit_rate * 100.0,
            c.hit_rate * 100.0,
            c.lookup_ns,
            c.p99_ns as f64 / 1e3,
            c.evictions,
        );
    }

    let cell = |policy: PolicyKind, stream: StreamKind| -> &DemuxCell {
        rows.iter()
            .find(|(spec, _)| spec.policy == policy && spec.stream == stream)
            .map(|(_, c)| c)
            .expect("matrix cell present")
    };

    // --- contract: misses and total hits are policy-invariant ----------
    // The address cache is only filled from chain hits and invalidated
    // on eviction, so which bindings are resident — hence every miss —
    // is identical across policies; a policy can only move hits between
    // the cache and the chain.
    for &stream in &STREAMS {
        let seed = cell(PolicyKind::OneEntry, stream);
        for &policy in &POLICIES[1..] {
            let c = cell(policy, stream);
            assert_eq!(
                (c.lookups, c.misses, c.evictions),
                (seed.lookups, seed.misses, seed.evictions),
                "{}/{}: resident-set trajectory diverged from the seed policy",
                policy.name(),
                stream.name()
            );
        }
    }
    println!("\ninvariance contract: lookups/misses/evictions identical across policies");

    // --- acceptance: best policy beats seed on the adversarial stream --
    let adversarial = STREAMS[3];
    let (winner_spec, winner_conflict) = rows
        .iter()
        .filter(|(spec, _)| spec.stream == adversarial)
        .max_by(|a, b| a.1.cache_hit_rate.total_cmp(&b.1.cache_hit_rate))
        .expect("conflict column present");
    let winner = &winner_spec.policy;
    let seed_conflict = cell(PolicyKind::OneEntry, adversarial);
    let winner_beats_seed_adversarial = winner_conflict.cache_hit_rate
        >= seed_conflict.cache_hit_rate + 0.30
        && winner_conflict.lookup_ns < seed_conflict.lookup_ns;
    println!(
        "adversarial stream: {} cache hit {:.1}% vs seed one-entry {:.1}% \
         (lookup {:.1} ns vs {:.1} ns)",
        winner.name(),
        winner_conflict.cache_hit_rate * 100.0,
        seed_conflict.cache_hit_rate * 100.0,
        winner_conflict.lookup_ns,
        seed_conflict.lookup_ns,
    );
    assert!(
        winner_beats_seed_adversarial,
        "no policy decisively beat the seed one-entry cache on the conflict stream"
    );

    let winner_zipf = cell(*winner, StreamKind::Zipf);
    let seed_zipf = cell(PolicyKind::OneEntry, StreamKind::Zipf);
    let zipf_not_slower = winner_zipf.lookup_ns <= seed_zipf.lookup_ns;
    println!(
        "zipf stream: {} lookup {:.1} ns vs seed one-entry {:.1} ns",
        winner.name(),
        winner_zipf.lookup_ns,
        seed_zipf.lookup_ns,
    );
    assert!(
        zipf_not_slower,
        "{} regressed the Zipf-stream demux cost vs the seed one-entry cache",
        winner.name()
    );

    // --- dispatch plane vs seed FIFO on a stateful stream ---------------
    let conflict_cfg = DemuxSpec { base, policy: *winner, stream: adversarial }.config();
    let memoized = eng.traffic(stack, opts, 2, version, conflict_cfg);
    let img = eng.image(stack, opts, 2, version);
    let episode = eng.tcpip(opts, 2).run.episodes.server_turn.clone();
    let fifo = reference::run_traffic(&conflict_cfg, |_| ReplayService::new(&img, &episode))
        .expect("reference run must drain");
    assert!(
        *memoized == fifo,
        "dispatch plane diverged from runloop::reference on the conflict stream"
    );
    println!("dispatch-vs-reference probe: bit-identical on {}/conflict", winner.name());

    // --- memo-cold bit-repro probe --------------------------------------
    let probe_spec = DemuxSpec { base, policy: *winner, stream: adversarial };
    let recomputed = SweepEngine::new().demux(stack, opts, 2, version, probe_spec);
    let bit_repro = recomputed == *winner_conflict;
    assert!(bit_repro, "memo-cold recompute of the winner/conflict cell diverged");
    println!("bit-repro probe: memo-cold recompute reproduced the winner/conflict cell");

    // --- raw-table microbench (stdout only; not in the JSON) ------------
    // Wall-clock cost of the lookup fast path itself, policy by policy,
    // on a hot Zipf loop over a fully resident shard set — the
    // zero-cost-abstraction check for the monomorphized dispatch.
    let zipf = Zipf::new(SESSIONS_PER_WORKER as usize, 900);
    let laps: u64 = if smoke { 200_000 } else { 1_000_000 };
    println!("\nraw table microbench ({laps} hot lookups):");
    for &policy in &POLICIES {
        let capacity = SESSIONS_PER_WORKER as usize; // fully resident
        let mut table: SessionTable<u32> = SessionTable::with_policy(
            SHARDS as usize,
            capacity,
            buckets_for_capacity(capacity),
            policy,
            0x7EA5,
        );
        let mut rng = SplitMix64::new(0xD1CE);
        for id in 0..SESSIONS_PER_WORKER {
            table.insert(DemuxKey::for_session(id as u64), id);
        }
        let keys: Vec<DemuxKey> = (0..laps)
            .map(|_| DemuxKey::for_session(zipf.sample(&mut rng) as u64))
            .collect();
        let start = Instant::now();
        let mut sink = 0u64;
        for k in &keys {
            if let (Some(v), _) = table.lookup(k) {
                sink = sink.wrapping_add(v as u64);
            }
        }
        let elapsed = start.elapsed();
        println!(
            "  {:<14} {:>7.1} ns/lookup (cache hit {:>5.1}%, sink {sink})",
            policy.name(),
            elapsed.as_nanos() as f64 / laps as f64,
            table.stats().cache_hit_rate() * 100.0,
        );
    }

    // --- JSON ------------------------------------------------------------
    let mut report = JsonReport::new("demux");
    report
        .field("workers", WORKERS)
        .field("messages_per_worker", messages_per_worker)
        .field("sessions_per_worker", SESSIONS_PER_WORKER)
        .field("rate_mps", RATE_MPS)
        .field("policies", POLICIES.len())
        .field("streams", STREAMS.len())
        .field("slots", SLOTS)
        .field("conflict_cycle", CYCLE)
        .field("smoke", smoke);
    for (spec, c) in &rows {
        let k = format!("{}_{}", spec.policy.name(), spec.stream.name());
        report.field(format!("{k}_cache_hit_rate"), format_args!("{:.6}", c.cache_hit_rate));
        report.field(format!("{k}_lookup_ns"), format_args!("{:.3}", c.lookup_ns));
        report.field(format!("{k}_p99_us"), format_args!("{:.3}", c.p99_ns as f64 / 1e3));
    }
    report
        .text("winner_policy", winner.name())
        .field(
            "winner_conflict_cache_hit_rate",
            format_args!("{:.6}", winner_conflict.cache_hit_rate),
        )
        .field(
            "seed_conflict_cache_hit_rate",
            format_args!("{:.6}", seed_conflict.cache_hit_rate),
        )
        .field("winner_beats_seed_adversarial", winner_beats_seed_adversarial)
        .field("zipf_not_slower", zipf_not_slower)
        .field("bit_repro", bit_repro);
    report.write(&out_path);
}
