//! Replay→simulate throughput benchmark: the data-oriented hot loop
//! (lean streaming replay fused into the flat-taxonomy machine model)
//! against the seed pipeline (materialized trace with full fetch-set
//! statistics, simulated on the scalar `reference` model kept in-tree).
//!
//! Measures instructions per second over one full roundtrip (client-out,
//! client-in, server-turn) for STD and ALL images of both stacks:
//!
//! * **fresh** — each iteration builds its replayer and a cold machine,
//!   the sweep engine's per-cell cost;
//! * **warm** — replayer and machine persist, counters reset per pass,
//!   the roundtrip timer's steady-state cost.
//!
//! Writes `BENCH_replay.json` and asserts the optimized fresh path is
//! at least 2x the reference throughput on every cell.

use std::time::Instant;

use alpha_machine::{reference, Machine};
use kcode::{Image, Replayer};
use protolat_bench::harness::JsonReport;
use protolat_core::config::Version;
use protolat_core::harness::{run_rpc, run_tcpip, RoundtripEpisodes};
use protolat_core::world::{RpcWorld, TcpIpWorld};
use protocols::StackOptions;

/// Best-of-`reps` seconds for one invocation of `f`.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Dynamic instructions in one roundtrip of `image`.
fn roundtrip_insts(episodes: &RoundtripEpisodes, image: &Image) -> u64 {
    let rep = Replayer::new(image);
    let mut total = 0;
    for ep in [&episodes.client_out, &episodes.client_in, &episodes.server_turn] {
        total += rep
            .replay_into_lean(ep, &mut kcode::NullSink)
            .expect("episode must replay cleanly");
    }
    total
}

struct Cell {
    label: String,
    fused_fresh_ips: f64,
    fused_warm_ips: f64,
    materialized_fresh_ips: f64,
    materialized_warm_ips: f64,
}

fn measure_cell(label: &str, episodes: &RoundtripEpisodes, image: &Image) -> Cell {
    let insts = roundtrip_insts(episodes, image) as f64;
    let eps = [&episodes.client_out, &episodes.client_in, &episodes.server_turn];

    // Optimized stack, fresh: plans + cold machine built per iteration.
    let fused_fresh = best_secs(15, || {
        let rep = Replayer::new(image);
        let mut m = Machine::dec3000_600();
        for ep in eps {
            rep.replay_into_lean(ep, &mut m).expect("episode must replay cleanly");
        }
        m.mem.stall_cycles()
    });

    // Optimized stack, warm: persistent replayer and machine.
    let rep = Replayer::new(image);
    let mut m = Machine::dec3000_600();
    let fused_warm = best_secs(30, || {
        m.reset_stats();
        for ep in eps {
            rep.replay_into_lean(ep, &mut m).expect("episode must replay cleanly");
        }
        m.mem.stall_cycles()
    });

    // Seed pipeline, fresh: materialized trace with full fetch-set
    // statistics, simulated on the scalar reference model.
    let materialized_fresh = best_secs(15, || {
        let rep = Replayer::new(image);
        let mut m = reference::Machine::dec3000_600();
        for ep in eps {
            let out = rep.replay(ep).expect("episode must replay cleanly");
            m.run_accumulate(&out.trace);
        }
        m.mem.stall_cycles()
    });

    // Seed pipeline, warm.
    let rep_ref = Replayer::new(image);
    let mut m_ref = reference::Machine::dec3000_600();
    let materialized_warm = best_secs(30, || {
        m_ref.reset_stats();
        for ep in eps {
            let out = rep_ref.replay(ep).expect("episode must replay cleanly");
            m_ref.run_accumulate(&out.trace);
        }
        m_ref.mem.stall_cycles()
    });

    Cell {
        label: label.to_string(),
        fused_fresh_ips: insts / fused_fresh,
        fused_warm_ips: insts / fused_warm,
        materialized_fresh_ips: insts / materialized_fresh,
        materialized_warm_ips: insts / materialized_warm,
    }
}

fn main() {
    let opts = StackOptions::improved();
    let mut cells = Vec::new();

    let run = run_tcpip(TcpIpWorld::build(opts), 2);
    let canonical = run.episodes.client_trace();
    for v in [Version::Std, Version::All] {
        let img = v.build_tcpip(&run.world, &canonical);
        let label = format!("tcpip_{}", v.name().to_lowercase());
        cells.push(measure_cell(&label, &run.episodes, &img));
    }

    let run = run_rpc(RpcWorld::build(opts), 2);
    let canonical = run.episodes.client_trace();
    for v in [Version::Std, Version::All] {
        let img = v.build_rpc(&run.world, &canonical);
        let label = format!("rpc_{}", v.name().to_lowercase());
        cells.push(measure_cell(&label, &run.episodes, &img));
    }

    let min_fresh_speedup = cells
        .iter()
        .map(|c| c.fused_fresh_ips / c.materialized_fresh_ips)
        .fold(f64::INFINITY, f64::min);
    let min_warm_speedup = cells
        .iter()
        .map(|c| c.fused_warm_ips / c.materialized_warm_ips)
        .fold(f64::INFINITY, f64::min);

    println!("replay->simulate throughput (M insts/sec, best-of):");
    println!(
        "  {:<12} {:>12} {:>12} {:>12} {:>12}",
        "cell", "fused fresh", "fused warm", "ref fresh", "ref warm"
    );
    for c in &cells {
        println!(
            "  {:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            c.label,
            c.fused_fresh_ips / 1e6,
            c.fused_warm_ips / 1e6,
            c.materialized_fresh_ips / 1e6,
            c.materialized_warm_ips / 1e6,
        );
    }
    println!("  min fresh speedup vs reference: {min_fresh_speedup:.2}x");
    println!("  min warm  speedup vs reference: {min_warm_speedup:.2}x");

    let mut report = JsonReport::new("replay");
    for c in &cells {
        report.field(
            format!("{}_fused_fresh_ips", c.label),
            format_args!("{:.0}", c.fused_fresh_ips),
        );
        report.field(
            format!("{}_fused_warm_ips", c.label),
            format_args!("{:.0}", c.fused_warm_ips),
        );
        report.field(
            format!("{}_materialized_fresh_ips", c.label),
            format_args!("{:.0}", c.materialized_fresh_ips),
        );
        report.field(
            format!("{}_materialized_warm_ips", c.label),
            format_args!("{:.0}", c.materialized_warm_ips),
        );
    }
    report
        .field("min_fresh_speedup", format_args!("{min_fresh_speedup:.3}"))
        .field("min_warm_speedup", format_args!("{min_warm_speedup:.3}"));
    report.write("BENCH_replay.json");

    assert!(
        min_fresh_speedup >= 2.0,
        "optimized fresh replay must be >= 2x the reference pipeline (got {min_fresh_speedup:.2}x)"
    );
}
