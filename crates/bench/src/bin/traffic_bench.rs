//! Traffic-serving benchmark: tail latency and throughput of every
//! (stack, layout) cell under sustained open-loop traffic, plus the
//! multi-worker scaling probe.
//!
//! Per cell, each worker replays its messages' server-turn episodes
//! through the machine model under that cell's layout (cold on session
//! miss, warm on hit), so the paper's per-message layout savings show
//! up where a serving system feels them: in the p99/p99.9 of the
//! latency distribution under queueing and faults.
//!
//! The worker-scaling probe is a closed-loop, think-time-zero run: each
//! worker's clients keep its server saturated, so *simulated* serving
//! throughput (messages per simulated second) scales with the worker
//! count — the single-host-partitioning claim, measured in simulation
//! time and therefore deterministic.
//!
//! Writes `BENCH_traffic.json` for `scripts/bench_smoke.sh`.

use protolat_bench::harness::JsonReport;
use protolat_core::config::{StackKind, Version};
use protolat_core::sweep::SweepEngine;
use protocols::StackOptions;
use traffic::{run_traffic, ReplayService, TrafficConfig, TrafficReport, WirePath};

/// The serving scenario every cell is measured under.
const WORKERS: u32 = 4;
const MESSAGES_PER_WORKER: u32 = 20_000;
const SESSIONS_PER_WORKER: u32 = 512;
const RATE_MPS: u64 = 2_000;

fn serving_cfg() -> TrafficConfig {
    TrafficConfig::open_loop(RATE_MPS, MESSAGES_PER_WORKER, SESSIONS_PER_WORKER)
        .with_workers(WORKERS)
        .with_shards(8, 24)
        .with_theta(900)
        .with_seed(0x7EA5)
        .with_faults(3_000, 1_500, 3_000, 1_500)
        // Serve through the zero-copy byte plane: every message is
        // encoded to real TCP/IP bytes in a pooled buffer and demuxed
        // back, and the injector's wire-shape fates (truncate, malform,
        // fragment) are genuinely parsed to their typed decode errors.
        .with_wire(WirePath::ZeroCopy)
        .with_wire_faults(800, 500, 700)
}

fn stack_key(stack: StackKind) -> &'static str {
    match stack {
        StackKind::TcpIp => "tcpip",
        StackKind::Rpc => "rpc",
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn main() {
    let eng = SweepEngine::global();
    let opts = StackOptions::improved();
    let cfg = serving_cfg();

    // --- the 12-cell serving sweep (parallel prefetch, memoized) -------
    let rows = eng.traffic_sweep(opts, 2, cfg);

    println!(
        "traffic serving: {} workers x {} msgs, {} sessions/worker, open loop {} msg/s/worker",
        WORKERS, MESSAGES_PER_WORKER, SESSIONS_PER_WORKER, RATE_MPS
    );
    println!(
        "{:<6} {:<5} {:>9} {:>9} {:>10} {:>10} {:>9} {:>8}",
        "stack", "ver", "p50 µs", "p99 µs", "p99.9 µs", "max µs", "msg/s", "hit%"
    );
    let mut cells = Vec::new();
    for (stack, version, r) in &rows {
        println!(
            "{:<6} {:<5} {:>9.1} {:>9.1} {:>10.1} {:>10.1} {:>9.0} {:>7.1}%",
            stack_key(*stack),
            version.name(),
            us(r.hist.p50()),
            us(r.hist.p99()),
            us(r.hist.p999()),
            us(r.hist.max()),
            r.msgs_per_sec(),
            r.table.hit_rate() * 100.0
        );
        cells.push((*stack, *version, r.clone()));
    }

    // --- determinism probe: an identical fresh run must reproduce the
    // memoized report bit for bit ------------------------------------
    let probe_cell = eng.traffic(StackKind::TcpIp, opts, 2, Version::Std, cfg);
    let img = eng.image(StackKind::TcpIp, opts, 2, Version::Std);
    let episode = eng.tcpip(opts, 2).run.episodes.server_turn.clone();
    let rerun = run_traffic(&cfg, |_| ReplayService::new(&img, &episode))
        .expect("serving scenario must drain");
    assert_eq!(
        *probe_cell, rerun,
        "a fixed (seed, workers) run must be bit-reproducible"
    );
    println!("\ndeterminism probe: rerun of tcpip/STD reproduced bit-for-bit");

    // --- worker scaling probe (closed loop, zero think time) -----------
    let probe = |workers: u32| -> TrafficReport {
        let cfg = TrafficConfig::closed_loop(16, 0, 8_000, SESSIONS_PER_WORKER)
            .with_workers(workers)
            .with_shards(8, 24)
            .with_theta(900)
            .with_seed(0x5CA1E);
        run_traffic(&cfg, |_| ReplayService::new(&img, &episode))
            .expect("closed loop must drain")
    };
    // --- offered vs achieved: the generator must not be the bottleneck --
    // Arrival timestamps are pre-drawn simulated times, so ring
    // backpressure cannot defer an arrival — but if the hand-off plane
    // (or the histogram's completion accounting) lost or stalled
    // messages, achieved simulated throughput would fall below the
    // offered rate even at this sub-knee operating point.  At the seed
    // rate every cell must serve what was offered.
    let offered_mps = (RATE_MPS * WORKERS as u64) as f64;
    let min_achieved_mps = cells
        .iter()
        .map(|(_, _, r)| r.msgs_per_sec())
        .fold(f64::INFINITY, f64::min);
    println!(
        "offered vs achieved: {:.0} msg/s offered/cell, min achieved {:.1} msg/s ({:.1}%)",
        offered_mps,
        min_achieved_mps,
        100.0 * min_achieved_mps / offered_mps
    );
    for (stack, version, r) in &cells {
        let achieved = r.msgs_per_sec();
        assert!(
            achieved >= 0.97 * offered_mps,
            "{}/{}: achieved {achieved:.1} msg/s < 97% of the {offered_mps:.0} msg/s offered — \
             arrival generation, not service, limited the run",
            stack_key(*stack),
            version.name()
        );
    }

    let single = probe(1);
    let multi = probe(WORKERS);
    let single_mps = single.msgs_per_sec();
    let multi_mps = multi.msgs_per_sec();
    let worker_speedup = multi_mps / single_mps;
    println!(
        "worker scaling (closed loop, saturated): 1 worker {:.0} msg/s, {} workers {:.0} msg/s, {:.2}x",
        single_mps, WORKERS, multi_mps, worker_speedup
    );

    // --- JSON ----------------------------------------------------------
    let mut report = JsonReport::new("traffic");
    report
        .field("workers", WORKERS)
        .field("messages_per_worker", MESSAGES_PER_WORKER)
        .field("sessions_per_worker", SESSIONS_PER_WORKER)
        .field("rate_mps", RATE_MPS)
        .field("offered_mps", format_args!("{offered_mps:.1}"))
        .field("min_achieved_mps", format_args!("{min_achieved_mps:.1}"));
    for (stack, version, r) in &cells {
        let k = format!("{}_{}", stack_key(*stack), version.name().to_lowercase());
        report.field(format!("{k}_p50_us"), format_args!("{:.3}", us(r.hist.p50())));
        report.field(format!("{k}_p99_us"), format_args!("{:.3}", us(r.hist.p99())));
        report.field(format!("{k}_p999_us"), format_args!("{:.3}", us(r.hist.p999())));
        report.field(format!("{k}_mps"), format_args!("{:.1}", r.msgs_per_sec()));
        // Session-table demux behaviour per cell, so address-cache
        // policy wins are visible in this contract too.
        report.field(format!("{k}_table_hit_rate"), format_args!("{:.6}", r.table.hit_rate()));
        report.field(
            format!("{k}_cache_hit_rate"),
            format_args!("{:.6}", r.table.cache_hit_rate()),
        );
        report.field(format!("{k}_miss_rate"), format_args!("{:.6}", {
            let t = &r.table;
            if t.lookups == 0 { 0.0 } else { t.misses as f64 / t.lookups as f64 }
        }));
        report.field(format!("{k}_evictions"), r.table.evictions);
        // Anomaly provenance per cell: how many messages each injected
        // fault fate claimed and how many RTO timers fired — exactly
        // the nondeterministic decisions a recorded trace captures, so
        // a replayed run must reproduce these counters bit-for-bit.
        report.field(format!("{k}_drops"), r.faults.dropped);
        report.field(format!("{k}_corruptions"), r.faults.corrupted);
        report.field(format!("{k}_reorders"), r.faults.reordered);
        report.field(format!("{k}_duplicates"), r.faults.duplicated);
        report.field(format!("{k}_rto_fires"), r.retransmits);
        // Wire-plane anomaly provenance: each counter is a typed decode
        // error from a real byte-level parse of the shaped frame (runt,
        // bad version nibble, unreassemblable fragment, FCS mismatch).
        report.field(format!("{k}_truncations"), r.wire.truncated);
        report.field(format!("{k}_malforms"), r.wire.malformed);
        report.field(format!("{k}_fragments"), r.wire.fragmented);
        report.field(format!("{k}_bad_fcs"), r.wire.bad_fcs);
        // Replay-service memo behaviour per cell: how much simulation
        // the steady-state memo eliminated, how the limit-cycle
        // detector classified each lane's warm cost sequence, and how
        // many times the memo was invalidated (always 0 for these
        // static cells — the adaptive loop in BENCH_adapt.json is what
        // drives it).
        report.field(
            format!("{k}_memo_hit_rate"),
            format_args!("{:.6}", r.service.memo_hit_rate()),
        );
        report.field(format!("{k}_memo_invalidations"), r.service.invalidations);
        for (p, n) in r.service.period_detections.iter().enumerate() {
            report.field(format!("{k}_memo_period_p{}", p + 1), n);
        }
    }
    report
        .field("single_worker_mps", format_args!("{single_mps:.1}"))
        .field("multi_worker_mps", format_args!("{multi_mps:.1}"))
        .field("worker_speedup", format_args!("{worker_speedup:.3}"));
    report.write("BENCH_traffic.json");

    // --- acceptance ----------------------------------------------------
    let p99 = |stack: StackKind, v: Version| {
        cells
            .iter()
            .find(|(s, ver, _)| *s == stack && *ver == v)
            .map(|(_, _, r)| r.hist.p99())
            .expect("cell present")
    };
    for stack in [StackKind::TcpIp, StackKind::Rpc] {
        let (bad, all) = (p99(stack, Version::Bad), p99(stack, Version::All));
        assert!(
            all < bad,
            "{}: ALL p99 ({:.1} µs) must beat BAD p99 ({:.1} µs) under load",
            stack_key(stack),
            us(all),
            us(bad)
        );
    }
    assert!(
        worker_speedup >= 2.0,
        "partitioned serving must scale: {WORKERS} workers gave only {worker_speedup:.2}x \
         the single-worker simulated throughput"
    );
}
