//! Online re-layout benchmark: the adaptive profile-guided loop
//! against static layouts under phase-shifting workloads.
//!
//! Every other bench measures a *fixed* layout; this one measures the
//! `traffic::adapt` loop end to end.  Two seeded phase schedules shift
//! the workload's locality structure mid-run:
//!
//! * **mix** — Zipf θ=0.9 → adversarial conflict cycle → Zipf θ=1.1;
//! * **theta** — Zipf skew rotation 0.9 → 0.0 (uniform) → 1.2.
//!
//! The ADAPTIVE run starts on the pessimal BAD layout with {BAD, STD,
//! ALL} in its candidate pool; per phase, its settle-excluded steady
//! p99 is compared against every static candidate run under the same
//! schedule.  Acceptance:
//!
//! * per phase, ADAPTIVE's steady p99 is within 5% of the best static
//!   candidate's (it re-converges after every shift);
//! * per phase, ADAPTIVE strictly beats static BAD (it never loses to
//!   the layout it started on);
//! * `stride = 0` (sampling off) reproduces the static run bit for bit;
//! * a single-candidate pool with sampling *on* also reproduces the
//!   static run bit for bit — the profiler adds zero simulated
//!   overhead, so its only cost is wall clock, which is measured and
//!   printed (JSON carries exclusively deterministic modelled values;
//!   `scripts/bench_smoke.sh` drives the `ADAPT_SMOKE=1` reduced run
//!   twice and `cmp`s the files).
//!
//! A final jit-enabled run exercises the full re-synthesis path and
//! reports the worker's plan-store traffic.
//!
//! Writes `BENCH_adapt.json` (override with `BENCH_ADAPT_PATH`).

use std::time::Instant;

use protolat_bench::harness::JsonReport;
use protolat_core::config::{StackKind, Version};
use protolat_core::sweep::{AdaptSpec, SweepEngine};
use protocols::StackOptions;
use traffic::{
    run_adaptive, run_traffic, AdaptConfig, Candidate, LocalPlanCache, Phase, PhasePlan,
    ReplayService, StreamKind, TrafficConfig,
};

const WORKERS: u32 = 4;
const SESSIONS_PER_WORKER: u32 = 512;
const RATE_MPS: u64 = 2_000;

/// The static candidate pool the adaptive loop draws from (and the
/// statics it is scored against).  BAD first: it is the initial layout.
const POOL: [Version; 3] = [Version::Bad, Version::Std, Version::All];

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// A three-phase schedule over the run: two fixed-length phases and a
/// trailing "rest of the run" phase, all sharing one settle window.
fn schedule(specs: [(StreamKind, u32); 3], phase_ns: u64, settle_ns: u64) -> PhasePlan {
    let phase = |i: usize| Phase {
        stream: specs[i].0,
        milli_theta: specs[i].1,
        duration_ns: if i == 2 { 0 } else { phase_ns },
        settle_ns,
    };
    PhasePlan::new(&[phase(0), phase(1), phase(2)])
}

fn main() {
    let smoke = std::env::var("ADAPT_SMOKE").is_ok_and(|v| v == "1");
    let out_path = std::env::var("BENCH_ADAPT_PATH").unwrap_or_else(|_| "BENCH_adapt.json".into());
    let messages_per_worker: u32 = if smoke { 4_000 } else { 20_000 };

    // Total simulated time is messages/rate; phases split it in three,
    // with the settle window sized so every phase has re-profiled,
    // swapped (sample period + relayout latency ≪ settle) and drained
    // the transition before its steady histogram opens.
    let total_ns = messages_per_worker as u64 * 1_000_000_000 / RATE_MPS;
    let phase_ns = total_ns / 3;
    let settle_ns = phase_ns * 3 / 5;

    let adapt = AdaptConfig {
        stride: 8,
        window: 48,
        min_dwell_ns: 200_000_000,
        relayout_latency_ns: 50_000_000,
        jit: false,
    };

    let base = TrafficConfig::open_loop(RATE_MPS, messages_per_worker, SESSIONS_PER_WORKER)
        .with_workers(WORKERS)
        .with_shards(8, 24)
        .with_theta(900)
        .with_seed(0x7EA5)
        .with_faults(3_000, 1_500, 3_000, 1_500);

    let schedules: [(&str, PhasePlan); 2] = [
        (
            "mix",
            schedule(
                [
                    (StreamKind::Zipf, 900),
                    (StreamKind::Conflict { slots: 8, cycle: 6 }, 900),
                    (StreamKind::Zipf, 1_100),
                ],
                phase_ns,
                settle_ns,
            ),
        ),
        (
            "theta",
            schedule(
                [(StreamKind::Zipf, 900), (StreamKind::Zipf, 0), (StreamKind::Zipf, 1_200)],
                phase_ns,
                settle_ns,
            ),
        ),
    ];

    let eng = SweepEngine::global();
    let opts = StackOptions::improved();
    let stack = StackKind::TcpIp;

    println!(
        "adaptive re-layout: tcpip, {} workers x {} msgs, {} sessions/worker, \
         3 phases x {:.1}s (settle {:.1}s), stride {} window {}, relayout {} ms{}",
        WORKERS,
        messages_per_worker,
        SESSIONS_PER_WORKER,
        phase_ns as f64 / 1e9,
        settle_ns as f64 / 1e9,
        adapt.stride,
        adapt.window,
        adapt.relayout_latency_ns / 1_000_000,
        if smoke { " [smoke]" } else { "" },
    );

    let mut report = JsonReport::new("adapt");
    report
        .field("workers", WORKERS)
        .field("messages_per_worker", messages_per_worker)
        .field("sessions_per_worker", SESSIONS_PER_WORKER)
        .field("rate_mps", RATE_MPS)
        .field("phases", 3)
        .field("phase_ms", phase_ns / 1_000_000)
        .field("settle_ms", settle_ns / 1_000_000)
        .field("stride", adapt.stride)
        .field("window", adapt.window)
        .field("min_dwell_ms", adapt.min_dwell_ns / 1_000_000)
        .field("relayout_latency_ms", adapt.relayout_latency_ns / 1_000_000)
        .field("smoke", smoke);

    let mut converged_within_5pct = true;
    let mut never_loses_to_bad = true;

    for (name, plan) in &schedules {
        let cfg = base.with_phases(*plan);
        let spec =
            AdaptSpec::new(cfg, adapt, Version::Bad).with_candidates(&POOL);
        let out = eng.adapt(stack, opts, 2, spec);
        let statics: Vec<_> =
            POOL.iter().map(|&v| (v, eng.traffic(stack, opts, 2, v, cfg))).collect();

        assert!(
            out.adapt.counters.swaps_applied >= 1,
            "{name}: the loop never moved off the BAD initial layout"
        );
        let first = out.adapt.swaps.iter().find(|s| !s.noop).expect("an applied swap");
        assert_eq!(first.from, "BAD", "{name}: first applied swap must leave the initial layout");

        println!("\nschedule {name}: {} swaps applied, {} noop, {} windows, {} samples",
            out.adapt.counters.swaps_applied,
            out.adapt.counters.swaps_noop,
            out.adapt.counters.windows,
            out.adapt.counters.samples,
        );
        for s in out.adapt.swaps.iter().filter(|s| !s.noop) {
            println!("  lane {} @ {:.2}s: {} -> {}", s.lane, s.at as f64 / 1e9, s.from, s.to);
        }
        println!(
            "  {:<7} {:>14} {:>16} {:>6} {:>14} {:>8}",
            "phase", "adaptive p99", "best static p99", "best", "BAD p99", "ratio"
        );

        report
            .field(format!("{name}_samples"), out.adapt.counters.samples)
            .field(format!("{name}_windows"), out.adapt.counters.windows)
            .field(format!("{name}_requests"), out.adapt.counters.requests)
            .field(format!("{name}_swaps_applied"), out.adapt.counters.swaps_applied)
            .field(format!("{name}_swaps_noop"), out.adapt.counters.swaps_noop)
            .field(format!("{name}_memo_invalidations"), out.report.service.invalidations);

        for p in 0..3 {
            let adaptive_p99 = out.report.phase_steady[p].p99();
            let (best_v, best_p99) = statics
                .iter()
                .map(|(v, r)| (*v, r.phase_steady[p].p99()))
                .min_by_key(|&(_, p99)| p99)
                .expect("static pool non-empty");
            let bad_p99 = statics
                .iter()
                .find(|(v, _)| *v == Version::Bad)
                .map(|(_, r)| r.phase_steady[p].p99())
                .expect("BAD in pool");
            let ratio = adaptive_p99 as f64 / best_p99 as f64;
            println!(
                "  {:<7} {:>11.1} µs {:>13.1} µs {:>6} {:>11.1} µs {:>8.4}",
                p,
                us(adaptive_p99),
                us(best_p99),
                best_v.name(),
                us(bad_p99),
                ratio,
            );
            converged_within_5pct &= ratio <= 1.05;
            never_loses_to_bad &= adaptive_p99 < bad_p99;

            report.field(
                format!("{name}_p{p}_adaptive_p99_us"),
                format_args!("{:.3}", us(adaptive_p99)),
            );
            report.field(
                format!("{name}_p{p}_best_static_p99_us"),
                format_args!("{:.3}", us(best_p99)),
            );
            report.text(format!("{name}_p{p}_best_static"), best_v.name().to_lowercase());
            report.field(format!("{name}_p{p}_bad_p99_us"), format_args!("{:.3}", us(bad_p99)));
            report.field(format!("{name}_p{p}_ratio"), format_args!("{ratio:.4}"));
        }
    }

    // --- sampling-off passthrough: stride 0 must not change a bit -----
    let cfg = base.with_phases(schedules[0].1);
    let off =
        AdaptSpec::new(cfg, AdaptConfig { stride: 0, ..adapt }, Version::Std).with_candidates(&POOL);
    let off_out = eng.adapt(stack, opts, 2, off);
    let fixed = eng.traffic(stack, opts, 2, Version::Std, cfg);
    let stride_zero_bit_identical = off_out.report == *fixed;
    assert!(
        stride_zero_bit_identical,
        "stride 0 must be a bit-identical passthrough to the static service"
    );
    println!("\nsampling-off probe: stride 0 reproduced static STD bit-for-bit");

    // --- sampling-on, single candidate: zero *simulated* overhead -----
    // The profiler samples and the worker scores, but every verdict
    // names the already-active layout, so serving is untouched.
    let solo = AdaptSpec::new(cfg, adapt, Version::Std).with_candidates(&[Version::Std]);
    let solo_out = eng.adapt(stack, opts, 2, solo);
    let single_candidate_bit_identical = solo_out.report == *fixed;
    assert!(
        single_candidate_bit_identical,
        "sampling must not perturb the simulation: single-candidate run diverged"
    );
    assert!(solo_out.adapt.counters.samples > 0, "the solo probe must actually sample");
    assert_eq!(solo_out.adapt.counters.swaps_applied, 0, "nothing to swap to");
    println!("sampling-on probe: single-candidate run reproduced static STD bit-for-bit");

    // --- wall-clock overhead of the sampling path (stdout only: wall
    // clock is not deterministic, the JSON contract is) ----------------
    let img = eng.image(stack, opts, 2, Version::Std);
    let episode = eng.tcpip(opts, 2).run.episodes.server_turn.clone();
    let program = std::sync::Arc::clone(&eng.tcpip(opts, 2).run.world.program);
    let image_config = Version::Std.image_config();
    let best_secs = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let static_secs = best_secs(&mut || {
        run_traffic(&cfg, |_| ReplayService::new(&img, &episode)).expect("must drain");
    });
    let sampled_secs = best_secs(&mut || {
        let candidates = [Candidate::new("STD", std::sync::Arc::clone(&img))];
        run_adaptive(
            &cfg,
            &adapt,
            &program,
            &episode,
            &image_config,
            &candidates,
            0,
            LocalPlanCache::default(),
        )
        .expect("must drain");
    });
    let overhead_pct = (sampled_secs / static_secs - 1.0) * 100.0;
    println!(
        "sampling wall-clock overhead: static {:.1} ms, sampled {:.1} ms ({overhead_pct:+.1}%)",
        static_secs * 1e3,
        sampled_secs * 1e3,
    );

    // --- jit re-synthesis: the full loop with plan-store traffic ------
    let jit_spec = AdaptSpec::new(cfg, AdaptConfig { jit: true, ..adapt }, Version::Bad)
        .with_candidates(&POOL);
    let jit_out = eng.adapt(stack, opts, 2, jit_spec);
    let w = &jit_out.adapt.worker;
    assert_eq!(
        w.jit_builds + w.plan_cache_hits,
        w.responses - w.fp_memo_hits,
        "every non-memoized response either hit the plan store or synthesized"
    );
    println!(
        "jit loop: {} responses ({} fp-memo hits), {} plans built, {} plan-store hits, \
         verdicts {} jit / {} static",
        w.responses, w.fp_memo_hits, w.jit_builds, w.plan_cache_hits, w.jit_wins, w.static_wins,
    );
    report
        .field("jit_responses", w.responses)
        .field("jit_fp_memo_hits", w.fp_memo_hits)
        .field("jit_builds", w.jit_builds)
        .field("jit_plan_cache_hits", w.plan_cache_hits)
        .field("jit_wins", w.jit_wins)
        .field("static_wins", w.static_wins);

    // --- acceptance ---------------------------------------------------
    report
        .field("converged_within_5pct", converged_within_5pct)
        .field("never_loses_to_bad", never_loses_to_bad)
        .field("stride_zero_bit_identical", stride_zero_bit_identical)
        .field("single_candidate_bit_identical", single_candidate_bit_identical);
    report.write(&out_path);

    assert!(
        converged_within_5pct,
        "adaptive steady p99 drifted more than 5% above the per-phase best static layout"
    );
    assert!(
        never_loses_to_bad,
        "adaptive steady p99 failed to strictly beat static BAD in some phase"
    );
}
