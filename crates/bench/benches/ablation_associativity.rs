//! Ablation: what if the i-cache were set-associative?
//!
//! §2.2.3: "inlining is frequently misused to avoid replacement misses
//! in the small associativity caches commonly found in high-performance
//! RISC architectures."  Two findings fall out:
//!
//! * associativity rescues *pathological conflict* layouts — BAD's mCPI
//!   drops sharply at 2 ways, because its deliberately aliased functions
//!   can now coexist;
//! * it does **not** rescue the ordinary layouts: the latency path is
//!   bigger than the cache and sweeps it cyclically, the worst case for
//!   LRU (a direct-mapped cache accidentally retains part of such a
//!   loop; LRU retains none of it).  Code layout attacks the part of the
//!   problem that hardware associativity cannot.

use alpha_machine::{Machine, MachineConfig};
use protolat_bench::harness::{BenchmarkId, Criterion};
use protolat_bench::TcpCtx;
use protolat_core::config::Version;
use protolat_core::timing::replay_trace;

fn machine_with_ways(ways: u64) -> Machine {
    let mut cfg = MachineConfig::dec3000_600();
    cfg.mem.icache = alpha_machine::config::CacheConfig::set_associative(8 * 1024, 32, ways);
    Machine::new(cfg)
}

fn bench(c: &mut Criterion) {
    let ctx = TcpCtx::new();
    println!(
        "i-cache associativity vs layout (TCP/IP, warm mCPI)\n\
         (associativity fixes BAD's conflicts; it cannot fix the\n\
         capacity-driven streaming of STD/ALL — layout can):"
    );
    for v in [Version::Std, Version::Bad, Version::All] {
        let img = ctx.image(v);
        let out = replay_trace(&img, &ctx.episodes.client_out);
        let inn = replay_trace(&img, &ctx.episodes.client_in);
        print!("  {:<4}", v.name());
        for ways in [1u64, 2, 4] {
            let mut m = machine_with_ways(ways);
            m.run_accumulate(&out);
            m.run_accumulate(&inn);
            m.reset_stats();
            m.run_accumulate(&out);
            m.run_accumulate(&inn);
            let r = m.report((out.len() + inn.len()) as u64);
            print!("  {ways}-way mCPI {:.2} (repl {:>3})", r.mcpi(), r.icache.replacement_misses);
        }
        println!();
    }
    println!();

    let mut g = c.benchmark_group("ablation_associativity");
    g.sample_size(10);
    let img = ctx.image(Version::Std);
    let out = replay_trace(&img, &ctx.episodes.client_out);
    for ways in [1u64, 2] {
        g.bench_with_input(BenchmarkId::new("ways", ways), &ways, |b, &w| {
            b.iter(|| {
                let mut m = machine_with_ways(w);
                m.run(&out).mcpi()
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::new("ablation_associativity");
    bench(&mut c);
    c.report();
}
