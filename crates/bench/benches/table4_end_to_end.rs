//! Tables 4 and 5: end-to-end roundtrip latency, raw and
//! controller-adjusted, for all six versions of both stacks.  The
//! benchmarked kernel is one full roundtrip timing (replay + warm
//! machine simulation) per version.

use protolat_bench::harness::Criterion;
use protolat_bench::TcpCtx;
use protolat_core::config::Version;
use protolat_core::experiments::table4;
use protolat_core::timing::time_roundtrip;

fn bench(c: &mut Criterion) {
    let t4 = table4::run();
    println!("{}", t4.render());
    println!("{}", t4.render_adjusted());

    let ctx = TcpCtx::new();
    let f_tx = ctx.world.lance_model.f_tx;
    let mut g = c.benchmark_group("table4_roundtrip_timing");
    for v in Version::all() {
        let img = ctx.image(v);
        g.bench_function(v.name(), |b| {
            b.iter(|| time_roundtrip(&ctx.episodes, &img, &img, f_tx).e2e_us)
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::new("table4_end_to_end");
    bench(&mut c);
    c.report();
}
