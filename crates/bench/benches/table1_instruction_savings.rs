//! Table 1: dynamic instruction-count savings of the Section-2 changes.
//! Prints the reproduced table, then benchmarks the end-to-end
//! measurement kernel (functional run + replay).

use protolat_bench::harness::Criterion;
use protolat_core::experiments::table1;

fn bench(c: &mut Criterion) {
    println!("{}", table1::run().render());
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("measure_all_toggles", |b| b.iter(table1::run));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("table1_instruction_savings");
    bench(&mut c);
    c.report();
}
