//! Ablation: packet-classifier cost on the path-inlined input path.
//! The paper reports PIN/ALL numbers for a zero-overhead classifier and
//! notes real classifiers cost 1-4 us per packet on this hardware.

use protolat_bench::harness::Criterion;
use protolat_core::config::Version;
use protolat_core::harness::run_tcpip;
use protolat_core::timing::time_roundtrip;
use protolat_core::world::TcpIpWorld;
use protocols::StackOptions;

fn bench(c: &mut Criterion) {
    let measure = |classifier: bool| {
        let mut opts = StackOptions::improved();
        opts.classifier_enabled = classifier;
        let run = run_tcpip(TcpIpWorld::build(opts), 2);
        let canonical = run.episodes.client_trace();
        let img = Version::All.build_tcpip(&run.world, &canonical);
        time_roundtrip(&run.episodes, &img, &img, run.world.lance_model.f_tx)
    };

    let off = measure(false);
    let on = measure(true);
    println!("classifier ablation (ALL configuration):");
    println!("  zero-overhead classifier : {:>6.1} us e2e (paper's methodology)", off.e2e_us);
    println!("  real classifier          : {:>6.1} us e2e", on.e2e_us);
    println!(
        "  per-roundtrip classifier cost: {:.1} us (paper: 1-4 us per packet, two packets per rtt)\n",
        on.e2e_us - off.e2e_us
    );

    let mut g = c.benchmark_group("ablation_classifier");
    g.sample_size(10);
    g.bench_function("with_classifier", |b| b.iter(|| measure(true).e2e_us));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("ablation_classifier");
    bench(&mut c);
    c.report();
}
