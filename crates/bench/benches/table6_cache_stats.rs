//! Table 6: trace-driven cache simulation, cold caches, per version.

use protolat_bench::harness::Criterion;
use protolat_bench::TcpCtx;
use protolat_core::config::Version;
use protolat_core::experiments::table6;
use protolat_core::timing::cold_client_stats;

fn bench(c: &mut Criterion) {
    println!("{}", table6::run().render());

    let ctx = TcpCtx::new();
    let mut g = c.benchmark_group("table6_cold_simulation");
    for v in [Version::Std, Version::All] {
        let img = ctx.image(v);
        g.bench_function(v.name(), |b| {
            b.iter(|| cold_client_stats(&ctx.episodes, &img).icache.misses)
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::new("table6_cache_stats");
    bench(&mut c);
    c.report();
}
