//! Ablation: outlining x cloning interaction — the paper's claim that
//! outlining's chief value is enabling effective cloning ("we consider
//! outlining a useful technique ... primarily as a means to greatly
//! improve cloning").

use protolat_bench::harness::Criterion;
use kcode::layout::{build_image, LayoutRequest, LayoutStrategy};
use kcode::ImageConfig;
use protolat_bench::TcpCtx;
use protolat_core::timing::time_roundtrip;

fn bench(c: &mut Criterion) {
    let ctx = TcpCtx::new();
    let f_tx = ctx.world.lance_model.f_tx;
    let cell = |outline: bool, clone: bool| {
        let strat = if clone { LayoutStrategy::Bipartite } else { LayoutStrategy::LinkOrder };
        let img = build_image(
            &ctx.world.program,
            LayoutRequest::new(
                strat,
                ImageConfig::plain("cell")
                    .with_outline(outline)
                    .with_specialization(clone),
            )
            .with_canonical(&ctx.canonical),
        );
        time_roundtrip(&ctx.episodes, &img, &img, f_tx)
    };

    println!("outline x clone ablation (TCP/IP end-to-end, us):");
    let oo = cell(false, false);
    let ox = cell(false, true);
    let xo = cell(true, false);
    let xx = cell(true, true);
    println!("                no-clone   bipartite");
    println!("  no-outline    {:>7.1}    {:>7.1}", oo.e2e_us, ox.e2e_us);
    println!("  outline       {:>7.1}    {:>7.1}", xo.e2e_us, xx.e2e_us);
    println!(
        "  cloning gain without outlining: {:.1} us; with outlining: {:.1} us\n",
        oo.e2e_us - ox.e2e_us,
        xo.e2e_us - xx.e2e_us
    );

    let mut g = c.benchmark_group("ablation_outline_clone");
    g.sample_size(10);
    g.bench_function("outline_and_clone", |b| b.iter(|| cell(true, true).e2e_us));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("ablation_outline_clone");
    bench(&mut c);
    c.report();
}
