//! Figure 2: i-cache footprint maps under outlining/cloning.

use protolat_bench::harness::Criterion;
use protolat_core::experiments::figure2;

fn bench(c: &mut Criterion) {
    println!("{}", figure2::run().render());
    let mut g = c.benchmark_group("figure2");
    g.sample_size(10);
    g.bench_function("occupancy_maps", |b| b.iter(|| figure2::run().maps.len()));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("figure2_footprint");
    bench(&mut c);
    c.report();
}
