//! Figure 2: i-cache footprint maps under outlining/cloning.

use criterion::{criterion_group, criterion_main, Criterion};
use protolat_core::experiments::figure2;

fn bench(c: &mut Criterion) {
    println!("{}", figure2::run().render());
    let mut g = c.benchmark_group("figure2");
    g.sample_size(10);
    g.bench_function("occupancy_maps", |b| b.iter(|| figure2::run().maps.len()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
