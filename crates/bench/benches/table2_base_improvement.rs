//! Table 2: original vs improved x-kernel TCP/IP.

use protolat_bench::harness::Criterion;
use protolat_core::experiments::table2;

fn bench(c: &mut Criterion) {
    println!("{}", table2::run().render());
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("original_vs_improved", |b| b.iter(table2::run));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("table2_base_improvement");
    bench(&mut c);
    c.report();
}
