//! Ablation: write-buffer depth and merging.  The 21064's 4-deep
//! write-merging buffer absorbs the write-through d-cache's store
//! stream; shrinking it exposes store stalls.

use alpha_machine::{InstRecord, Machine, MachineConfig};
use protolat_bench::harness::{BenchmarkId, Criterion};

fn store_burst(n: usize) -> Vec<InstRecord> {
    // Alternating compute/store with poor merge locality: each store
    // goes to a different cache block.
    let mut t = Vec::with_capacity(2 * n);
    for i in 0..n {
        t.push(InstRecord::alu(0x1000 + i as u64 * 4));
        t.push(InstRecord::store(0x2000 + i as u64 * 4, 0x80000 + i as u64 * 64));
    }
    t
}

fn mcpi_with_depth(depth: usize, trace: &[InstRecord]) -> f64 {
    let mut cfg = MachineConfig::dec3000_600();
    cfg.mem.write_buffer_entries = depth;
    let mut m = Machine::new(cfg);
    m.run_accumulate(trace); // warm
    m.run(trace).mcpi()
}

fn bench(c: &mut Criterion) {
    let trace = store_burst(512);
    println!("write-buffer depth vs store-burst mCPI:");
    for depth in [1usize, 2, 4, 8] {
        println!("  depth {depth}: mCPI {:.2}", mcpi_with_depth(depth, &trace));
    }
    let d1 = mcpi_with_depth(1, &trace);
    let d4 = mcpi_with_depth(4, &trace);
    assert!(d1 >= d4, "deeper buffer cannot be slower: {d1:.2} vs {d4:.2}");
    println!();

    let mut g = c.benchmark_group("ablation_write_buffer");
    for depth in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, &d| {
            b.iter(|| mcpi_with_depth(d, &trace))
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::new("ablation_write_buffer");
    bench(&mut c);
    c.report();
}
