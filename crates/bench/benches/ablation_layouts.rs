//! Ablation: the five placement strategies head to head (the §3.2
//! micro-positioning vs bipartite comparison).

use protolat_bench::harness::Criterion;
use kcode::layout::{build_image, LayoutRequest, LayoutStrategy};
use kcode::ImageConfig;
use protolat_bench::TcpCtx;
use protolat_core::timing::{cold_client_stats, time_roundtrip};

fn bench(c: &mut Criterion) {
    let ctx = TcpCtx::new();
    let f_tx = ctx.world.lance_model.f_tx;
    let strategies = [
        ("link_order", LayoutStrategy::LinkOrder),
        ("linear", LayoutStrategy::Linear),
        ("bipartite", LayoutStrategy::Bipartite),
        ("micro_position", LayoutStrategy::MicroPosition),
        ("pessimal", LayoutStrategy::Bad),
    ];
    println!("layout ablation (TCP/IP, outlining on):");
    for (name, strat) in strategies {
        let img = build_image(
            &ctx.world.program,
            LayoutRequest::new(
                strat,
                ImageConfig::plain(name).with_outline(true).with_specialization(true),
            )
            .with_canonical(&ctx.canonical),
        );
        let t = time_roundtrip(&ctx.episodes, &img, &img, f_tx);
        let cold = cold_client_stats(&ctx.episodes, &img);
        println!(
            "  {name:<15} e2e {:>6.1} us  mCPI {:.2}  i-repl {}",
            t.e2e_us,
            t.client.mcpi(),
            cold.icache.replacement_misses
        );
    }
    println!();

    let mut g = c.benchmark_group("ablation_layouts");
    g.sample_size(10);
    for (name, strat) in strategies {
        g.bench_function(name, |b| {
            b.iter(|| {
                build_image(
                    &ctx.world.program,
                    LayoutRequest::new(
                        strat,
                        ImageConfig::plain(name).with_outline(true),
                    )
                    .with_canonical(&ctx.canonical),
                )
                .code_end
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::new("ablation_layouts");
    bench(&mut c);
    c.report();
}
