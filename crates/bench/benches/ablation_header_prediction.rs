//! Ablation: BSD header prediction on bi-directional traffic.
//! §2.3: "rather than improving latency, header prediction slightly
//! worsens latency on a connection with a bi-directional data flow ...
//! with less than a dozen additional instructions executed, the
//! slow down is not very large."

use protolat_bench::harness::Criterion;
use protolat_core::config::Version;
use protolat_core::harness::run_tcpip;
use protolat_core::timing::replay_trace;
use protolat_core::world::TcpIpWorld;
use protocols::StackOptions;

fn trace_len(hdr_pred: bool) -> (usize, u64, u64) {
    let mut opts = StackOptions::improved();
    opts.header_prediction = hdr_pred;
    let run = run_tcpip(TcpIpWorld::build(opts), 2);
    let canonical = run.episodes.client_trace();
    let img = Version::Std.build_tcpip(&run.world, &canonical);
    let len = replay_trace(&img, &run.episodes.client_in).len()
        + replay_trace(&img, &run.episodes.client_out).len();
    (len, 0, 0)
}

fn bench(c: &mut Criterion) {
    let (without, _, _) = trace_len(false);
    let (with, _, _) = trace_len(true);
    println!("header prediction on bi-directional (request-response) traffic:");
    println!("  without prediction: {without} instructions/roundtrip");
    println!("  with prediction   : {with} instructions/roundtrip");
    println!(
        "  prediction overhead: {} instructions (paper: 'less than a dozen' per packet)\n",
        with as i64 - without as i64
    );
    assert!(with > without, "bi-directional traffic defeats the predictor");
    assert!(with - without < 40, "overhead must stay small");

    let mut g = c.benchmark_group("ablation_header_prediction");
    g.sample_size(10);
    g.bench_function("bidirectional_with_prediction", |b| b.iter(|| trace_len(true).0));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("ablation_header_prediction");
    bench(&mut c);
    c.report();
}
