//! Figure 1: the protocol graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use protolat_core::experiments::figure1;

fn bench(c: &mut Criterion) {
    println!("{}", figure1::run().render());
    let mut g = c.benchmark_group("figure1");
    g.bench_function("render_stacks", |b| b.iter(|| figure1::run().render().len()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
