//! Figure 1: the protocol graphs.

use protolat_bench::harness::Criterion;
use protolat_core::experiments::figure1;

fn bench(c: &mut Criterion) {
    println!("{}", figure1::run().render());
    let mut g = c.benchmark_group("figure1");
    g.bench_function("render_stacks", |b| b.iter(|| figure1::run().render().len()));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("figure1_stacks");
    bench(&mut c);
    c.report();
}
