//! Table 8: improvement comparison across configuration transitions.

use protolat_bench::harness::Criterion;
use protolat_core::experiments::table8;

fn bench(c: &mut Criterion) {
    println!("{}", table8::run().render());
    let mut g = c.benchmark_group("table8");
    g.sample_size(10);
    g.bench_function("all_transitions", |b| b.iter(table8::run));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("table8_improvement");
    bench(&mut c);
    c.report();
}
