//! Table 9: outlining effectiveness (unused fetch slots, static sizes).

use protolat_bench::harness::Criterion;
use protolat_core::experiments::table9;

fn bench(c: &mut Criterion) {
    println!("{}", table9::run().render());
    let mut g = c.benchmark_group("table9");
    g.sample_size(10);
    g.bench_function("outlining_effectiveness", |b| b.iter(table9::run));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("table9_outlining");
    bench(&mut c);
    c.report();
}
