//! Table 7: Tp / trace length / mCPI / iCPI per version.

use protolat_bench::harness::Criterion;
use protolat_bench::{RpcCtx, TcpCtx};
use protolat_core::config::Version;
use protolat_core::experiments::table7;
use protolat_core::timing::replay_trace;

fn bench(c: &mut Criterion) {
    println!("{}", table7::run().render());

    // The replay engine is the inner loop of every experiment: benchmark
    // it per stack.
    let tcp = TcpCtx::new();
    let rpc = RpcCtx::new();
    let tcp_img = tcp.image(Version::Std);
    let rpc_img = rpc.image(Version::Std);
    let mut g = c.benchmark_group("table7_replay");
    g.bench_function("tcpip_client_out", |b| {
        b.iter(|| replay_trace(&tcp_img, &tcp.episodes.client_out).len())
    });
    g.bench_function("rpc_client_out", |b| {
        b.iter(|| replay_trace(&rpc_img, &rpc.episodes.client_out).len())
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::new("table7_cpi");
    bench(&mut c);
    c.report();
}
