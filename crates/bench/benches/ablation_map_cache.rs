//! Ablation: one-entry map-cache hit rate sensitivity — the inlined
//! cache test only pays off because packet trains make successive
//! lookups hit (Mogul's locality observation, §2.2.3).

use protolat_bench::harness::{BenchmarkId, Criterion};
use xkernel::map::{LookupKind, Map};

fn bench(c: &mut Criterion) {
    // Alternate between k distinct connections: k=1 always hits the
    // one-entry cache, larger k always misses.
    println!("map one-entry cache hit rate vs interleaved connections:");
    for k in [1u64, 2, 4, 8] {
        let mut m: Map<u64, u64> = Map::new(64);
        for i in 0..k {
            m.bind(i, i, i);
        }
        let mut hits = 0;
        let n = 1000;
        for i in 0..n {
            let key = i as u64 % k;
            if m.lookup(key, &key).1 == LookupKind::CacheHit {
                hits += 1;
            }
        }
        println!("  {k} connections interleaved: {:.0}% cache hits", hits as f64 / n as f64 * 100.0);
    }
    println!();

    let mut g = c.benchmark_group("ablation_map_cache");
    for k in [1u64, 8] {
        g.bench_with_input(BenchmarkId::new("interleave", k), &k, |b, &k| {
            let mut m: Map<u64, u64> = Map::new(64);
            for i in 0..k {
                m.bind(i, i, i);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let key = i % k;
                m.lookup(key, &key).0
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::new("ablation_map_cache");
    bench(&mut c);
    c.report();
}
