//! Table 3: TCP/IP implementation comparison (demux-boundary counts).

use protolat_bench::harness::Criterion;
use protolat_core::experiments::table3;

fn bench(c: &mut Criterion) {
    println!("{}", table3::run().render());
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("segment_counts", |b| b.iter(table3::run));
    g.finish();
}

fn main() {
    let mut c = Criterion::new("table3_implementation_comparison");
    bench(&mut c);
    c.report();
}
