//! §2.2.1: the hash-table traversal optimization.  "The speedup for
//! hash-table traversals is roughly inversely proportional to the
//! fraction of non-empty buckets" — traversing a 10%-populated table is
//! about an order of magnitude faster than a full scan.

use protolat_bench::harness::{BenchmarkId, Criterion};
use xkernel::map::Map;

fn populate(n_buckets: usize, occupied: usize) -> Map<u64, u64> {
    let mut m = Map::new(n_buckets);
    let mut k = 0u64;
    let mut placed = 0;
    while placed < occupied {
        // One key per distinct bucket for a clean occupancy fraction.
        if (k % n_buckets as u64) < n_buckets as u64 {
            m.bind(k, k, k);
            placed += 1;
        }
        k += 1;
    }
    m
}

fn bench(c: &mut Criterion) {
    const N: usize = 1024;
    println!("map traversal cost vs occupancy ({N} buckets):");
    for pct in [5usize, 10, 25, 50, 100] {
        let mut m = populate(N, N * pct / 100);
        let visited = m.for_each(|_, _| {});
        println!(
            "  {pct:>3}% occupied: visits {visited:>5} buckets \
             (full scan {N}, speedup {:.1}x)",
            N as f64 / visited as f64
        );
    }
    println!();

    let mut g = c.benchmark_group("map_traversal");
    for pct in [10usize, 50, 100] {
        g.bench_with_input(
            BenchmarkId::new("nonempty_list", pct),
            &pct,
            |b, &pct| {
                let mut m = populate(N, N * pct / 100);
                m.for_each(|_, _| {}); // clean stale entries once
                b.iter(|| {
                    let mut sum = 0u64;
                    m.for_each(|_, v| sum += *v);
                    sum
                })
            },
        );
    }
    // Baseline: what a full-table scan costs at 10% occupancy.
    g.bench_function("full_scan_equivalent_10pct", |b| {
        let mut m = populate(N, N / 10);
        let mut keys: Vec<u64> = Vec::new();
        m.for_each(|k, _| keys.push(*k));
        b.iter(|| {
            // Probe every bucket index as the pre-change code did.
            let mut sum = 0u64;
            for k in 0..N as u64 {
                if let (Some(v), _) = m.lookup(k, &k) {
                    sum += v;
                }
            }
            sum
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::new("map_traversal");
    bench(&mut c);
    c.report();
}
