//! Micro-positioning: trace-driven, conflict-minimizing function
//! placement.
//!
//! The paper's tool places each cloned function at whatever address
//! minimizes predicted i-cache replacement misses, introducing gaps where
//! necessary ("function placement is controlled down to the size of an
//! individual instruction").  We reproduce the approach with a greedy
//! optimizer:
//!
//! 1. Functions are considered in first-invocation order.
//! 2. For each candidate cache offset (block granularity) the predicted
//!    conflict cost is the sum, over already-placed functions `g`, of the
//!    *interleaving weight* `w(f,g)` — how often execution alternates
//!    between `f` and `g` in the trace — times the number of i-cache sets
//!    the two would share.
//! 3. The cheapest offset wins; ties go to the lowest address (packing).
//!
//! The resulting layout has very few replacement misses but is
//! non-sequential and full of gaps — which is exactly why the paper found
//! it loses to the bipartite layout end-to-end (wasted fetch/prefetch
//! bandwidth, no sequential-stream benefit).

use std::collections::{HashMap, HashSet};

use crate::events::EventStream;
use crate::ids::FuncId;
use crate::image::Image;
use crate::layout::{activity_sequence, ordered_funcs, LayoutRequest};
use crate::program::Program;
use crate::transform::outline::hot_laid_size;

/// Compute pinned start addresses for every non-inlined function.
pub fn micro_position(
    program: &Program,
    canonical: &EventStream,
    req: &LayoutRequest<'_>,
    inlined: &HashSet<FuncId>,
) -> Vec<(FuncId, u64)> {
    let icache = req.icache_bytes;
    let block = 32u64;
    let sets = (icache / block) as usize;

    // Interleaving weights from the function-level activity sequence:
    // w(f,g) counts the occasions where g executed between two
    // consecutive activations of f — each such occasion is a potential
    // replacement miss if f and g share cache sets.
    let seq = activity_sequence(canonical);
    let mut weight: HashMap<(FuncId, FuncId), u64> = HashMap::new();
    let mut last_visit: HashMap<FuncId, usize> = HashMap::new();
    for (i, &f) in seq.iter().enumerate() {
        if let Some(&prev) = last_visit.get(&f) {
            let mut seen: HashSet<FuncId> = HashSet::new();
            for &g in &seq[prev + 1..i] {
                if g != f && seen.insert(g) {
                    let key = if f < g { (f, g) } else { (g, f) };
                    *weight.entry(key).or_insert(0) += 1;
                }
            }
        }
        last_visit.insert(f, i);
    }
    let w_of = |a: FuncId, b: FuncId| -> u64 {
        let key = if a < b { (a, b) } else { (b, a) };
        weight.get(&key).copied().unwrap_or(0)
    };

    // Hot size (in cache sets) of each function under outlining.
    let hot_sets = |f: FuncId| -> usize {
        let insts = hot_laid_size(program.function(f), req.config.outline) as u64;
        ((insts * 4).div_ceil(block) as usize).max(1)
    };

    // occupancy[set] = functions whose hot code maps onto this set.
    let mut occupancy: Vec<Vec<FuncId>> = vec![Vec::new(); sets];
    let mut out: Vec<(FuncId, u64)> = Vec::new();

    // The arena is several cache frames tall so functions can avoid each
    // other; frame chosen per function to also avoid *address* overlap.
    let arena_base = Image::CODE_BASE;
    let mut frame_fill: Vec<u64> = Vec::new(); // bytes used per frame at each offset? simpler: track intervals
    let mut used: Vec<(u64, u64)> = Vec::new(); // placed [start,end) addresses

    let order = ordered_funcs(program, canonical);
    for f in order {
        if inlined.contains(&f) {
            continue;
        }
        let nsets = hot_sets(f);
        // Evaluate every candidate set offset.
        let mut best_off = 0usize;
        let mut best_cost = u64::MAX;
        for off in 0..sets {
            let mut cost = 0u64;
            for k in 0..nsets {
                let s = (off + k) % sets;
                for g in &occupancy[s] {
                    cost += w_of(f, *g);
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best_off = off;
            }
            if best_cost == 0 {
                break; // cannot do better; lowest offset wins ties
            }
        }
        // Find a concrete non-overlapping address with that cache offset.
        let size_bytes = nsets as u64 * block + 256; // slack for slots/align
        let mut addr = arena_base + best_off as u64 * block;
        loop {
            let end = addr + size_bytes;
            if used.iter().all(|(s, e)| end <= *s || addr >= *e) {
                break;
            }
            addr += icache; // next cache frame, same offset
        }
        used.push((addr, addr + size_bytes));
        for k in 0..nsets {
            occupancy[(best_off + k) % sets].push(f);
        }
        out.push((f, addr));
        frame_fill.push(addr); // record for debugging
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::events::Recorder;
    use crate::func::{FrameSpec, FuncKind};
    use crate::image::ImageConfig;
    use crate::layout::{LayoutRequest, LayoutStrategy};
    use crate::program::ProgramBuilder;

    #[test]
    fn interleaved_functions_get_disjoint_cache_sets() {
        // Two functions that alternate heavily must not overlap in the
        // cache; a third, never-interleaved one may go anywhere.
        let mut pb = ProgramBuilder::new();
        let (fa, sa) = pb.function("fa", FuncKind::Library, FrameSpec::leaf(), |fb| {
            fb.straight("w", Body::ops(100))
        });
        let (fb_, sb) = pb.function("fb", FuncKind::Library, FrameSpec::leaf(), |fb| {
            fb.straight("w", Body::ops(100))
        });
        let (fc, (s_call_a, s_call_b)) =
            pb.function("fc", FuncKind::Path, FrameSpec::standard(), |fb| {
                let ca = fb.call("a", fa, Body::ops(1));
                let cb = fb.call("b", fb_, Body::ops(1));
                (ca, cb)
            });
        let program = pb.build();

        let mut r = Recorder::new();
        r.enter(fc);
        for _ in 0..10 {
            r.call(s_call_a, fa);
            r.seg(sa);
            r.leave();
            r.call(s_call_b, fb_);
            r.seg(sb);
            r.leave();
        }
        r.leave();
        let ev = r.take();

        let req = LayoutRequest::new(
            LayoutStrategy::MicroPosition,
            ImageConfig::plain("m").with_outline(true),
        );
        let placements =
            micro_position(&program, &ev, &req, &std::collections::HashSet::new());
        let addr: HashMap<FuncId, u64> = placements.into_iter().collect();

        let icache = 8 * 1024u64;
        let range = |f: FuncId| {
            let start = addr[&f] % icache;
            let len = (hot_laid_size(program.function(f), true) as u64 * 4).max(32);
            (start, start + len)
        };
        let (a0, a1) = range(fa);
        let (b0, b1) = range(fb_);
        // fa and fb_ alternate: they must not overlap in cache index space.
        assert!(a1 <= b0 || b1 <= a0, "fa {a0}..{a1} overlaps fb {b0}..{b1}");
    }
}
