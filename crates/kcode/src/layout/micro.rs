//! Micro-positioning: trace-driven, conflict-minimizing function
//! placement.
//!
//! The paper's tool places each cloned function at whatever address
//! minimizes predicted i-cache replacement misses, introducing gaps where
//! necessary ("function placement is controlled down to the size of an
//! individual instruction").  We reproduce the approach with a greedy
//! optimizer:
//!
//! 1. Functions are considered in first-invocation order.
//! 2. For each candidate cache offset (block granularity) the predicted
//!    conflict cost is the sum, over already-placed functions `g`, of the
//!    *interleaving weight* `w(f,g)` — how often execution alternates
//!    between `f` and `g` in the trace — times the number of i-cache sets
//!    the two would share.
//! 3. The cheapest offset wins; ties go to the lowest address (packing).
//!
//! The resulting layout has very few replacement misses but is
//! non-sequential and full of gaps — which is exactly why the paper found
//! it loses to the bipartite layout end-to-end (wasted fetch/prefetch
//! bandwidth, no sequential-stream benefit).
//!
//! # Implementation
//!
//! This is the data-oriented rewrite of the seed greedy, bit-identical to
//! [`crate::layout::reference::micro_position`] (proved by the seeded
//! equivalence suites):
//!
//! * Interleaving weights live in a dense `FuncId`-indexed triangular
//!   matrix filled in one linear pass over the activity sequence using
//!   last-visit / last-seen index stamps — no per-activation `HashSet`,
//!   no hashing on the hot path.
//! * Candidate offsets are scored differentially: `set_cost[s]` (the
//!   weight `f` pays for landing on set `s`) is built once per function
//!   from a difference array over the set ring, then the window slides so
//!   offset `o+1` costs O(1) given offset `o`.
//! * Placed address ranges are kept in a sorted [`IntervalSet`], so each
//!   candidate address is an O(log n) overlap probe instead of a linear
//!   re-scan of every placed interval.

use std::collections::HashSet;

use crate::events::EventStream;
use crate::ids::FuncId;
use crate::image::Image;
use crate::layout::{ordered_funcs, LayoutRequest};
use crate::program::Program;
use crate::transform::outline::hot_laid_size;

/// Disjoint `[start, end)` intervals sorted by start address.
///
/// Because the intervals are pairwise disjoint, their end points are
/// sorted too, so an overlap probe only has to inspect the predecessor of
/// the binary-search position.
struct IntervalSet {
    ivs: Vec<(u64, u64)>,
}

impl IntervalSet {
    fn new() -> Self {
        IntervalSet { ivs: Vec::new() }
    }

    /// Does `[start, end)` intersect any stored interval?
    fn overlaps(&self, start: u64, end: u64) -> bool {
        // First interval that starts at or past `end` cannot overlap;
        // only its predecessor — the last interval starting below `end`
        // — can reach into `[start, end)`.
        let i = self.ivs.partition_point(|iv| iv.0 < end);
        i > 0 && self.ivs[i - 1].1 > start
    }

    /// Insert `[start, end)`; the caller guarantees it is disjoint from
    /// every stored interval.
    fn insert(&mut self, start: u64, end: u64) {
        let i = self.ivs.partition_point(|iv| iv.0 < start);
        self.ivs.insert(i, (start, end));
    }
}

/// Index into the dense triangular weight matrix for the unordered pair
/// `{a, b}`, `a != b`.
#[inline]
fn tri(a: usize, b: usize) -> usize {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    hi * (hi - 1) / 2 + lo
}

/// Compute pinned start addresses for every non-inlined function.
pub fn micro_position(
    program: &Program,
    canonical: &EventStream,
    req: &LayoutRequest<'_>,
    inlined: &HashSet<FuncId>,
) -> Vec<(FuncId, u64)> {
    let icache = req.icache_bytes;
    let block = 32u64;
    let sets = (icache / block) as usize;
    let n = program.functions().len();

    // Interleaving weights from the function-level activity sequence:
    // w(f,g) counts the occasions where g executed between two
    // consecutive activations of f — each such occasion is a potential
    // replacement miss if f and g share cache sets.
    //
    // One linear pass with index stamps: `last_visit[f]` is the previous
    // activity index of f, `last_seen[g]` the most recent index of g
    // before the current position.  g appeared in the gap since f's
    // previous activation iff `last_seen[g] > last_visit[f]` — exactly
    // the per-gap distinct-function set the seed collected into a
    // HashSet, without allocating one per activation.
    let seq = canonical.activity_sequence();
    let mut weight = vec![0u64; n.saturating_sub(1) * n / 2];
    let mut last_visit = vec![usize::MAX; n];
    let mut last_seen = vec![usize::MAX; n];
    for (i, &f) in seq.iter().enumerate() {
        let fi = f.idx();
        let prev = last_visit[fi];
        if prev != usize::MAX && prev + 1 < i {
            for (g, &ls) in last_seen.iter().enumerate() {
                // ls == prev for g == fi (f's own previous activation),
                // so f never counts itself.
                if ls != usize::MAX && ls > prev {
                    weight[tri(fi, g)] += 1;
                }
            }
        }
        last_visit[fi] = i;
        last_seen[fi] = i;
    }

    // Hot size (in cache sets) of each function under outlining, computed
    // once up front and reused for both offset scoring and address sizing.
    let hot_sets: Vec<usize> = program
        .functions()
        .iter()
        .map(|func| {
            let insts = hot_laid_size(func, req.config.outline) as u64;
            ((insts * 4).div_ceil(block) as usize).max(1)
        })
        .collect();

    // Already-placed functions as (func index, start set, sets spanned).
    let mut placed: Vec<(usize, usize, usize)> = Vec::new();
    let mut out: Vec<(FuncId, u64)> = Vec::new();

    // The arena is several cache frames tall so functions can avoid each
    // other in index space; the concrete frame is then chosen so placed
    // [start,end) address intervals stay pairwise disjoint.
    let arena_base = Image::CODE_BASE;
    let mut used = IntervalSet::new();

    // Scratch reused across functions: difference array over the set
    // ring (+1 slot for non-wrapping range ends) and the per-set cost.
    let mut diff = vec![0u64; sets + 1];
    let mut set_cost = vec![0u64; sets];

    let order = ordered_funcs(program, canonical);
    for f in order {
        if inlined.contains(&f) {
            continue;
        }
        let fi = f.idx();
        let nsets = hot_sets[fi];

        // set_cost[s] = Σ w(f,g) over placed g occupying set s, built by
        // range-adding each occupant's span into a difference array.
        // Spans wider than the ring contribute w to every set `full`
        // times plus a remainder range; transient underflow in the
        // difference array is fine in wrapping u64 arithmetic because
        // every prefix sum is a true non-negative count.
        diff.fill(0);
        let mut base_cost = 0u64; // paid on every set (full ring wraps)
        for &(g, gstart, gsets) in &placed {
            let w = weight[tri(fi, g)];
            if w == 0 {
                continue;
            }
            base_cost += w * (gsets / sets) as u64;
            let rem = gsets % sets;
            let gend = gstart + rem;
            if gend <= sets {
                diff[gstart] = diff[gstart].wrapping_add(w);
                diff[gend] = diff[gend].wrapping_sub(w);
            } else {
                diff[gstart] = diff[gstart].wrapping_add(w);
                diff[sets] = diff[sets].wrapping_sub(w);
                diff[0] = diff[0].wrapping_add(w);
                diff[gend % sets] = diff[gend % sets].wrapping_sub(w);
            }
        }
        let mut run = 0u64;
        for s in 0..sets {
            run = run.wrapping_add(diff[s]);
            set_cost[s] = base_cost + run;
        }

        // Differential scan of candidate offsets: seed cost at offset 0,
        // then slide the nsets-wide window one set at a time.  Strict `<`
        // keeps the seed's lowest-offset tie-break.
        let mut cost: u64 = (0..nsets).map(|k| set_cost[k % sets]).sum();
        let mut best_off = 0usize;
        let mut best_cost = cost;
        if best_cost != 0 {
            for off in 1..sets {
                cost = cost - set_cost[off - 1] + set_cost[(off - 1 + nsets) % sets];
                if cost < best_cost {
                    best_cost = cost;
                    best_off = off;
                    if best_cost == 0 {
                        break; // cannot do better; lowest offset wins ties
                    }
                }
            }
        }

        // Find a concrete non-overlapping address with that cache offset:
        // walk the candidate frames (same index, one i-cache apart) until
        // the function's address interval is free.
        let size_bytes = nsets as u64 * block + 256; // slack for slots/align
        let mut addr = arena_base + best_off as u64 * block;
        while used.overlaps(addr, addr + size_bytes) {
            addr += icache; // next cache frame, same offset
        }
        used.insert(addr, addr + size_bytes);
        placed.push((fi, best_off, nsets));
        out.push((f, addr));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::events::Recorder;
    use crate::func::{FrameSpec, FuncKind};
    use crate::image::ImageConfig;
    use crate::layout::{LayoutRequest, LayoutStrategy};
    use crate::program::ProgramBuilder;
    use std::collections::HashMap;

    #[test]
    fn interleaved_functions_get_disjoint_cache_sets() {
        // Two functions that alternate heavily must not overlap in the
        // cache; a third, never-interleaved one may go anywhere.
        let mut pb = ProgramBuilder::new();
        let (fa, sa) = pb.function("fa", FuncKind::Library, FrameSpec::leaf(), |fb| {
            fb.straight("w", Body::ops(100))
        });
        let (fb_, sb) = pb.function("fb", FuncKind::Library, FrameSpec::leaf(), |fb| {
            fb.straight("w", Body::ops(100))
        });
        let (fc, (s_call_a, s_call_b)) =
            pb.function("fc", FuncKind::Path, FrameSpec::standard(), |fb| {
                let ca = fb.call("a", fa, Body::ops(1));
                let cb = fb.call("b", fb_, Body::ops(1));
                (ca, cb)
            });
        let program = pb.build();

        let mut r = Recorder::new();
        r.enter(fc);
        for _ in 0..10 {
            r.call(s_call_a, fa);
            r.seg(sa);
            r.leave();
            r.call(s_call_b, fb_);
            r.seg(sb);
            r.leave();
        }
        r.leave();
        let ev = r.take();

        let req = LayoutRequest::new(
            LayoutStrategy::MicroPosition,
            ImageConfig::plain("m").with_outline(true),
        );
        let placements =
            micro_position(&program, &ev, &req, &std::collections::HashSet::new());
        let addr: HashMap<FuncId, u64> = placements.into_iter().collect();

        let icache = 8 * 1024u64;
        let range = |f: FuncId| {
            let start = addr[&f] % icache;
            let len = (hot_laid_size(program.function(f), true) as u64 * 4).max(32);
            (start, start + len)
        };
        let (a0, a1) = range(fa);
        let (b0, b1) = range(fb_);
        // fa and fb_ alternate: they must not overlap in cache index space.
        assert!(a1 <= b0 || b1 <= a0, "fa {a0}..{a1} overlaps fb {b0}..{b1}");
    }

    #[test]
    fn interval_set_overlap_probe() {
        let mut s = IntervalSet::new();
        s.insert(100, 200);
        s.insert(300, 400);
        s.insert(0, 50);
        assert!(s.overlaps(150, 160));
        assert!(s.overlaps(199, 301));
        assert!(s.overlaps(40, 60));
        assert!(!s.overlaps(50, 100));
        assert!(!s.overlaps(200, 300));
        assert!(!s.overlaps(400, 1000));
    }
}
