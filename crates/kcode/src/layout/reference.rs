//! The seed greedy micro-positioner, kept verbatim as a baseline.
//!
//! [`crate::layout::micro`] rewrote micro-positioning data-oriented: a
//! dense triangular interleaving-weight matrix built in one epoch-stamped
//! pass, differential (sliding-window) offset scoring, and a sorted
//! interval set for address-overlap checks.  Those changes are required
//! to produce *bit-identical* placements — this module preserves the
//! original `HashMap`/`HashSet`-based implementation so that:
//!
//! * the equivalence suites (`tests/layout_equivalence.rs` here and
//!   `protolat-core/tests/layout_equivalence.rs` over all 12 experiment
//!   cells) can run identical inputs through both and assert exact
//!   `Vec<(FuncId, u64)>` equality, and
//! * `layout_bench` can measure the optimized placer against the seed
//!   (`BENCH_layout.json` must show ≥ 2× on the RPC stack).
//!
//! Nothing here should be edited for performance — it is the spec.

use std::collections::{HashMap, HashSet};

use crate::events::EventStream;
use crate::ids::FuncId;
use crate::image::Image;
use crate::layout::{activity_sequence, ordered_funcs, LayoutRequest};
use crate::program::Program;
use crate::transform::outline::hot_laid_size;

/// Compute pinned start addresses for every non-inlined function — the
/// seed algorithm: pairwise weights in a `HashMap` with a per-activation
/// `HashSet` gap walk, per-offset occupancy re-walks, and a linear scan
/// of placed intervals.
pub fn micro_position(
    program: &Program,
    canonical: &EventStream,
    req: &LayoutRequest<'_>,
    inlined: &HashSet<FuncId>,
) -> Vec<(FuncId, u64)> {
    let icache = req.icache_bytes;
    let block = 32u64;
    let sets = (icache / block) as usize;

    // Interleaving weights from the function-level activity sequence:
    // w(f,g) counts the occasions where g executed between two
    // consecutive activations of f.
    let seq = activity_sequence(canonical);
    let mut weight: HashMap<(FuncId, FuncId), u64> = HashMap::new();
    let mut last_visit: HashMap<FuncId, usize> = HashMap::new();
    for (i, &f) in seq.iter().enumerate() {
        if let Some(&prev) = last_visit.get(&f) {
            let mut seen: HashSet<FuncId> = HashSet::new();
            for &g in &seq[prev + 1..i] {
                if g != f && seen.insert(g) {
                    let key = if f < g { (f, g) } else { (g, f) };
                    *weight.entry(key).or_insert(0) += 1;
                }
            }
        }
        last_visit.insert(f, i);
    }
    let w_of = |a: FuncId, b: FuncId| -> u64 {
        let key = if a < b { (a, b) } else { (b, a) };
        weight.get(&key).copied().unwrap_or(0)
    };

    // Hot size (in cache sets) of each function under outlining.
    let hot_sets = |f: FuncId| -> usize {
        let insts = hot_laid_size(program.function(f), req.config.outline) as u64;
        ((insts * 4).div_ceil(block) as usize).max(1)
    };

    // occupancy[set] = functions whose hot code maps onto this set.
    let mut occupancy: Vec<Vec<FuncId>> = vec![Vec::new(); sets];
    let mut out: Vec<(FuncId, u64)> = Vec::new();

    let arena_base = Image::CODE_BASE;
    let mut used: Vec<(u64, u64)> = Vec::new(); // placed [start,end) addresses

    let order = ordered_funcs(program, canonical);
    for f in order {
        if inlined.contains(&f) {
            continue;
        }
        let nsets = hot_sets(f);
        // Evaluate every candidate set offset.
        let mut best_off = 0usize;
        let mut best_cost = u64::MAX;
        for off in 0..sets {
            let mut cost = 0u64;
            for k in 0..nsets {
                let s = (off + k) % sets;
                for g in &occupancy[s] {
                    cost += w_of(f, *g);
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best_off = off;
            }
            if best_cost == 0 {
                break; // cannot do better; lowest offset wins ties
            }
        }
        // Find a concrete non-overlapping address with that cache offset.
        let size_bytes = nsets as u64 * block + 256; // slack for slots/align
        let mut addr = arena_base + best_off as u64 * block;
        loop {
            let end = addr + size_bytes;
            if used.iter().all(|(s, e)| end <= *s || addr >= *e) {
                break;
            }
            addr += icache; // next cache frame, same offset
        }
        used.push((addr, addr + size_bytes));
        for k in 0..nsets {
            occupancy[(best_off + k) % sets].push(f);
        }
        out.push((f, addr));
    }
    out
}
