//! Layout strategies — the "cloning" technique.
//!
//! Cloning copies functions and relocates them.  What distinguishes the
//! paper's configurations is *where* the clones land:
//!
//! * [`LayoutStrategy::LinkOrder`] — no cloning: functions sit wherever
//!   the link order put them (registration order here).  This is the STD
//!   and OUT placement.
//! * [`LayoutStrategy::Linear`] — clones placed strictly in the order of
//!   first invocation ("closest-is-best" over everything).  The right
//!   choice when the whole path fits in the i-cache.
//! * [`LayoutStrategy::Bipartite`] — the paper's winner: the i-cache
//!   index space is split into a *path* partition and a *library*
//!   partition; path functions (executed once per path invocation) are
//!   laid sequentially in the path partition in first-call order, library
//!   functions (called repeatedly) in the library partition, so library
//!   code is never evicted by the once-through path stream.
//! * [`LayoutStrategy::MicroPosition`] — trace-driven greedy placement
//!   minimizing predicted conflict misses, at instruction granularity,
//!   accepting inter-function gaps.  Reduces replacement misses
//!   dramatically but scatters code (non-sequential fetch, wasted
//!   prefetch bandwidth) — the paper found it never beats bipartite
//!   end-to-end.
//! * [`LayoutStrategy::Bad`] — the pessimal clone placement: hot
//!   functions aliased onto the same i-cache sets *and* onto b-cache sets
//!   occupied by hot data.  Used to bound how bad an uncontrolled layout
//!   can get.
//!
//! Image construction is split in two so sweeps can cache the expensive
//! half: [`synthesize_layout`] does the trace-driven analysis (inline
//! group resolution, interleaving weights, partition sizing) and returns
//! a [`LayoutPlan`]; [`assemble_image`] turns a plan into a concrete
//! [`Image`] with cheap cursor arithmetic and needs no trace at all.
//! [`build_image`] composes the two for one-shot callers.

mod micro;
pub mod reference;

use std::collections::HashSet;

use crate::datalayout::DataLayout;
use crate::events::EventStream;
use crate::func::FuncKind;
use crate::ids::FuncId;
use crate::image::{
    AddrCursor, ColdPolicy, Image, ImageAssembler, ImageConfig, PinnedCursor, SeqCursor,
    WindowCursor,
};
use crate::program::Program;
use crate::transform::inline::{merged_block_order, InlinePlan, MergedGroup};

pub use micro::micro_position;

/// Placement strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutStrategy {
    LinkOrder,
    Linear,
    Bipartite,
    MicroPosition,
    Bad,
}

/// Specification of one path-inlined group (name + member functions);
/// the block order is derived from the canonical trace.
#[derive(Debug, Clone)]
pub struct InlineSpec {
    pub name: String,
    pub funcs: Vec<FuncId>,
}

/// Everything needed to build an image.
pub struct LayoutRequest<'a> {
    pub strategy: LayoutStrategy,
    pub config: ImageConfig,
    /// Reference trace: required by every strategy except `LinkOrder`.
    pub canonical: Option<&'a EventStream>,
    /// Path-inlining groups (PIN/ALL configurations).
    pub inline: Vec<InlineSpec>,
    /// i-cache size in bytes (the aliasing modulus for Bipartite/Bad).
    pub icache_bytes: u64,
    /// b-cache size in bytes (aliasing modulus for Bad).
    pub bcache_bytes: u64,
}

impl<'a> LayoutRequest<'a> {
    pub fn new(strategy: LayoutStrategy, config: ImageConfig) -> Self {
        LayoutRequest {
            strategy,
            config,
            canonical: None,
            inline: Vec::new(),
            icache_bytes: 8 * 1024,
            bcache_bytes: 2 * 1024 * 1024,
        }
    }

    pub fn with_canonical(mut self, ev: &'a EventStream) -> Self {
        self.canonical = Some(ev);
        self
    }

    pub fn with_inline(mut self, groups: Vec<InlineSpec>) -> Self {
        self.inline = groups;
        self
    }
}

/// First-invocation order of functions in a trace.
pub fn first_call_order(events: &EventStream) -> Vec<FuncId> {
    let mut seen = HashSet::new();
    let mut order = Vec::new();
    for ev in &events.events {
        if let crate::events::Ev::Enter { func, .. } = ev {
            if seen.insert(*func) {
                order.push(*func);
            }
        }
    }
    order
}

/// Function-level activity sequence: which function is executing, in
/// order, including resumptions after returns.  Drives interleaving
/// weights for micro-positioning.
pub fn activity_sequence(events: &EventStream) -> Vec<FuncId> {
    events.activity_sequence()
}

/// The synthesized half of a layout: everything a trace was needed for,
/// reduced to plain placement directives.  Plans are cheap to keep and
/// reuse — `protolat-core`'s SweepEngine memoizes one per configuration
/// and assembles images from it on demand.
#[derive(Debug, Clone)]
pub struct LayoutPlan {
    pub strategy: LayoutStrategy,
    /// Resolved path-inlined groups (block order already derived from
    /// the canonical trace).
    pub groups: Vec<MergedGroup>,
    pub directive: Directive,
}

/// Placement directive: how [`assemble_image`] lays the non-inlined
/// functions.  Every variant is position-explicit — no trace needed.
#[derive(Debug, Clone)]
pub enum Directive {
    /// LinkOrder / Linear: merged groups then functions from one
    /// sequential cursor; `gaps[i]` bytes are skipped before `order[i]`
    /// (LinkOrder's pseudo-random scatter; all zero for Linear).
    Ordered { order: Vec<FuncId>, gaps: Vec<u64> },
    /// Bipartite: the i-cache index space splits at `split`; functions
    /// flagged `true` allocate from the library window above it.
    Bipartite { order: Vec<(FuncId, bool)>, split: u64 },
    /// MicroPosition: merged groups sequential, each function pinned at
    /// its conflict-minimizing address.
    Pinned(Vec<(FuncId, u64)>),
    /// Bad: merged groups and functions pinned at pairwise-aliasing
    /// addresses (one b-cache frame apart, i-cache index 0).
    Aliased { merged_base: u64, placements: Vec<(FuncId, u64)> },
}

/// Run the trace-driven half of layout: resolve inline groups and decide
/// where everything goes.  Panics if the strategy requires a canonical
/// trace and `req.canonical` is `None`.
pub fn synthesize_layout(
    program: &std::sync::Arc<Program>,
    req: &LayoutRequest<'_>,
) -> LayoutPlan {
    // Resolve inline groups against the canonical trace.
    let plan: InlinePlan = if req.inline.is_empty() {
        InlinePlan::default()
    } else {
        let canonical = req
            .canonical
            .expect("path-inlining requires a canonical trace");
        let groups = req
            .inline
            .iter()
            .map(|spec| {
                let funcs: HashSet<FuncId> = spec.funcs.iter().copied().collect();
                MergedGroup {
                    name: spec.name.clone(),
                    funcs: funcs.clone(),
                    order: merged_block_order(program, canonical, &funcs),
                }
            })
            .collect();
        let plan = InlinePlan { groups };
        plan.check_disjoint().expect("inline groups must be disjoint");
        plan
    };
    let inlined = plan.inlined_funcs();

    let directive = match req.strategy {
        LayoutStrategy::LinkOrder => {
            // The real kernel links dozens of unrelated protocols and
            // subsystems between the functions of the measured path: in
            // link order, path functions are scattered, not packed.
            // Deterministic pseudo-random gaps model that interleaved
            // unrelated code — the source of the replacement misses that
            // cloning removes.
            let order: Vec<FuncId> = all_funcs(program)
                .into_iter()
                .filter(|f| !inlined.contains(f))
                .collect();
            let gaps = order
                .iter()
                .map(|f| (f.0 as u64).wrapping_mul(0x9E37_79B9).rotate_left(11) % 48 * 64)
                .collect();
            Directive::Ordered { order, gaps }
        }
        LayoutStrategy::Linear => {
            let canonical = req.canonical.expect("Linear layout requires a trace");
            let order: Vec<FuncId> = ordered_funcs(program, canonical)
                .into_iter()
                .filter(|f| !inlined.contains(f))
                .collect();
            let gaps = vec![0; order.len()];
            Directive::Ordered { order, gaps }
        }
        LayoutStrategy::Bipartite => {
            let canonical = req.canonical.expect("Bipartite layout requires a trace");
            let order = first_call_order(canonical);
            // Only library code with real temporal locality — called
            // more than once per path invocation — earns a slot in the
            // protected partition; single-use library functions behave
            // like path code and placing them in the library window
            // would only compress the path partition further.
            let mut call_counts: std::collections::HashMap<FuncId, u32> =
                std::collections::HashMap::new();
            for ev in &canonical.events {
                if let crate::events::Ev::Enter { func, .. } = ev {
                    *call_counts.entry(*func).or_insert(0) += 1;
                }
            }
            let is_lib = |f: FuncId| {
                program.function(f).kind == FuncKind::Library
                    && call_counts.get(&f).copied().unwrap_or(0) >= 1
            };
            let lib_bytes: u64 = order
                .iter()
                .filter(|f| is_lib(**f))
                .filter(|f| !inlined.contains(*f))
                .map(|f| {
                    crate::transform::outline::hot_laid_size(
                        program.function(*f),
                        req.config.outline,
                    ) as u64
                        * 4
                })
                .sum();
            let lib_bytes = (lib_bytes.div_ceil(512) * 512).min(req.icache_bytes / 2).max(512);
            let split = req.icache_bytes - lib_bytes;
            let order: Vec<(FuncId, bool)> = ordered_funcs(program, canonical)
                .into_iter()
                .filter(|f| !inlined.contains(f))
                .map(|f| (f, is_lib(f)))
                .collect();
            Directive::Bipartite { order, split }
        }
        LayoutStrategy::MicroPosition => {
            let canonical = req.canonical.expect("MicroPosition requires a trace");
            Directive::Pinned(micro_position(program, canonical, req, &inlined))
        }
        LayoutStrategy::Bad => {
            let canonical = req.canonical.expect("Bad layout requires a trace");
            let order = ordered_funcs(program, canonical);
            // Base chosen to alias, in the b-cache, with the data segment
            // (DATA_BASE % bcache == 0), so hot code evicts hot data.
            let bad_base = {
                let b = DataLayout::DATA_BASE + 8 * req.bcache_bytes;
                debug_assert_eq!(b % req.bcache_bytes, DataLayout::DATA_BASE % req.bcache_bytes);
                b
            };
            // Every hot function starts at i-cache index 0 of its own
            // b-cache frame: all of them alias pairwise in the i-cache
            // and in the b-cache.
            let placements = order
                .iter()
                .enumerate()
                .filter(|(_, f)| !inlined.contains(f))
                .map(|(k, f)| (*f, bad_base + (k as u64 + 1) * req.bcache_bytes))
                .collect();
            Directive::Aliased { merged_base: bad_base, placements }
        }
    };

    LayoutPlan { strategy: req.strategy, groups: plan.groups, directive }
}

/// Turn a [`LayoutPlan`] into a concrete image.  Pure cursor arithmetic:
/// `req.canonical` is never consulted, so memoized plans can be assembled
/// without re-recording a trace.
pub fn assemble_image(
    program: &std::sync::Arc<Program>,
    req: &LayoutRequest<'_>,
    plan: &LayoutPlan,
) -> Image {
    let data = DataLayout::for_program(program);
    let mut asm = ImageAssembler::new(program.clone(), req.config.clone());

    let cloned = plan.strategy != LayoutStrategy::LinkOrder;
    let policy = if !req.config.outline {
        ColdPolicy::Inline
    } else if cloned {
        ColdPolicy::FarRegion
    } else {
        ColdPolicy::EndOfFunction
    };

    match &plan.directive {
        Directive::Ordered { order, gaps } => {
            let mut cur = SeqCursor::new(Image::CODE_BASE);
            for g in &plan.groups {
                asm.place_merged(g, &mut cur);
            }
            for (f, gap) in order.iter().zip(gaps) {
                cur.next += gap;
                asm.place_function(*f, &mut cur, policy);
            }
        }
        Directive::Bipartite { order, split } => {
            let mut path_cur =
                WindowCursor::new(Image::CODE_BASE, req.icache_bytes, 0, *split);
            let mut lib_cur = WindowCursor::new(
                Image::CODE_BASE,
                req.icache_bytes,
                *split,
                req.icache_bytes,
            );
            for g in &plan.groups {
                asm.place_merged(g, &mut path_cur);
            }
            for &(f, lib) in order {
                let cur: &mut dyn AddrCursor =
                    if lib { &mut lib_cur } else { &mut path_cur };
                asm.place_function(f, cur, policy);
            }
        }
        Directive::Pinned(placements) => {
            let mut cur = SeqCursor::new(Image::CODE_BASE);
            for g in &plan.groups {
                asm.place_merged(g, &mut cur);
            }
            for &(f, addr) in placements {
                let mut pin = PinnedCursor { next: addr };
                asm.place_function(f, &mut pin, policy);
            }
        }
        Directive::Aliased { merged_base, placements } => {
            let mut merged_cur = PinnedCursor { next: *merged_base };
            for g in &plan.groups {
                asm.place_merged(g, &mut merged_cur);
            }
            for &(f, addr) in placements {
                let mut pin = PinnedCursor { next: addr };
                asm.place_function(f, &mut pin, policy);
            }
        }
    }

    asm.finish(data)
}

/// Build an image per the request (synthesize, then assemble).
pub fn build_image(program: &std::sync::Arc<Program>, req: LayoutRequest<'_>) -> Image {
    let plan = synthesize_layout(program, &req);
    assemble_image(program, &req, &plan)
}

/// Incremental re-synthesis entry point for the online adaptive loop
/// (`traffic::adapt`): run the trace-driven micro-positioner over a
/// *sampled* trace collected from live traffic and return the candidate
/// plan.  The sampled stream plays the canonical-trace role — the
/// micro-positioner only reads its activity sequence, so a stride- or
/// reservoir-sampled episode recording is a valid (cheaper) stand-in
/// for a full address trace.  Pair with [`assemble_image`] using the
/// same `config` to obtain the swappable image.
pub fn resynthesize_micro(
    program: &std::sync::Arc<Program>,
    sampled: &EventStream,
    config: &ImageConfig,
) -> LayoutPlan {
    let req = LayoutRequest::new(LayoutStrategy::MicroPosition, config.clone())
        .with_canonical(sampled);
    synthesize_layout(program, &req)
}

/// Assemble the image for a plan produced by [`resynthesize_micro`].
pub fn assemble_resynthesized(
    program: &std::sync::Arc<Program>,
    config: &ImageConfig,
    plan: &LayoutPlan,
) -> Image {
    let req = LayoutRequest::new(LayoutStrategy::MicroPosition, config.clone());
    assemble_image(program, &req, plan)
}

fn all_funcs(program: &Program) -> Vec<FuncId> {
    (0..program.functions().len() as u32).map(FuncId).collect()
}

/// First-call order followed by never-called functions in id order.
pub fn ordered_funcs(program: &Program, canonical: &EventStream) -> Vec<FuncId> {
    let mut order = first_call_order(canonical);
    let seen: HashSet<FuncId> = order.iter().copied().collect();
    for f in all_funcs(program) {
        if !seen.contains(&f) {
            order.push(f);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::events::Recorder;
    use crate::func::FrameSpec;
    use crate::ids::SegId;
    use crate::program::ProgramBuilder;
    use std::sync::Arc;

    struct Fixture {
        program: Arc<Program>,
        path_a: FuncId,
        path_b: FuncId,
        lib: FuncId,
        segs: Vec<SegId>,
    }

    fn fixture() -> Fixture {
        let mut pb = ProgramBuilder::new();
        let (lib, s_lib) = pb.function("lib", FuncKind::Library, FrameSpec::leaf(), |fb| {
            fb.straight("w", Body::ops(30))
        });
        let (path_b, s_b) = pb.function("pb", FuncKind::Path, FrameSpec::standard(), |fb| {
            fb.straight("w", Body::ops(200))
        });
        let (path_a, (s_a, s_call_lib, s_call_b)) =
            pb.function("pa", FuncKind::Path, FrameSpec::standard(), |fb| {
                let a = fb.straight("w", Body::ops(100));
                let cl = fb.call("lib", lib, Body::ops(1));
                let cb = fb.call("b", path_b, Body::ops(1));
                (a, cl, cb)
            });
        Fixture {
            program: pb.build(),
            path_a,
            path_b,
            lib,
            segs: vec![s_a, s_call_lib, s_call_b, s_lib, s_b],
        }
    }

    fn trace(fx: &Fixture) -> EventStream {
        let mut r = Recorder::new();
        r.enter(fx.path_a);
        r.seg(fx.segs[0]);
        r.call(fx.segs[1], fx.lib);
        r.seg(fx.segs[3]);
        r.leave();
        r.call(fx.segs[2], fx.path_b);
        r.seg(fx.segs[4]);
        r.leave();
        r.leave();
        r.take()
    }

    #[test]
    fn first_call_order_dedups() {
        let fx = fixture();
        let ev = trace(&fx);
        assert_eq!(first_call_order(&ev), vec![fx.path_a, fx.lib, fx.path_b]);
    }

    #[test]
    fn activity_sequence_includes_resumptions() {
        let fx = fixture();
        let ev = trace(&fx);
        let seq = activity_sequence(&ev);
        assert_eq!(
            seq,
            vec![fx.path_a, fx.lib, fx.path_a, fx.path_b, fx.path_a]
        );
    }

    #[test]
    fn linear_layout_orders_by_first_call() {
        let fx = fixture();
        let ev = trace(&fx);
        let img = build_image(
            &fx.program,
            LayoutRequest::new(LayoutStrategy::Linear, ImageConfig::plain("lin"))
                .with_canonical(&ev),
        );
        assert!(img.entry_addr(fx.path_a) < img.entry_addr(fx.lib));
        assert!(img.entry_addr(fx.lib) < img.entry_addr(fx.path_b));
    }

    #[test]
    fn bipartite_separates_library_index_range() {
        let fx = fixture();
        let ev = trace(&fx);
        let img = build_image(
            &fx.program,
            LayoutRequest::new(
                LayoutStrategy::Bipartite,
                ImageConfig::plain("clo").with_outline(true),
            )
            .with_canonical(&ev),
        );
        let icache = 8 * 1024u64;
        let lib_idx = img.entry_addr(fx.lib) % icache;
        let pa_idx = img.entry_addr(fx.path_a) % icache;
        let pb_idx = img.entry_addr(fx.path_b) % icache;
        assert!(lib_idx > pa_idx.max(pb_idx), "library sits in the high partition");
    }

    #[test]
    fn bad_layout_aliases_functions() {
        let fx = fixture();
        let ev = trace(&fx);
        let img = build_image(
            &fx.program,
            LayoutRequest::new(
                LayoutStrategy::Bad,
                ImageConfig::plain("bad").with_outline(true),
            )
            .with_canonical(&ev),
        );
        let icache = 8 * 1024u64;
        let a = img.entry_addr(fx.path_a) % icache;
        let b = img.entry_addr(fx.path_b) % icache;
        let l = img.entry_addr(fx.lib) % icache;
        assert_eq!(a, b);
        assert_eq!(a, l);
        // And they alias in the b-cache too.
        let bc = 2 * 1024 * 1024u64;
        assert_eq!(
            img.entry_addr(fx.path_a) % bc,
            img.entry_addr(fx.path_b) % bc
        );
    }

    #[test]
    fn link_order_ignores_trace() {
        let fx = fixture();
        let img = build_image(
            &fx.program,
            LayoutRequest::new(LayoutStrategy::LinkOrder, ImageConfig::plain("std")),
        );
        // Registration order: lib, path_b, path_a.
        assert!(img.entry_addr(fx.lib) < img.entry_addr(fx.path_b));
        assert!(img.entry_addr(fx.path_b) < img.entry_addr(fx.path_a));
    }

    #[test]
    fn inline_groups_merge_path_functions() {
        let fx = fixture();
        let ev = trace(&fx);
        let img = build_image(
            &fx.program,
            LayoutRequest::new(
                LayoutStrategy::Linear,
                ImageConfig::plain("pin").with_outline(true),
            )
            .with_canonical(&ev)
            .with_inline(vec![InlineSpec {
                name: "merged".into(),
                funcs: vec![fx.path_a, fx.path_b],
            }]),
        );
        assert!(img.is_inlined(fx.path_a));
        assert!(img.is_inlined(fx.path_b));
        assert!(!img.is_inlined(fx.lib));
    }

    #[test]
    fn micro_position_produces_disjoint_hot_code() {
        let fx = fixture();
        let ev = trace(&fx);
        let img = build_image(
            &fx.program,
            LayoutRequest::new(
                LayoutStrategy::MicroPosition,
                ImageConfig::plain("mic").with_outline(true),
            )
            .with_canonical(&ev),
        );
        // Entry addresses must be distinct and hot code must not overlap.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for f in [fx.path_a, fx.path_b, fx.lib] {
            let func = img.program.function(f);
            let p = img.placement(f);
            for (i, b) in func.blocks.iter().enumerate() {
                if !b.cold {
                    ranges.push((
                        p.block_addr[i],
                        p.block_addr[i] + p.block_len[i] as u64 * 4,
                    ));
                }
            }
        }
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping placements {w:?}");
        }
    }

    #[test]
    fn assemble_from_plan_equals_build_image() {
        // synthesize + assemble must reproduce build_image exactly, for
        // every strategy, and assembly must not need the trace.
        let fx = fixture();
        let ev = trace(&fx);
        let cases = [
            (LayoutStrategy::LinkOrder, false),
            (LayoutStrategy::Linear, true),
            (LayoutStrategy::Bipartite, true),
            (LayoutStrategy::MicroPosition, true),
            (LayoutStrategy::Bad, true),
        ];
        for (strategy, outline) in cases {
            let mk_req = || {
                LayoutRequest::new(
                    strategy,
                    ImageConfig::plain("eq").with_outline(outline),
                )
                .with_canonical(&ev)
            };
            let direct = build_image(&fx.program, mk_req());
            let plan = synthesize_layout(&fx.program, &mk_req());
            // Assemble from a request with no trace attached.
            let traceless = LayoutRequest::new(
                strategy,
                ImageConfig::plain("eq").with_outline(outline),
            );
            let assembled = assemble_image(&fx.program, &traceless, &plan);
            assert_eq!(
                direct.placements, assembled.placements,
                "{strategy:?}: plan assembly diverged from build_image"
            );
            assert_eq!(direct.code_end, assembled.code_end, "{strategy:?}");
        }
    }
}
