//! The program: all functions of a kernel image plus the data-region
//! registry.

use std::collections::HashMap;
use std::sync::Arc;


use crate::func::{FrameSpec, FuncKind, Function, FunctionBuilder};
use crate::ids::{FuncId, RegionId, SegId};

/// The global-offset-table pseudo region: callee-address loads reference
/// it.  Registered automatically by [`ProgramBuilder::new`].
pub const GOT_REGION: RegionId = RegionId(0);

/// A registered data region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    pub id: RegionId,
    pub name: String,
    pub size: u32,
}

/// An immutable, fully built program.
#[derive(Debug, Clone)]
pub struct Program {
    functions: Vec<Function>,
    regions: Vec<Region>,
    by_name: HashMap<String, FuncId>,
    /// seg id -> owning function, for replay lookups.
    seg_owner: HashMap<SegId, FuncId>,
}

impl Program {
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// The function owning a segment.
    pub fn owner_of(&self, seg: SegId) -> Option<FuncId> {
        self.seg_owner.get(&seg).copied()
    }

    /// Total static size of all functions, in instructions.
    pub fn total_size_insts(&self) -> u64 {
        self.functions.iter().map(|f| f.size_insts() as u64).sum()
    }
}

/// Builds a [`Program`].  Hand one to each protocol module; each module
/// registers its functions and keeps the returned ids.
pub struct ProgramBuilder {
    functions: Vec<Function>,
    regions: Vec<Region>,
    by_name: HashMap<String, FuncId>,
    next_seg: u32,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        let mut b = ProgramBuilder {
            functions: Vec::new(),
            regions: Vec::new(),
            by_name: HashMap::new(),
            next_seg: 0,
        };
        let got = b.region("__got", 4096);
        debug_assert_eq!(got, GOT_REGION);
        b
    }

    /// Register a data region of `size` bytes.
    pub fn region(&mut self, name: &str, size: u32) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region { id, name: name.to_string(), size });
        id
    }

    /// Define a function.  The closure receives a [`FunctionBuilder`]
    /// with the prologue already in place; the epilogue is appended on
    /// return.  Returns the new function's id.
    pub fn function<R>(
        &mut self,
        name: &str,
        kind: FuncKind,
        frame: FrameSpec,
        build: impl FnOnce(&mut FunctionBuilder) -> R,
    ) -> (FuncId, R) {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate function name {name:?}"
        );
        let id = FuncId(self.functions.len() as u32);
        let mut fb = FunctionBuilder::new(id, name, kind, frame, self.next_seg);
        let result = build(&mut fb);
        self.next_seg = fb.next_seg;
        let f = fb.finish();
        self.by_name.insert(name.to_string(), id);
        self.functions.push(f);
        (id, result)
    }

    pub fn build(self) -> Arc<Program> {
        let mut seg_owner = HashMap::new();
        for f in &self.functions {
            for s in &f.segments {
                seg_owner.insert(s.id, f.id);
            }
        }
        Arc::new(Program {
            functions: self.functions,
            regions: self.regions,
            by_name: self.by_name,
            seg_owner,
        })
    }
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;

    #[test]
    fn builds_program_with_lookup() {
        let mut pb = ProgramBuilder::new();
        let (f, seg) = pb.function("foo", FuncKind::Path, FrameSpec::standard(), |fb| {
            fb.straight("body", Body::ops(5))
        });
        let p = pb.build();
        assert_eq!(p.lookup("foo"), Some(f));
        assert_eq!(p.owner_of(seg), Some(f));
        assert!(p.total_size_insts() > 5);
    }

    #[test]
    fn seg_ids_unique_across_functions() {
        let mut pb = ProgramBuilder::new();
        let (_, s1) = pb.function("a", FuncKind::Path, FrameSpec::leaf(), |fb| {
            fb.straight("x", Body::ops(1))
        });
        let (_, s2) = pb.function("b", FuncKind::Path, FrameSpec::leaf(), |fb| {
            fb.straight("x", Body::ops(1))
        });
        assert_ne!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_names_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.function("dup", FuncKind::Path, FrameSpec::leaf(), |_| ());
        pb.function("dup", FuncKind::Path, FrameSpec::leaf(), |_| ());
    }

    #[test]
    fn got_region_is_zero() {
        let pb = ProgramBuilder::new();
        let p = pb.build();
        assert_eq!(p.regions()[0].name, "__got");
        assert_eq!(p.regions()[0].id, GOT_REGION);
    }
}
