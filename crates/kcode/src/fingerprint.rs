//! Streaming 64-bit trace fingerprints.
//!
//! The online re-layout loop (`traffic::adapt`) keys its synthesized
//! layouts and memoized scoring decisions by *what the workload looks
//! like*, not by object identity: two profile windows that sampled the
//! same episode shape and locality mix must map to the same key so the
//! background re-layout worker — and the SweepEngine's cross-run memo —
//! can reuse an already-synthesized plan instead of running the
//! micro-positioner again.
//!
//! The hash is FNV-1a over a canonical word encoding of each event
//! (variant tag, then ids/operands), finished with a SplitMix64-style
//! avalanche so low-entropy streams still spread across the key space.
//! It is a fingerprint, not a cryptographic hash: collisions only cost
//! a suboptimal (never incorrect) layout reuse.

use crate::events::{Ev, EventStream};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental fingerprint builder: feed words or whole events as they
/// are observed, read the digest at any point.
#[derive(Debug, Clone)]
pub struct TraceFingerprint {
    h: u64,
}

impl Default for TraceFingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFingerprint {
    pub fn new() -> Self {
        TraceFingerprint { h: FNV_OFFSET }
    }

    /// Mix one 64-bit word (byte-at-a-time FNV-1a).
    #[inline]
    pub fn push(&mut self, word: u64) {
        let mut h = self.h;
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.h = h;
    }

    /// Mix one recorded event.
    pub fn push_event(&mut self, ev: &Ev) {
        match ev {
            Ev::CallSite { seg } => {
                self.push(1);
                self.push(seg.0 as u64);
            }
            Ev::Enter { func, ops } => {
                self.push(2);
                self.push(func.0 as u64);
                for &op in ops {
                    self.push(op);
                }
            }
            Ev::Straight { seg } => {
                self.push(3);
                self.push(seg.0 as u64);
            }
            Ev::Cond { seg, taken } => {
                self.push(4);
                self.push((seg.0 as u64) << 1 | *taken as u64);
            }
            Ev::Loop { seg, iters } => {
                self.push(5);
                self.push((seg.0 as u64) << 32 | *iters as u64);
            }
            Ev::Leave => self.push(6),
        }
    }

    /// Final digest (avalanched; the builder remains usable).
    pub fn finish(&self) -> u64 {
        let mut z = self.h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Fingerprint a whole recorded stream.
pub fn fingerprint_stream(events: &EventStream) -> u64 {
    let mut fp = TraceFingerprint::new();
    for ev in &events.events {
        fp.push_event(ev);
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FuncId, SegId};

    fn stream(evs: Vec<Ev>) -> EventStream {
        EventStream { events: evs }
    }

    #[test]
    fn identical_streams_agree() {
        let a = stream(vec![
            Ev::Enter { func: FuncId(3), ops: vec![0x9000] },
            Ev::Straight { seg: SegId(7) },
            Ev::Leave,
        ]);
        assert_eq!(fingerprint_stream(&a), fingerprint_stream(&a.clone()));
    }

    #[test]
    fn every_field_matters() {
        let base = stream(vec![
            Ev::Enter { func: FuncId(1), ops: vec![] },
            Ev::Cond { seg: SegId(2), taken: true },
            Ev::Loop { seg: SegId(3), iters: 4 },
            Ev::Leave,
        ]);
        let variants = [
            stream(vec![
                Ev::Enter { func: FuncId(2), ops: vec![] },
                Ev::Cond { seg: SegId(2), taken: true },
                Ev::Loop { seg: SegId(3), iters: 4 },
                Ev::Leave,
            ]),
            stream(vec![
                Ev::Enter { func: FuncId(1), ops: vec![] },
                Ev::Cond { seg: SegId(2), taken: false },
                Ev::Loop { seg: SegId(3), iters: 4 },
                Ev::Leave,
            ]),
            stream(vec![
                Ev::Enter { func: FuncId(1), ops: vec![] },
                Ev::Cond { seg: SegId(2), taken: true },
                Ev::Loop { seg: SegId(3), iters: 5 },
                Ev::Leave,
            ]),
            stream(vec![
                Ev::Enter { func: FuncId(1), ops: vec![0xBEEF] },
                Ev::Cond { seg: SegId(2), taken: true },
                Ev::Loop { seg: SegId(3), iters: 4 },
                Ev::Leave,
            ]),
        ];
        let h0 = fingerprint_stream(&base);
        for v in &variants {
            assert_ne!(h0, fingerprint_stream(v));
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let s = stream(vec![
            Ev::CallSite { seg: SegId(9) },
            Ev::Enter { func: FuncId(0), ops: vec![1, 2] },
            Ev::Leave,
        ]);
        let mut fp = TraceFingerprint::new();
        for ev in &s.events {
            fp.push_event(ev);
        }
        assert_eq!(fp.finish(), fingerprint_stream(&s));
    }

    #[test]
    fn order_matters() {
        let a = stream(vec![Ev::Straight { seg: SegId(1) }, Ev::Straight { seg: SegId(2) }]);
        let b = stream(vec![Ev::Straight { seg: SegId(2) }, Ev::Straight { seg: SegId(1) }]);
        assert_ne!(fingerprint_stream(&a), fingerprint_stream(&b));
    }
}
