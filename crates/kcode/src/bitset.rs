//! Compact address bitmaps for fetch-utilization accounting.
//!
//! The implementation lives in [`alpha_machine::bitset`] so the machine
//! model's miss-taxonomy tracking and the replayer's fetch-utilization
//! sets share one flat-bitmap type; this module re-exports it under the
//! historical `kcode::bitset` path.

pub use alpha_machine::bitset::PcBitmap;
