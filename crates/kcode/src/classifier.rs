//! Packet classifier.
//!
//! Path-inlined input processing is only valid for packets that really
//! follow the assumed path, so a classifier must vet each incoming packet
//! (the paper cites PATHFINDER-class filters with a measured cost of
//! about 1–4 µs per packet on this hardware, and reports PIN/ALL numbers
//! for a zero-overhead classifier).
//!
//! [`ClassifierProgram`] is a real, executable filter — a conjunction of
//! masked comparisons over packet bytes — and [`Classifier`] couples it
//! with a KIR function model so its processing cost and cache footprint
//! are simulated like any other code.  The cost can also be forced to a
//! constant (including zero) to reproduce the paper's methodology.

use crate::body::Body;
use crate::events::Recorder;
use crate::func::{FrameSpec, FuncKind};
use crate::ids::{FuncId, SegId};
use crate::program::ProgramBuilder;

/// One masked-compare check against a packet byte window (up to 4 bytes,
/// big-endian).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Check {
    /// Byte offset into the packet.
    pub offset: usize,
    /// Width in bytes (1, 2 or 4).
    pub width: usize,
    /// Mask applied to the loaded value.
    pub mask: u32,
    /// Expected value after masking.
    pub value: u32,
}

impl Check {
    pub fn byte(offset: usize, value: u8) -> Self {
        Check { offset, width: 1, mask: 0xff, value: value as u32 }
    }

    pub fn half(offset: usize, value: u16) -> Self {
        Check { offset, width: 2, mask: 0xffff, value: value as u32 }
    }

    pub fn word(offset: usize, value: u32) -> Self {
        Check { offset, width: 4, mask: 0xffff_ffff, value }
    }

    pub fn masked(offset: usize, width: usize, mask: u32, value: u32) -> Self {
        assert!(matches!(width, 1 | 2 | 4));
        Check { offset, width, mask, value }
    }

    /// Evaluate against a packet.
    pub fn eval(&self, pkt: &[u8]) -> bool {
        if self.offset + self.width > pkt.len() {
            return false;
        }
        let mut v: u32 = 0;
        for i in 0..self.width {
            v = (v << 8) | pkt[self.offset + i] as u32;
        }
        v & self.mask == self.value
    }
}

/// A conjunction of checks: the packet matches iff every check passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassifierProgram {
    pub checks: Vec<Check>,
}

impl ClassifierProgram {
    pub fn new(checks: Vec<Check>) -> Self {
        ClassifierProgram { checks }
    }

    /// Does the packet match?  Also reports how many checks executed
    /// (evaluation short-circuits on the first failure).
    pub fn eval(&self, pkt: &[u8]) -> (bool, usize) {
        for (i, c) in self.checks.iter().enumerate() {
            if !c.eval(pkt) {
                return (false, i + 1);
            }
        }
        (true, self.checks.len())
    }
}

/// A classifier with a KIR cost model.
#[derive(Debug, Clone)]
pub struct Classifier {
    pub program: ClassifierProgram,
    /// The KIR function implementing the filter.
    pub func: FuncId,
    /// One conditional segment per check, in order.
    pub check_segs: Vec<SegId>,
    /// Straight preamble segment (packet fetch, state setup).
    pub preamble: SegId,
}

impl Classifier {
    /// Register the classifier's code model and return the classifier.
    ///
    /// Each check compiles to a load-mask-compare conditional predicted
    /// to pass; the fail arm (reject packet, fall back to the general
    /// path) is cold.
    pub fn register(
        pb: &mut ProgramBuilder,
        name: &str,
        program: ClassifierProgram,
    ) -> Classifier {
        let n = program.checks.len();
        let (func, (preamble, check_segs)) =
            pb.function(name, FuncKind::Library, FrameSpec::leaf(), |fb| {
                let preamble = fb.straight(
                    "preamble",
                    Body::ops(4).load_operand(0, 0, 1, 8),
                );
                let mut segs = Vec::with_capacity(n);
                for i in 0..n {
                    segs.push(fb.cond(
                        &format!("check{i}"),
                        // load + mask + compare
                        Body::ops(2).load_operand(0, (i as u32) * 4, 1, 4),
                        // reject path: restore general-path state
                        Body::ops(12),
                        crate::func::Predict::True,
                    ));
                }
                (preamble, segs)
            });
        Classifier { program, func, check_segs, preamble }
    }

    /// Run the classifier on a packet, recording its execution.
    ///
    /// `pkt_base` is the simulated address of the packet buffer (for the
    /// d-cache model).  Returns whether the packet matched.
    pub fn classify(&self, rec: &mut Recorder, pkt: &[u8], pkt_base: u64) -> bool {
        let (matched, executed) = self.program.eval(pkt);
        rec.enter_with(self.func, &[pkt_base]);
        rec.seg(self.preamble);
        for (i, seg) in self.check_segs.iter().enumerate().take(executed) {
            let failed = !matched && i + 1 == executed;
            // The cond's then-arm is the *reject* path.
            rec.cond(*seg, failed);
        }
        rec.leave();
        matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Ev;

    fn prog() -> ClassifierProgram {
        ClassifierProgram::new(vec![
            Check::half(12, 0x0800),       // EtherType IPv4
            Check::byte(23, 6),            // IP proto TCP
            Check::half(36, 5001),         // dst port
        ])
    }

    #[test]
    fn check_eval_widths() {
        let pkt = [0x12, 0x34, 0x56, 0x78];
        assert!(Check::byte(0, 0x12).eval(&pkt));
        assert!(Check::half(1, 0x3456).eval(&pkt));
        assert!(Check::word(0, 0x1234_5678).eval(&pkt));
        assert!(Check::masked(0, 2, 0xff00, 0x1200).eval(&pkt));
        assert!(!Check::byte(0, 0x13).eval(&pkt));
    }

    #[test]
    fn out_of_range_check_fails() {
        let pkt = [0u8; 4];
        assert!(!Check::word(2, 0).eval(&pkt));
    }

    #[test]
    fn conjunction_short_circuits() {
        let p = prog();
        let mut pkt = vec![0u8; 64];
        pkt[12] = 0x08;
        pkt[13] = 0x00;
        pkt[23] = 17; // UDP, fails second check
        let (ok, executed) = p.eval(&pkt);
        assert!(!ok);
        assert_eq!(executed, 2);
    }

    #[test]
    fn matching_packet_passes_all() {
        let p = prog();
        let mut pkt = vec![0u8; 64];
        pkt[12] = 0x08;
        pkt[23] = 6;
        pkt[36] = (5001u16 >> 8) as u8;
        pkt[37] = (5001 & 0xff) as u8;
        let (ok, executed) = p.eval(&pkt);
        assert!(ok);
        assert_eq!(executed, 3);
    }

    #[test]
    fn classify_records_one_cond_per_executed_check() {
        let mut pb = ProgramBuilder::new();
        let c = Classifier::register(&mut pb, "pc", prog());
        let _p = pb.build();

        let mut rec = Recorder::new();
        let mut pkt = vec![0u8; 64];
        pkt[12] = 0x08;
        pkt[23] = 6;
        pkt[36] = (5001u16 >> 8) as u8;
        pkt[37] = (5001 & 0xff) as u8;
        assert!(c.classify(&mut rec, &pkt, 0x1000));
        let ev = rec.take();
        let conds = ev.events.iter().filter(|e| matches!(e, Ev::Cond { .. })).count();
        assert_eq!(conds, 3);
        assert!(ev.check_balanced().is_ok());
        // All checks passed => every cond records taken=false (reject arm
        // not executed).
        for e in &ev.events {
            if let Ev::Cond { taken, .. } = e {
                assert!(!taken);
            }
        }
    }

    #[test]
    fn classify_failure_takes_reject_arm() {
        let mut pb = ProgramBuilder::new();
        let c = Classifier::register(&mut pb, "pc", prog());
        let _p = pb.build();
        let mut rec = Recorder::new();
        let pkt = vec![0u8; 64]; // fails first check
        assert!(!c.classify(&mut rec, &pkt, 0x1000));
        let ev = rec.take();
        let taken_conds: Vec<bool> = ev
            .events
            .iter()
            .filter_map(|e| match e {
                Ev::Cond { taken, .. } => Some(*taken),
                _ => None,
            })
            .collect();
        assert_eq!(taken_conds, vec![true], "first check rejects");
    }
}
