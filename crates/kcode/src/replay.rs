//! Trace replay: event stream × laid-out image → dynamic instruction
//! trace.
//!
//! The replayer walks a recorded [`EventStream`] and, using the block
//! addresses of an [`Image`], emits one [`InstRecord`] per dynamically
//! executed instruction.  Control-flow instructions are derived from
//! *layout adjacency*:
//!
//! * a conditional test's branch is **not taken** when the dynamically
//!   following block starts right after the branch, **taken** otherwise
//!   (this is how outlining converts jump-over-error-code into
//!   fall-through);
//! * a block whose layout reserved a jump slot emits the jump only when
//!   its dynamic successor is non-adjacent (otherwise the slot is dead
//!   padding — fetched but never executed, i.e. an i-cache gap);
//! * a transition with no slot and a non-adjacent successor emits a
//!   "virtual" jump re-using the predecessor's last instruction address
//!   (early returns and skipped never-entered loops).
//!
//! Call specialization (cloning) and path-inlining are applied here too:
//! near direct calls drop the callee-address load and skip the callee's
//! GP-reload prologue instructions; calls between two path-inlined
//! functions vanish entirely, along with the callee's prologue and
//! epilogue.

use alpha_machine::{InstClass, InstRecord};

use crate::bitset::PcBitmap;
use crate::body::SlotClass;
use crate::datalayout::DataLayout;
use crate::events::{Ev, EventStream};
use crate::func::{BlockRole, SegKind};
use crate::ids::{BlockIdx, FuncId, SegId};
use crate::image::Image;
use crate::program::GOT_REGION;

/// Receives each replayed instruction as it is produced.
///
/// The streaming mode of [`Replayer::replay_into`] hands every
/// [`InstRecord`] to a sink instead of materializing a trace vector, so
/// a simulator can consume the record while it is still in registers.
pub trait InstSink {
    fn emit(&mut self, rec: InstRecord);
}

/// Collecting sink: the classic materialized trace.
impl InstSink for Vec<InstRecord> {
    #[inline]
    fn emit(&mut self, rec: InstRecord) {
        self.push(rec);
    }
}

/// Discarding sink (replay for the side statistics only).
pub struct NullSink;

impl InstSink for NullSink {
    #[inline]
    fn emit(&mut self, _rec: InstRecord) {}
}

/// Fused replay→simulate: a machine consumes each instruction the
/// moment the replayer produces it.
impl InstSink for alpha_machine::Machine {
    #[inline]
    fn emit(&mut self, rec: InstRecord) {
        self.step(&rec);
    }
}

/// Fetch-utilization statistics gathered during replay, trace or no
/// trace.  The address sets are compact bitmaps keyed off the image's
/// code extent (see [`PcBitmap`]).
#[derive(Debug, Clone, Default)]
pub struct ReplayStats {
    /// Distinct i-cache blocks touched by instruction fetch.
    pub fetched_blocks: PcBitmap,
    /// Distinct instruction addresses executed.
    pub executed_pcs: PcBitmap,
    /// Dynamic instructions emitted.
    pub instructions: u64,
    /// Call instructions emitted.
    pub calls: u64,
    /// Taken control transfers emitted.
    pub taken: u64,
}

impl ReplayStats {
    fn for_image(image: &Image) -> Self {
        let base = Image::CODE_BASE;
        let end = image.code_end;
        ReplayStats {
            fetched_blocks: PcBitmap::for_blocks(base, end),
            executed_pcs: PcBitmap::for_pcs(base, end),
            instructions: 0,
            calls: 0,
            taken: 0,
        }
    }

    /// Fraction of instruction slots in fetched i-cache blocks that were
    /// never executed — the paper's Table 9 "i-cache unused" metric.
    pub fn unused_fraction(&self, block_bytes: u64) -> f64 {
        let slots = self.fetched_blocks.len() as f64 * (block_bytes / 4) as f64;
        if slots == 0.0 {
            return 0.0;
        }
        1.0 - self.executed_pcs.len() as f64 / slots
    }

    /// Merge another replay's sets and counters in (Table 9 combines
    /// the out- and in-path of one roundtrip).
    pub fn merge(&mut self, other: &ReplayStats) {
        self.fetched_blocks.union_with(&other.fetched_blocks);
        self.executed_pcs.union_with(&other.executed_pcs);
        self.instructions += other.instructions;
        self.calls += other.calls;
        self.taken += other.taken;
    }
}

/// The replayed trace plus fetch-utilization statistics.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutput {
    /// The dynamic instruction trace.
    pub trace: Vec<InstRecord>,
    /// Side statistics (fetched blocks, executed PCs, call/taken counts).
    pub stats: ReplayStats,
}

impl ReplayOutput {
    /// See [`ReplayStats::unused_fraction`].
    pub fn unused_fraction(&self, block_bytes: u64) -> f64 {
        self.stats.unused_fraction(block_bytes)
    }

    pub fn len(&self) -> usize {
        self.trace.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

#[derive(Debug, Clone, Copy)]
enum Pend {
    /// Conditional branch at `slot`: class decided by adjacency.
    CondBranch { slot: u64 },
    /// Optional jump at `slot`: emitted only if non-adjacent.
    MaybeJump { slot: u64 },
}

#[derive(Debug)]
struct Activation {
    func: FuncId,
    ops: Vec<u64>,
    frame_base: u64,
    /// Where the caller resumes after this activation's callees return.
    resume_end: Option<u64>,
    /// Entered through an inlined splice (no prologue/epilogue).
    spliced: bool,
    /// Entered through a real call instruction (needs a return).
    via_call: bool,
}

/// Precomputed per-block emission plan: the deterministic slot
/// expansion with the image's inline-ALU shrink already applied, plus
/// the layout facts `emit_body` needs.  Built once per [`Replayer`], so
/// the per-visit work of the original implementation — the expansion
/// `Vec` allocation, the backward ALU-drop rebuild and the activation
/// operand-vector clone — happens zero times in the replay loop.
struct BlockPlan {
    addr: u64,
    /// `addr` plus the body's *original* expanded length in bytes — the
    /// end address the terminator logic keys on (dropped slots do not
    /// move a block's successors).
    end: u64,
    blk_salt: u64,
    loop_stride: u64,
    slots: Box<[SlotClass]>,
    /// Position of the last load in `slots` (the callee-address load a
    /// specialized or spliced call drops); `usize::MAX` when none.
    last_load: usize,
}

fn build_plans(image: &Image) -> Vec<Vec<BlockPlan>> {
    image
        .program
        .functions()
        .iter()
        .enumerate()
        .map(|(fi, func)| {
            let placement = &image.placements[fi];
            // Cross-call optimization: shrink ALU work in inlined bodies.
            let shrink = if placement.inlined {
                image.config.inline_alu_shrink_permille
            } else {
                0
            };
            func.blocks
                .iter()
                .enumerate()
                .map(|(bi, block)| {
                    let mut slots = block.body.expand();
                    let drop_alu = (block.body.alu as u32 * shrink / 1000) as u16;
                    if drop_alu > 0 {
                        let mut kept = Vec::with_capacity(slots.len());
                        let mut to_drop = drop_alu;
                        for s in slots.iter().rev() {
                            if to_drop > 0 && matches!(s, SlotClass::Alu) {
                                to_drop -= 1;
                            } else {
                                kept.push(*s);
                            }
                        }
                        kept.reverse();
                        slots = kept;
                    }
                    let last_load = slots
                        .iter()
                        .rposition(|s| matches!(s, SlotClass::Load(_)))
                        .unwrap_or(usize::MAX);
                    let addr = placement.block_addr[bi];
                    BlockPlan {
                        addr,
                        end: addr + block.body.len() as u64 * 4,
                        blk_salt: (fi as u64) << 16 | bi as u64,
                        loop_stride: block.loop_stride as u64,
                        slots: slots.into_boxed_slice(),
                        last_load,
                    }
                })
                .collect()
        })
        .collect()
}

/// The precomputed, image-derived half of a [`Replayer`], split out so
/// owners of a long-lived image handle (e.g. an `Arc<Image>`-holding
/// service that hot-swaps layouts at run time) can keep the plan beside
/// the handle and build a borrowing `Replayer` per replay for free —
/// [`Replayer::with_plan`] is two pointer copies, not an O(program)
/// rebuild.
pub struct ReplayPlan {
    plans: Vec<Vec<BlockPlan>>,
    stack_base: u64,
}

impl ReplayPlan {
    /// Precompute the emission plan for `image`.
    pub fn new(image: &Image) -> Self {
        ReplayPlan { plans: build_plans(image), stack_base: image.data.stack_top() }
    }
}

enum Plans<'a> {
    Owned(Vec<Vec<BlockPlan>>),
    Borrowed(&'a [Vec<BlockPlan>]),
}

/// Replays event streams against one image.
pub struct Replayer<'a> {
    image: &'a Image,
    stack_base: u64,
    plans: Plans<'a>,
}

impl<'a> Replayer<'a> {
    pub fn new(image: &'a Image) -> Self {
        Replayer {
            image,
            stack_base: image.data.stack_top(),
            plans: Plans::Owned(build_plans(image)),
        }
    }

    /// Borrow a precomputed [`ReplayPlan`] (built from the same image)
    /// instead of rebuilding it.  Construction cost is O(1).
    pub fn with_plan(image: &'a Image, plan: &'a ReplayPlan) -> Self {
        Replayer {
            image,
            stack_base: plan.stack_base,
            plans: Plans::Borrowed(&plan.plans),
        }
    }

    /// Use a specific stack base (thread stacks from a pool).
    pub fn with_stack_base(mut self, base: u64) -> Self {
        self.stack_base = base;
        self
    }

    pub fn image(&self) -> &Image {
        self.image
    }

    fn plans(&self) -> &[Vec<BlockPlan>] {
        match &self.plans {
            Plans::Owned(p) => p,
            Plans::Borrowed(p) => p,
        }
    }

    /// Replay one event stream into a materialized instruction trace.
    pub fn replay(&self, events: &EventStream) -> Result<ReplayOutput, String> {
        let mut trace = Vec::new();
        let stats = self.replay_into(events, &mut trace)?;
        Ok(ReplayOutput { trace, stats })
    }

    /// Streaming replay: hand each instruction to `sink` as it is
    /// produced, returning only the side statistics.  This is the fused
    /// replay→simulate path — no trace vector is ever allocated.
    pub fn replay_into<S: InstSink>(
        &self,
        events: &EventStream,
        sink: &mut S,
    ) -> Result<ReplayStats, String> {
        self.run(events, sink, true)
    }

    /// [`Self::replay_into`] without the fetch-utilization side sets:
    /// returns only the dynamic instruction count.  Timing consumers
    /// that never read `fetched_blocks`/`executed_pcs` (the roundtrip
    /// timer, throughput loops, benchmarks) skip two bitmap inserts per
    /// instruction *and* the per-replay bitmap allocation, which for
    /// sparse layouts spans the whole multi-megabyte code extent.
    pub fn replay_into_lean<S: InstSink>(
        &self,
        events: &EventStream,
        sink: &mut S,
    ) -> Result<u64, String> {
        Ok(self.run(events, sink, false)?.instructions)
    }

    fn run<S: InstSink>(
        &self,
        events: &EventStream,
        sink: &mut S,
        track_sets: bool,
    ) -> Result<ReplayStats, String> {
        let stats = if track_sets {
            ReplayStats::for_image(self.image)
        } else {
            ReplayStats::default()
        };
        let mut st = ReplayState {
            image: self.image,
            plans: self.plans(),
            sink,
            stats,
            track_sets,
            stack: Vec::new(),
            sp: self.stack_base,
            prev_end: None,
            pending: None,
            pending_call: None,
        };
        for (i, ev) in events.events.iter().enumerate() {
            st.step(ev).map_err(|e| format!("event {i}: {e}"))?;
        }
        if !st.stack.is_empty() {
            return Err(format!("stream ended inside {} activations", st.stack.len()));
        }
        Ok(st.stats)
    }
}

struct ReplayState<'a, S: InstSink> {
    image: &'a Image,
    plans: &'a [Vec<BlockPlan>],
    sink: &'a mut S,
    stats: ReplayStats,
    /// Maintain the fetched-block/executed-pc bitmaps (false in the lean
    /// timing mode).
    track_sets: bool,
    stack: Vec<Activation>,
    sp: u64,
    prev_end: Option<u64>,
    pending: Option<Pend>,
    pending_call: Option<SegId>,
}

impl<'a, S: InstSink> ReplayState<'a, S> {
    #[inline]
    fn emit(&mut self, rec: InstRecord) {
        if rec.class.is_taken_control() {
            self.stats.taken += 1;
        }
        self.stats.instructions += 1;
        if self.track_sets {
            self.stats.fetched_blocks.insert(rec.pc & !31);
            self.stats.executed_pcs.insert(rec.pc);
        }
        self.sink.emit(rec);
    }

    fn cur(&mut self) -> Result<&mut Activation, String> {
        self.stack.last_mut().ok_or_else(|| "segment outside any function".to_string())
    }

    /// Resolve a data reference against the current activation's operand
    /// slots and frame base.
    fn resolve(&self, ops: &[u64], frame_base: u64, blk_salt: u64, r: crate::body::DataRef) -> u64 {
        use crate::body::DataRef::*;
        match r {
            Region(region, off) if region == GOT_REGION => {
                // Spread GOT entries: each call site loads its own slot.
                let base = self.image.data.addr(GOT_REGION, 0);
                base + ((blk_salt * 131 + off as u64) * 8) % 4096
            }
            Region(region, off) => self.image.data.addr(region, off),
            Operand(slot, off) => {
                let base = ops
                    .get(slot as usize)
                    .copied()
                    .unwrap_or(DataLayout::DATA_BASE);
                base + off as u64
            }
            Stack(off) => frame_base + off as u64,
        }
    }

    /// Handle the control transition into a block starting at `addr`.
    fn transition_to(&mut self, addr: u64) {
        if let Some(p) = self.pending.take() {
            match p {
                Pend::CondBranch { slot } => {
                    let class = if addr == slot + 4 {
                        InstClass::BranchNotTaken
                    } else {
                        InstClass::BranchTaken
                    };
                    self.emit(InstRecord::new(slot, class));
                }
                Pend::MaybeJump { slot } => {
                    if addr != slot + 4 {
                        self.emit(InstRecord::new(slot, InstClass::BranchTaken));
                    }
                }
            }
        } else if let Some(pe) = self.prev_end {
            if addr != pe {
                // Virtual jump: re-use the last slot's address.
                self.emit(InstRecord::new(pe.saturating_sub(4), InstClass::BranchTaken));
            }
        }
        self.prev_end = None;
    }

    /// Emit a block's body.  `skip` drops leading instructions (prologue
    /// specialization), `drop_got` removes the final GOT load (call
    /// specialization / inlining).  Returns the end address of the body.
    fn emit_body(&mut self, f: FuncId, b: BlockIdx, skip: u32, drop_got: bool) -> Result<u64, String> {
        self.emit_body_iter(f, b, skip, drop_got, 0)
    }

    /// Like [`Self::emit_body`], with a loop-iteration offset applied to
    /// `Operand` references (`iter * loop_stride` bytes — the loop walks
    /// its buffer).
    fn emit_body_iter(
        &mut self,
        f: FuncId,
        b: BlockIdx,
        skip: u32,
        drop_got: bool,
        iter: u32,
    ) -> Result<u64, String> {
        let image = self.image;
        let block = image.program.function(f).block(b);
        let plans = self.plans;
        let plan = &plans[f.0 as usize][b.idx()];

        // Borrow the activation's operand slots for the body walk: take
        // the vector out, restore it after the loop.  Nothing reads the
        // activation's `ops` in between (emission only touches the sink
        // and counters), so this is observationally a borrow without
        // pinning `self`.
        let (ops, frame_base) = {
            let act = self.cur()?;
            (std::mem::take(&mut act.ops), act.frame_base)
        };

        // `skip` drops leading slots of the post-GOT-drop sequence
        // (prologue specialization); the GOT drop removes the last load
        // (call specialization / inlining).  The precomputed plan already
        // applied the inline-ALU shrink; dropping the last load commutes
        // with it (the drops target disjoint slot classes and preserve
        // the order of what remains).
        let drop_pos = if drop_got { plan.last_load } else { usize::MAX };
        let iter_off = iter as u64 * plan.loop_stride;
        let skip = skip as usize;
        let mut seq = 0usize;
        let mut pc = plan.addr + skip as u64 * 4;
        for (idx, s) in plan.slots.iter().enumerate() {
            if idx == drop_pos {
                continue;
            }
            let i = seq;
            seq += 1;
            if i < skip {
                continue;
            }
            let rec = match s {
                SlotClass::Alu => InstRecord::alu(pc),
                SlotClass::Mul => InstRecord::mul(pc),
                SlotClass::Load(i) => {
                    let r = block.body.loads[*i as usize];
                    let mut a = self.resolve(&ops, frame_base, plan.blk_salt, r);
                    if matches!(r, crate::body::DataRef::Operand(..)) {
                        a += iter_off;
                    }
                    InstRecord::load(pc, a)
                }
                SlotClass::Store(i) => {
                    let r = block.body.stores[*i as usize];
                    let mut a = self.resolve(&ops, frame_base, plan.blk_salt, r);
                    if matches!(r, crate::body::DataRef::Operand(..)) {
                        a += iter_off;
                    }
                    InstRecord::store(pc, a)
                }
            };
            self.emit(rec);
            pc += 4;
        }

        self.stack
            .last_mut()
            .expect("activation verified by cur()")
            .ops = ops;
        Ok(plan.end)
    }

    /// Visit a plain (non-call, non-entry/exit) block.
    fn visit_block(&mut self, f: FuncId, b: BlockIdx) -> Result<(), String> {
        let placement = self.image.placement(f);
        let addr = placement.block_addr[b.idx()];
        self.transition_to(addr);
        let body_end = self.emit_body(f, b, 0, false)?;
        let func = self.image.program.function(f);
        match func.block(b).role {
            BlockRole::CondTest => {
                self.pending = Some(Pend::CondBranch { slot: body_end });
                self.prev_end = Some(body_end + 4);
            }
            _ => {
                if placement.has_slot[b.idx()] {
                    self.pending = Some(Pend::MaybeJump { slot: body_end });
                    self.prev_end = Some(body_end + 4);
                } else {
                    self.pending = None;
                    self.prev_end = Some(body_end);
                }
            }
        }
        Ok(())
    }

    fn seg_of(&self, seg: SegId) -> Result<(FuncId, SegKind), String> {
        let f = self
            .image
            .program
            .owner_of(seg)
            .ok_or_else(|| format!("unknown segment {seg:?}"))?;
        let kind = self
            .image
            .program
            .function(f)
            .segment(seg)
            .ok_or_else(|| format!("segment {seg:?} missing in {f:?}"))?
            .kind
            .clone();
        Ok((f, kind))
    }

    fn check_owner(&mut self, f: FuncId, seg: SegId) -> Result<(), String> {
        let cur = self.cur()?.func;
        if cur != f {
            return Err(format!(
                "segment {seg:?} belongs to {:?} but current function is {:?}",
                self.image.program.function(f).name,
                self.image.program.function(cur).name,
            ));
        }
        Ok(())
    }

    fn step(&mut self, ev: &Ev) -> Result<(), String> {
        match ev {
            Ev::CallSite { seg } => {
                if self.pending_call.is_some() {
                    return Err("CallSite while another call is pending".into());
                }
                let (f, kind) = self.seg_of(*seg)?;
                self.check_owner(f, *seg)?;
                if !matches!(kind, SegKind::Call { .. }) {
                    return Err(format!("CallSite event on non-call segment {seg:?}"));
                }
                self.pending_call = Some(*seg);
                Ok(())
            }
            Ev::Enter { func, ops } => self.enter(*func, ops),
            Ev::Leave => self.leave(),
            Ev::Straight { seg } => {
                let (f, kind) = self.seg_of(*seg)?;
                self.check_owner(f, *seg)?;
                match kind {
                    SegKind::Straight { block } => self.visit_block(f, block),
                    SegKind::Checked { tests, .. } => {
                        // Error-free execution: each hot chunk's check
                        // branch resolves by adjacency (jump over the
                        // inline error block, or fall through when it is
                        // outlined).
                        for t in tests {
                            self.visit_block(f, t)?;
                        }
                        Ok(())
                    }
                    other => Err(format!("Straight event on {other:?}")),
                }
            }
            Ev::Cond { seg, taken } => {
                let (f, kind) = self.seg_of(*seg)?;
                self.check_owner(f, *seg)?;
                match kind {
                    SegKind::Cond { test, then_blk, else_blk, .. } => {
                        self.visit_block(f, test)?;
                        if *taken {
                            self.visit_block(f, then_blk)?;
                        } else if let Some(e) = else_blk {
                            self.visit_block(f, e)?;
                        }
                        Ok(())
                    }
                    other => Err(format!("Cond event on {other:?}")),
                }
            }
            Ev::Loop { seg, iters } => {
                let (f, kind) = self.seg_of(*seg)?;
                self.check_owner(f, *seg)?;
                match kind {
                    SegKind::Loop { body, .. } => self.run_loop(f, body, *iters),
                    other => Err(format!("Loop event on {other:?}")),
                }
            }
        }
    }

    fn run_loop(&mut self, f: FuncId, body: BlockIdx, iters: u32) -> Result<(), String> {
        if iters == 0 {
            // Never entered: the guard jumped over the body.  Leave
            // prev_end untouched; the next block's adjacency check emits
            // the jump if the body physically intervenes.
            return Ok(());
        }
        let placement = self.image.placement(f);
        let addr = placement.block_addr[body.idx()];
        for i in 0..iters {
            self.transition_to(addr);
            let body_end = self.emit_body_iter(f, body, 0, false, i)?;
            let slot = body_end;
            if i + 1 < iters {
                // Backward branch taken.
                self.emit(InstRecord::new(slot, InstClass::BranchTaken));
                self.prev_end = None; // next iteration re-enters at addr
                self.pending = None;
            } else {
                // Final iteration: branch falls through.
                self.emit(InstRecord::new(slot, InstClass::BranchNotTaken));
                self.pending = None;
                self.prev_end = Some(slot + 4);
            }
        }
        Ok(())
    }

    fn enter(&mut self, func: FuncId, ops: &[u64]) -> Result<(), String> {
        let callee_inlined = self.image.placement(func).inlined;
        let frame_bytes = self.image.program.function(func).frame.frame_bytes as u64;

        // Process the pending call site, if any.
        let mut skip = 0u32;
        let mut via_splice = false;
        let mut via_real_call = false;
        if let Some(seg) = self.pending_call.take() {
            let (cf, kind) = self.seg_of(seg)?;
            let (site, static_callee) = match kind {
                SegKind::Call { site, callee } => (site, callee),
                _ => unreachable!("validated at CallSite"),
            };
            if let Some(sc) = static_callee {
                if sc != func {
                    return Err(format!(
                        "call site {seg:?} statically targets {sc:?} but entered {func:?}"
                    ));
                }
            }
            let caller_inlined = self.image.placement(cf).inlined;
            let placement = self.image.placement(cf);
            let site_addr = placement.block_addr[site.idx()];
            let site_len = placement.block_len[site.idx()];
            let site_end = site_addr + site_len as u64 * 4;

            let caller_group = self.image.placement(cf).group;
            let callee_group = self.image.placement(func).group;
            let splice = caller_inlined
                && callee_inlined
                && static_callee.is_some()
                && caller_group == callee_group;
            let near = !splice
                && self.image.config.specialize_calls
                && static_callee.is_some()
                && !callee_inlined
                && {
                    let entry = self.image.entry_addr(func);
                    site_addr.abs_diff(entry) <= self.image.config.near_call_bytes
                };

            self.transition_to(site_addr);
            let body_end = self.emit_body(cf, site, 0, splice || near)?;

            if splice {
                // No call instruction: execution flows into the spliced
                // callee code.
                via_splice = true;
                self.prev_end = Some(body_end);
                self.pending = None;
                if let Some(act) = self.stack.last_mut() {
                    act.resume_end = Some(body_end);
                }
            } else {
                via_real_call = true;
                let slot = body_end;
                self.stats.calls += 1;
                self.emit(InstRecord::call(slot));
                self.prev_end = None;
                self.pending = None;
                if let Some(act) = self.stack.last_mut() {
                    act.resume_end = Some(site_end);
                }
                if near {
                    skip = self.image.program.function(func).frame.skippable as u32;
                }
            }
        } else {
            // Root entry (interrupt, episode start): control arrives from
            // nowhere we model.
            self.pending = None;
            self.prev_end = None;
        }

        self.sp -= frame_bytes;
        self.stack.push(Activation {
            func,
            ops: ops.to_vec(),
            frame_base: self.sp,
            resume_end: None,
            spliced: callee_inlined,
            via_call: via_real_call && callee_inlined,
        });

        if callee_inlined {
            // Spliced functions have no prologue.  If entered through a
            // real call (not a splice), execution starts at the first
            // mainline block; adjacency flows from there.
            if !via_splice {
                self.prev_end = None;
            }
        } else {
            // Visit the entry block (prologue) with optional skip.
            let f = func;
            let func_ref = self.image.program.function(f);
            let entry = func_ref.entry;
            let placement = self.image.placement(f);
            let addr = placement.block_addr[entry.idx()];
            self.transition_to(addr);
            let body_end = self.emit_body(f, entry, skip, false)?;
            self.pending = None;
            self.prev_end = Some(body_end + placement.has_slot[entry.idx()] as u64 * 4);
        }
        Ok(())
    }

    fn leave(&mut self) -> Result<(), String> {
        let act = self.stack.pop().ok_or("Leave with empty stack")?;
        let frame_bytes = self.image.program.function(act.func).frame.frame_bytes as u64;
        self.sp += frame_bytes;

        if act.spliced {
            if act.via_call {
                // A real call into a merged function: its tail contains a
                // return instruction.
                let at = self.prev_end.unwrap_or(0).saturating_sub(4);
                self.emit(InstRecord::ret(at));
                self.pending = None;
                self.prev_end = None;
            }
            // Otherwise: spliced — control flows onward inside the
            // merged code; adjacency resumes from wherever we are.
        } else {
            // Visit the exit block: restores + ret.
            let f = act.func;
            let func = self.image.program.function(f);
            let exit = func.exit;
            let placement = self.image.placement(f);
            let addr = placement.block_addr[exit.idx()];
            // Push a temporary view so emit_body can resolve stack refs.
            self.stack.push(act);
            self.transition_to(addr);
            let body_end = self.emit_body(f, exit, 0, false)?;
            self.stack.pop();
            self.emit(InstRecord::ret(body_end));
            self.pending = None;
            self.prev_end = None;
        }

        // Control returns to the caller's resume point.
        if let Some(parent) = self.stack.last_mut() {
            if let Some(re) = parent.resume_end.take() {
                self.prev_end = Some(re);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::events::Recorder;
    use crate::func::{FrameSpec, FuncKind, Predict};
    use crate::image::ImageConfig;
    use crate::layout::{build_image, InlineSpec, LayoutRequest, LayoutStrategy};
    use crate::program::{Program, ProgramBuilder};
    use std::sync::Arc;

    struct Fx {
        program: Arc<Program>,
        leaf: FuncId,
        main: FuncId,
        s_leaf: SegId,
        s_work: SegId,
        s_err: SegId,
        s_call: SegId,
        s_loop: SegId,
    }

    fn fx() -> Fx {
        let mut pb = ProgramBuilder::new();
        let (leaf, s_leaf) = pb.function("leaf", FuncKind::Library, FrameSpec::leaf(), |fb| {
            fb.straight("w", Body::ops(6))
        });
        let (main, (s_work, s_err, s_call, s_loop)) =
            pb.function("main", FuncKind::Path, FrameSpec::standard(), |fb| {
                let w = fb.straight("work", Body::ops(12));
                let e = fb.cond("err", Body::ops(2), Body::ops(24), Predict::False);
                let c = fb.call("leafcall", leaf, Body::ops(2));
                let l = fb.loop_seg("copy", Body::ops(8), false);
                (w, e, c, l)
            });
        Fx { program: pb.build(), leaf, main, s_leaf, s_work, s_err, s_call, s_loop }
    }

    fn record(fxx: &Fx, err: bool, loops: u32) -> EventStream {
        let mut r = Recorder::new();
        r.enter_with(fxx.main, &[0x9000]);
        r.seg(fxx.s_work);
        r.cond(fxx.s_err, err);
        r.call(fxx.s_call, fxx.leaf);
        r.seg(fxx.s_leaf);
        r.leave();
        r.loop_iters(fxx.s_loop, loops);
        r.leave();
        r.take()
    }

    fn img(fxx: &Fx, outline: bool) -> Image {
        let ev = record(fxx, false, 0);
        build_image(
            &fxx.program,
            LayoutRequest::new(
                LayoutStrategy::Linear,
                ImageConfig::plain(if outline { "out" } else { "std" })
                    .with_outline(outline),
            )
            .with_canonical(&ev),
        )
    }

    fn count(out: &ReplayOutput, class: InstClass) -> usize {
        out.trace.iter().filter(|r| r.class == class).count()
    }

    #[test]
    fn happy_path_replays_and_balances() {
        let fxx = fx();
        let image = img(&fxx, false);
        let out = Replayer::new(&image).replay(&record(&fxx, false, 0)).unwrap();
        assert!(!out.is_empty());
        assert_eq!(count(&out, InstClass::Call), 1);
        assert_eq!(count(&out, InstClass::Ret), 2, "leaf + main returns");
    }

    #[test]
    fn outlining_removes_taken_branch_on_good_path() {
        let fxx = fx();
        let plain = img(&fxx, false);
        let outlined = img(&fxx, true);
        let ev = record(&fxx, false, 0);
        let t_plain = Replayer::new(&plain).replay(&ev).unwrap();
        let t_out = Replayer::new(&outlined).replay(&ev).unwrap();
        assert!(
            t_out.stats.taken < t_plain.stats.taken,
            "outlined taken={} plain taken={}",
            t_out.stats.taken,
            t_plain.stats.taken
        );
    }

    #[test]
    fn error_path_costs_more_when_outlined() {
        let fxx = fx();
        let outlined = img(&fxx, true);
        let good = Replayer::new(&outlined).replay(&record(&fxx, false, 0)).unwrap();
        let bad = Replayer::new(&outlined).replay(&record(&fxx, true, 0)).unwrap();
        // Error path executes the cold block plus extra jumps.
        assert!(bad.len() > good.len() + 20);
        assert!(bad.stats.taken > good.stats.taken);
    }

    #[test]
    fn loop_iterations_emit_backward_branches() {
        let fxx = fx();
        let image = img(&fxx, false);
        let out0 = Replayer::new(&image).replay(&record(&fxx, false, 0)).unwrap();
        let out3 = Replayer::new(&image).replay(&record(&fxx, false, 3)).unwrap();
        // 3 iterations: 8 body instructions each + 3 loop branches
        // (2 taken + 1 not-taken), plus possibly one adjacency jump
        // difference around the skipped/entered loop body.
        let delta = out3.len() as i64 - out0.len() as i64;
        assert!((26..=28).contains(&delta), "delta={delta}");
        assert_eq!(
            out3.trace.iter().filter(|r| r.class == InstClass::BranchNotTaken).count()
                - out0.trace.iter().filter(|r| r.class == InstClass::BranchNotTaken).count(),
            1
        );
    }

    #[test]
    fn stack_refs_resolve_below_stack_top() {
        let fxx = fx();
        let image = img(&fxx, false);
        let out = Replayer::new(&image).replay(&record(&fxx, false, 0)).unwrap();
        let stack_top = image.data.stack_top();
        let stack_accesses: Vec<u64> = out
            .trace
            .iter()
            .filter_map(|r| r.mem.map(|(_, a)| a))
            .filter(|a| *a > stack_top - 0x10000 && *a < stack_top)
            .collect();
        assert!(!stack_accesses.is_empty(), "prologue saves must hit the stack");
    }

    #[test]
    fn operands_resolve_to_supplied_bases() {
        let fxx = fx();
        // Add a function using operand refs.
        let mut pb = ProgramBuilder::new();
        let (f, s) = pb.function("op", FuncKind::Path, FrameSpec::leaf(), |fb| {
            fb.straight(
                "w",
                Body::ops(2).load_operand(0, 16, 2, 8).store_operand(0, 64, 1, 8),
            )
        });
        let program = pb.build();
        let mut r = Recorder::new();
        r.enter_with(f, &[0xBEEF00]);
        r.seg(s);
        r.leave();
        let ev = r.take();
        let image = build_image(
            &program,
            LayoutRequest::new(LayoutStrategy::LinkOrder, ImageConfig::plain("t")),
        );
        let out = Replayer::new(&image).replay(&ev).unwrap();
        let addrs: Vec<u64> =
            out.trace.iter().filter_map(|r| r.mem.map(|(_, a)| a)).collect();
        assert!(addrs.contains(&0xBEEF10));
        assert!(addrs.contains(&0xBEEF18));
        assert!(addrs.contains(&0xBEEF40));
        let _ = fxx;
    }

    #[test]
    fn inlined_group_elides_call_overhead() {
        let mut pb = ProgramBuilder::new();
        let (inner, s_inner) = pb.function("inner", FuncKind::Path, FrameSpec::standard(), |fb| {
            fb.straight("w", Body::ops(10))
        });
        let (outer, (s_o, s_c)) =
            pb.function("outer", FuncKind::Path, FrameSpec::standard(), |fb| {
                let o = fb.straight("w", Body::ops(10));
                let c = fb.call("c", inner, Body::ops(2));
                (o, c)
            });
        let program = pb.build();
        let rec = || {
            let mut r = Recorder::new();
            r.enter(outer);
            r.seg(s_o);
            r.call(s_c, inner);
            r.seg(s_inner);
            r.leave();
            r.leave();
            r.take()
        };
        let ev = rec();

        let plain = build_image(
            &program,
            LayoutRequest::new(
                LayoutStrategy::Linear,
                ImageConfig::plain("plain").with_outline(true),
            )
            .with_canonical(&ev),
        );
        let pinned = build_image(
            &program,
            LayoutRequest::new(
                LayoutStrategy::Linear,
                ImageConfig::plain("pin").with_outline(true),
            )
            .with_canonical(&ev)
            .with_inline(vec![InlineSpec {
                name: "merged".into(),
                funcs: vec![outer, inner],
            }]),
        );
        let t_plain = Replayer::new(&plain).replay(&ev).unwrap();
        let t_pin = Replayer::new(&pinned).replay(&ev).unwrap();
        assert_eq!(count(&t_pin, InstClass::Call), 0, "no call instructions left");
        assert_eq!(count(&t_pin, InstClass::Ret), 0);
        assert!(
            t_pin.len() + 10 < t_plain.len(),
            "inlining must remove call overhead: {} vs {}",
            t_pin.len(),
            t_plain.len()
        );
        assert!(t_pin.stats.taken < t_plain.stats.taken);
    }

    #[test]
    fn call_specialization_skips_prologue_and_got_load() {
        let fxx = fx();
        let ev = record(&fxx, false, 0);
        let base = build_image(
            &fxx.program,
            LayoutRequest::new(
                LayoutStrategy::Linear,
                ImageConfig::plain("clo").with_outline(true),
            )
            .with_canonical(&ev),
        );
        let spec = build_image(
            &fxx.program,
            LayoutRequest::new(
                LayoutStrategy::Linear,
                ImageConfig::plain("clo+spec")
                    .with_outline(true)
                    .with_specialization(true),
            )
            .with_canonical(&ev),
        );
        let t_base = Replayer::new(&base).replay(&ev).unwrap();
        let t_spec = Replayer::new(&spec).replay(&ev).unwrap();
        // GOT load + skippable prologue instruction(s) removed.
        assert!(
            t_spec.len() + 2 <= t_base.len(),
            "specialized {} vs base {}",
            t_spec.len(),
            t_base.len()
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let fxx = fx();
        let image = img(&fxx, true);
        let ev = record(&fxx, false, 2);
        let a = Replayer::new(&image).replay(&ev).unwrap();
        let b = Replayer::new(&image).replay(&ev).unwrap();
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn borrowed_plan_matches_owned_plan() {
        let fxx = fx();
        let image = img(&fxx, true);
        let ev = record(&fxx, false, 3);
        let plan = ReplayPlan::new(&image);
        let owned = Replayer::new(&image).replay(&ev).unwrap();
        let borrowed = Replayer::with_plan(&image, &plan).replay(&ev).unwrap();
        assert_eq!(owned.trace, borrowed.trace);
        assert_eq!(owned.stats.instructions, borrowed.stats.instructions);
    }

    #[test]
    fn unused_fraction_drops_with_outlining() {
        let fxx = fx();
        let ev = record(&fxx, false, 0);
        let plain = img(&fxx, false);
        let outlined = img(&fxx, true);
        let u_plain =
            Replayer::new(&plain).replay(&ev).unwrap().unused_fraction(32);
        let u_out =
            Replayer::new(&outlined).replay(&ev).unwrap().unused_fraction(32);
        assert!(
            u_out < u_plain,
            "outlined unused {u_out:.3} must be below plain {u_plain:.3}"
        );
    }

    #[test]
    fn mismatched_segment_owner_is_an_error() {
        let fxx = fx();
        let image = img(&fxx, false);
        let mut r = Recorder::new();
        r.enter(fxx.main);
        r.seg(fxx.s_leaf); // belongs to leaf, not main
        r.leave();
        let err = Replayer::new(&image).replay(&r.take());
        assert!(err.is_err());
    }

    #[test]
    fn unbalanced_stream_is_an_error() {
        let fxx = fx();
        let image = img(&fxx, false);
        let mut r = Recorder::new();
        r.enter(fxx.main);
        let err = Replayer::new(&image).replay(r.stream());
        assert!(err.is_err());
    }
}
