//! # kcode — the paper's primary contribution
//!
//! A machine-level *code model* over which the three latency-reducing
//! techniques of Mosberger et al. operate:
//!
//! * [`transform::outline`] — **outlining**: statically-predicted-cold
//!   basic blocks (error handling, initialization, unrolled loops) are
//!   moved out of the mainline to the end of the function (or to a shared
//!   cold region), removing taken jumps and i-cache gaps from the hot
//!   path.
//! * [`layout`] — **cloning**: functions are copied and relocated;
//!   layout strategies include the *bipartite* scheme (path vs. library
//!   partition, each closest-is-best), trace-driven *micro-positioning*,
//!   plain *linear* allocation, the uncontrolled *link-order* placement of
//!   a standard kernel, and the deliberately pessimal *BAD* placement.
//!   Cloning also enables call specialization (PC-relative calls that skip
//!   the address load and part of the callee prologue).
//! * [`transform::inline`] — **path-inlining**: the entire
//!   latency-critical path is merged into one function per direction,
//!   eliding call overhead, prologues and epilogues, and enabling
//!   cross-call optimization.  The inbound side requires a
//!   [`classifier`]-checked path assumption.
//!
//! ## How protocol code uses this crate
//!
//! Protocol implementations (the `protocols` crate) are ordinary Rust.
//! Each protocol *function* additionally carries a KIR model — a list of
//! basic blocks built with [`func::FunctionBuilder`] describing the
//! machine code a C compiler would have produced for it: instruction
//! counts, loads/stores with symbolic data references, conditional
//! segments with static branch predictions, call sites.
//!
//! At run time the protocol code drives a [`events::Recorder`]: it records
//! which functions were entered and which way each conditional went.  The
//! resulting event stream is *replayed* ([`replay`]) against an [`Image`]
//! — the program laid out in memory by some layout strategy — producing
//! the dynamic instruction trace that the `alpha-machine` crate times.
//! Replaying one functional run against several images is exactly the
//! paper's trace-driven methodology.
//!
//! Control-flow instructions are derived from *layout adjacency*: if the
//! next executed block physically follows the current one, control falls
//! through; otherwise a taken jump is emitted.  This single rule yields
//! the paper's outlining effects (the common path of an annotated
//! if-statement stops jumping over its error block once the error block
//! is outlined) without a separate CFG interpreter.

pub mod bitset;
pub mod body;
pub mod classifier;
pub mod datalayout;
pub mod events;
pub mod fingerprint;
pub mod func;
pub mod ids;
pub mod image;
pub mod layout;
pub mod program;
pub mod replay;
pub mod symbolize;
pub mod transform;

pub use body::{Body, DataRef};
pub use classifier::{Classifier, ClassifierProgram};
pub use datalayout::DataLayout;
pub use events::{Ev, EventStream, Recorder};
pub use fingerprint::{fingerprint_stream, TraceFingerprint};
pub use func::{
    Block, BlockRole, FuncKind, Function, FunctionBuilder, Predict, SegKind, Segment,
};
pub use ids::{BlockIdx, FuncId, RegionId, SegId};
pub use image::{Image, ImageConfig};
pub use layout::{Directive, LayoutPlan, LayoutStrategy};
pub use program::{Program, ProgramBuilder};
pub use bitset::PcBitmap;
pub use replay::{InstSink, NullSink, ReplayOutput, ReplayPlan, ReplayStats, Replayer};
pub use symbolize::Symbolizer;
