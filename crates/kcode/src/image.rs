//! Laid-out kernel images.
//!
//! An [`Image`] assigns every block of every function a concrete address.
//! Layout strategies ([`crate::layout`]) drive an [`ImageAssembler`],
//! which handles the per-function mechanics: hot blocks in source order,
//! cold blocks either inline (no outlining), at the end of the function
//! (outlining), or in a far cold region (cloned layouts, which share
//! outlined code with the originals), and merged path-inlined groups laid
//! in canonical execution order.

use std::collections::HashMap;
use std::sync::Arc;

use crate::datalayout::DataLayout;

use crate::ids::{BlockIdx, FuncId};
use crate::program::Program;
use crate::transform::inline::InlinePlan;
use crate::transform::outline::{needs_term_slot, split_hot_cold};

/// Behavioural knobs of an image, beyond pure placement.
#[derive(Debug, Clone)]
pub struct ImageConfig {
    /// Human-readable strategy name for reports.
    pub name: String,
    /// Outlining applied (cold blocks moved out of the mainline).
    pub outline: bool,
    /// Cloning-enabled call specialization: calls whose target is within
    /// `near_call_bytes` use a PC-relative branch (dropping the
    /// callee-address load) and skip the callee's GP-reload prologue
    /// instructions.
    pub specialize_calls: bool,
    /// Distance threshold for a "near" call.
    pub near_call_bytes: u64,
    /// Per-mille of ALU instructions removed from path-inlined function
    /// bodies by cross-call optimization (the compiler context the paper
    /// credits inlining with).
    pub inline_alu_shrink_permille: u32,
}

impl ImageConfig {
    pub fn plain(name: &str) -> Self {
        ImageConfig {
            name: name.to_string(),
            outline: false,
            specialize_calls: false,
            near_call_bytes: 1 << 20,
            inline_alu_shrink_permille: 160,
        }
    }

    pub fn with_outline(mut self, on: bool) -> Self {
        self.outline = on;
        self
    }

    pub fn with_specialization(mut self, on: bool) -> Self {
        self.specialize_calls = on;
        self
    }
}

/// Where each block of one function lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionPlacement {
    /// Address of each block, indexed by `BlockIdx`.
    pub block_addr: Vec<u64>,
    /// Laid length of each block in instructions (body + terminator slot
    /// if present).
    pub block_len: Vec<u32>,
    /// Whether a terminator slot exists at the end of each block.
    pub has_slot: Vec<bool>,
    /// True if this function is spliced into a merged path-inlined group:
    /// its entry/exit blocks are elided and calls into it vanish.
    pub inlined: bool,
    /// Index of the merged group this function belongs to (calls between
    /// functions of the *same* group are spliced away; calls across
    /// groups remain real calls).
    pub group: Option<usize>,
}

impl FunctionPlacement {
    /// End address (just past the last instruction) of a block.
    pub fn block_end(&self, b: BlockIdx) -> u64 {
        self.block_addr[b.idx()] + self.block_len[b.idx()] as u64 * 4
    }
}

/// A fully laid-out program.
#[derive(Debug, Clone)]
pub struct Image {
    pub program: Arc<Program>,
    pub config: ImageConfig,
    pub placements: Vec<FunctionPlacement>,
    pub data: DataLayout,
    pub inline_plan: InlinePlan,
    /// First address past the last placed code byte.
    pub code_end: u64,
}

impl Image {
    /// Base address of kernel code.
    pub const CODE_BASE: u64 = 0x0010_0000;

    pub fn placement(&self, f: FuncId) -> &FunctionPlacement {
        &self.placements[f.0 as usize]
    }

    pub fn block_addr(&self, f: FuncId, b: BlockIdx) -> u64 {
        self.placement(f).block_addr[b.idx()]
    }

    /// The call-target address of a function (its entry block).
    pub fn entry_addr(&self, f: FuncId) -> u64 {
        let func = self.program.function(f);
        self.block_addr(f, func.entry)
    }

    /// Is `f` path-inlined in this image?
    pub fn is_inlined(&self, f: FuncId) -> bool {
        self.placement(f).inlined
    }

    /// Total laid size of the hot mainline of `funcs`, in instructions —
    /// the paper's Table 9 "Size" metric.
    pub fn mainline_size_insts(&self, funcs: &[FuncId]) -> u64 {
        funcs
            .iter()
            .map(|f| {
                let func = self.program.function(*f);
                let p = self.placement(*f);
                (0..func.blocks.len())
                    .filter(|i| !func.blocks[*i].cold)
                    .map(|i| p.block_len[i] as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

/// Address allocation abstraction: layout strategies provide cursors.
pub trait AddrCursor {
    /// Allocate `bytes` and return the start address.
    fn alloc(&mut self, bytes: u64) -> u64;
    /// Next address that would be returned (for distance estimation).
    fn peek(&self) -> u64;
}

/// Plain bump allocator.
#[derive(Debug, Clone)]
pub struct SeqCursor {
    pub next: u64,
}

impl SeqCursor {
    pub fn new(base: u64) -> Self {
        SeqCursor { next: base }
    }
}

impl AddrCursor for SeqCursor {
    fn alloc(&mut self, bytes: u64) -> u64 {
        let a = self.next;
        self.next += bytes;
        a
    }

    fn peek(&self) -> u64 {
        self.next
    }
}

/// A cursor constrained to a window of i-cache set indices — the
/// bipartite layout's partitions.  Addresses advance sequentially but
/// skip over the forbidden index range, leaving those cache sets to the
/// other partition.
#[derive(Debug, Clone)]
pub struct WindowCursor {
    next: u64,
    /// Cache size (the aliasing modulus).
    cache_bytes: u64,
    /// Allowed index window: `[lo, hi)` in bytes within the cache.
    lo: u64,
    hi: u64,
}

impl WindowCursor {
    pub fn new(base: u64, cache_bytes: u64, lo: u64, hi: u64) -> Self {
        assert!(lo < hi && hi <= cache_bytes);
        let mut c = WindowCursor { next: base, cache_bytes, lo, hi };
        c.skip_to_window();
        c
    }

    fn in_window(&self, addr: u64) -> bool {
        let idx = addr % self.cache_bytes;
        idx >= self.lo && idx < self.hi
    }

    fn skip_to_window(&mut self) {
        if !self.in_window(self.next) {
            let idx = self.next % self.cache_bytes;
            let base = self.next - idx;
            self.next = if idx < self.lo {
                base + self.lo
            } else {
                base + self.cache_bytes + self.lo
            };
        }
    }
}

impl AddrCursor for WindowCursor {
    fn alloc(&mut self, bytes: u64) -> u64 {
        self.skip_to_window();
        // If the block would spill past the window, start it at the next
        // window instance (a placement gap).
        let end_idx = (self.next % self.cache_bytes) + bytes;
        if end_idx > self.hi && bytes <= self.hi - self.lo {
            let idx = self.next % self.cache_bytes;
            self.next += self.cache_bytes - idx + self.lo;
        }
        let a = self.next;
        self.next += bytes;
        a
    }

    fn peek(&self) -> u64 {
        self.next
    }
}

/// Explicit per-function placement (micro-positioning, BAD): the strategy
/// dictates each function's start address.
#[derive(Debug, Clone)]
pub struct PinnedCursor {
    pub next: u64,
}

impl AddrCursor for PinnedCursor {
    fn alloc(&mut self, bytes: u64) -> u64 {
        let a = self.next;
        self.next += bytes;
        a
    }

    fn peek(&self) -> u64 {
        self.next
    }
}

/// Where a function's cold blocks go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdPolicy {
    /// No outlining: cold blocks stay inline in source order.
    Inline,
    /// Outlined to the end of the same function.
    EndOfFunction,
    /// Outlined to a shared far cold region.
    FarRegion,
}

/// Builds placements function by function.
pub struct ImageAssembler {
    program: Arc<Program>,
    config: ImageConfig,
    placements: Vec<Option<FunctionPlacement>>,
    cold_cursor: SeqCursor,
    inline_plan: InlinePlan,
    max_addr: u64,
}

impl ImageAssembler {
    /// Cold-region base: far from hot code, still cached normally.
    pub const COLD_BASE: u64 = 0x0040_0000;

    pub fn new(program: Arc<Program>, config: ImageConfig) -> Self {
        let n = program.functions().len();
        ImageAssembler {
            program,
            config,
            placements: vec![None; n],
            cold_cursor: SeqCursor::new(Self::COLD_BASE),
            inline_plan: InlinePlan::default(),
            max_addr: Image::CODE_BASE,
        }
    }

    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    pub fn config(&self) -> &ImageConfig {
        &self.config
    }

    fn note_addr(&mut self, end: u64) {
        self.max_addr = self.max_addr.max(end);
    }

    /// Place one function.  `cold` selects where its cold blocks go.
    pub fn place_function(
        &mut self,
        f: FuncId,
        cursor: &mut dyn AddrCursor,
        cold: ColdPolicy,
    ) {
        let func = self.program.function(f).clone();
        let outline = !matches!(cold, ColdPolicy::Inline);
        let ool = |b: BlockIdx| outline && func.block(b).cold;

        let nblocks = func.blocks.len();
        let mut block_addr = vec![0u64; nblocks];
        let mut block_len = vec![0u32; nblocks];
        let mut has_slot = vec![false; nblocks];

        let order: Vec<BlockIdx> = match cold {
            ColdPolicy::Inline => (0..nblocks).map(|i| BlockIdx(i as u32)).collect(),
            _ => {
                let (hot, cold_blocks) = split_hot_cold(&func);
                match cold {
                    ColdPolicy::EndOfFunction => {
                        hot.into_iter().chain(cold_blocks).collect()
                    }
                    _ => hot, // FarRegion: cold handled below
                }
            }
        };

        for b in order {
            let slot = needs_term_slot(&func, b, &ool);
            let len = func.block(b).body.len() + slot as u32;
            let addr = cursor.alloc(len as u64 * 4);
            block_addr[b.idx()] = addr;
            block_len[b.idx()] = len;
            has_slot[b.idx()] = slot;
            self.note_addr(addr + len as u64 * 4);
        }

        if matches!(cold, ColdPolicy::FarRegion) {
            let (_, cold_blocks) = split_hot_cold(&func);
            for b in cold_blocks {
                let slot = needs_term_slot(&func, b, &ool);
                let len = func.block(b).body.len() + slot as u32;
                let addr = self.cold_cursor.alloc(len as u64 * 4);
                block_addr[b.idx()] = addr;
                block_len[b.idx()] = len;
                has_slot[b.idx()] = slot;
                self.note_addr(addr + len as u64 * 4);
            }
        }

        self.placements[f.0 as usize] = Some(FunctionPlacement {
            block_addr,
            block_len,
            has_slot,
            inlined: false,
            group: None,
        });
    }

    /// Place a merged path-inlined group: `order` blocks contiguously,
    /// entries/exits of member functions pinned to the first/last
    /// mainline address (they are never executed), cold blocks of member
    /// functions to the cold region.
    pub fn place_merged(
        &mut self,
        group: &crate::transform::inline::MergedGroup,
        cursor: &mut dyn AddrCursor,
    ) {
        use std::collections::HashSet;
        let funcs: HashSet<FuncId> = group.funcs.iter().copied().collect();

        // Initialize placements for all member functions.
        let mut work: HashMap<FuncId, FunctionPlacement> = HashMap::new();
        for &f in &funcs {
            let func = self.program.function(f);
            let n = func.blocks.len();
            work.insert(
                f,
                FunctionPlacement {
                    block_addr: vec![0; n],
                    block_len: vec![0; n],
                    has_slot: vec![false; n],
                    inlined: true,
                    group: Some(self.inline_plan.groups.len()),
                },
            );
        }

        // Mainline blocks in canonical order.  Inside a merged region,
        // outlining is always in effect (cold is far) and call sites to
        // fellow members lose their call instruction slot.
        for &(f, b) in &group.order {
            let func = self.program.function(f).clone();
            let ool = |bb: BlockIdx| func.block(bb).cold;
            let mut slot = needs_term_slot(&func, b, &ool);
            let mut body_len = func.block(b).body.len();
            if let crate::func::BlockRole::CallSite = func.block(b).role {
                // Direct call to a fellow member: the call instruction
                // and the address load are gone.
                if let Some(crate::func::SegKind::Call { callee: Some(c), .. }) = func
                    .segments
                    .iter()
                    .find_map(|s| match &s.kind {
                        k @ crate::func::SegKind::Call { site, .. } if *site == b => {
                            Some(k.clone())
                        }
                        _ => None,
                    })
                {
                    if funcs.contains(&c) {
                        slot = false;
                        body_len = body_len.saturating_sub(1); // GOT load gone
                    }
                }
            }
            let len = body_len + slot as u32;
            let addr = cursor.alloc(len as u64 * 4);
            let p = work.get_mut(&f).unwrap();
            p.block_addr[b.idx()] = addr;
            p.block_len[b.idx()] = len;
            p.has_slot[b.idx()] = slot;
            self.note_addr(addr + len as u64 * 4);
        }

        // Cold blocks and entry/exit blocks: cold region (entries/exits
        // are elided at replay but keep a defined address).  Members are
        // visited in id order so the cold-cursor allocations — and thus
        // the image — never depend on HashSet iteration order.
        let mut members: Vec<FuncId> = funcs.iter().copied().collect();
        members.sort_unstable();
        for f in members {
            let func = self.program.function(f).clone();
            let ool = |bb: BlockIdx| func.block(bb).cold;
            for (i, blk) in func.blocks.iter().enumerate() {
                let b = BlockIdx(i as u32);
                let placed = work[&f].block_len[i] != 0;
                if placed {
                    continue;
                }
                let slot = needs_term_slot(&func, b, &ool);
                let len = blk.body.len() + slot as u32;
                let addr = self.cold_cursor.alloc(len as u64 * 4);
                let p = work.get_mut(&f).unwrap();
                p.block_addr[b.idx()] = addr;
                p.block_len[b.idx()] = len;
                p.has_slot[b.idx()] = slot;
                self.note_addr(addr + len as u64 * 4);
            }
        }

        for (f, p) in work {
            self.placements[f.0 as usize] = Some(p);
        }
        self.inline_plan.groups.push(group.clone());
    }

    /// Finish: any unplaced function is appended sequentially after the
    /// highest address used (they exist but are off-path).
    pub fn finish(mut self, data: DataLayout) -> Image {
        let mut tail = SeqCursor::new((self.max_addr + 63) & !63);
        let unplaced: Vec<FuncId> = self
            .placements
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| FuncId(i as u32))
            .collect();
        let cold = if self.config.outline {
            ColdPolicy::EndOfFunction
        } else {
            ColdPolicy::Inline
        };
        for f in unplaced {
            self.place_function(f, &mut tail, cold);
        }
        let code_end = self.max_addr.max(tail.peek()).max(self.cold_cursor.peek());
        Image {
            program: self.program,
            config: self.config,
            placements: self.placements.into_iter().map(Option::unwrap).collect(),
            data,
            inline_plan: self.inline_plan,
            code_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::func::{FrameSpec, FuncKind, Predict};
    use crate::program::ProgramBuilder;

    fn small_program() -> (Arc<Program>, FuncId, FuncId) {
        let mut pb = ProgramBuilder::new();
        let (fa, _) = pb.function("a", FuncKind::Path, FrameSpec::standard(), |fb| {
            fb.straight("w", Body::ops(20));
            fb.cond("err", Body::ops(2), Body::ops(40), Predict::False);
        });
        let (fb_, _) = pb.function("b", FuncKind::Library, FrameSpec::leaf(), |fb| {
            fb.straight("w", Body::ops(10));
        });
        (pb.build(), fa, fb_)
    }

    #[test]
    fn sequential_placement_is_contiguous_without_outline() {
        let (p, fa, _) = small_program();
        let mut asm = ImageAssembler::new(p.clone(), ImageConfig::plain("t"));
        let mut cur = SeqCursor::new(Image::CODE_BASE);
        asm.place_function(fa, &mut cur, ColdPolicy::Inline);
        let img = asm.finish(DataLayout::for_program(&p));
        let pl = img.placement(fa);
        // Source-order blocks are contiguous.
        for i in 0..pl.block_addr.len() - 1 {
            assert_eq!(
                pl.block_addr[i] + pl.block_len[i] as u64 * 4,
                pl.block_addr[i + 1],
                "block {i} not adjacent"
            );
        }
    }

    #[test]
    fn outlining_moves_cold_after_hot() {
        let (p, fa, _) = small_program();
        let mut asm = ImageAssembler::new(
            p.clone(),
            ImageConfig::plain("t").with_outline(true),
        );
        let mut cur = SeqCursor::new(Image::CODE_BASE);
        asm.place_function(fa, &mut cur, ColdPolicy::EndOfFunction);
        let img = asm.finish(DataLayout::for_program(&p));
        let func = img.program.function(fa);
        let pl = img.placement(fa);
        let cold_addr: Vec<u64> = func
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.cold)
            .map(|(i, _)| pl.block_addr[i])
            .collect();
        let max_hot = func
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.cold)
            .map(|(i, _)| pl.block_addr[i])
            .max()
            .unwrap();
        for c in cold_addr {
            assert!(c > max_hot, "cold block before hot end");
        }
    }

    #[test]
    fn far_region_sends_cold_away() {
        let (p, fa, _) = small_program();
        let mut asm = ImageAssembler::new(
            p.clone(),
            ImageConfig::plain("t").with_outline(true),
        );
        let mut cur = SeqCursor::new(Image::CODE_BASE);
        asm.place_function(fa, &mut cur, ColdPolicy::FarRegion);
        let img = asm.finish(DataLayout::for_program(&p));
        let func = img.program.function(fa);
        let pl = img.placement(fa);
        for (i, b) in func.blocks.iter().enumerate() {
            if b.cold {
                assert!(pl.block_addr[i] >= ImageAssembler::COLD_BASE);
            } else {
                assert!(pl.block_addr[i] < ImageAssembler::COLD_BASE);
            }
        }
    }

    #[test]
    fn unplaced_functions_get_addresses_at_finish() {
        let (p, fa, fb_) = small_program();
        let mut asm = ImageAssembler::new(p.clone(), ImageConfig::plain("t"));
        let mut cur = SeqCursor::new(Image::CODE_BASE);
        asm.place_function(fa, &mut cur, ColdPolicy::Inline);
        // fb_ not placed explicitly.
        let img = asm.finish(DataLayout::for_program(&p));
        assert!(img.entry_addr(fb_) >= Image::CODE_BASE);
        assert!(img.code_end > img.entry_addr(fb_));
    }

    #[test]
    fn window_cursor_stays_in_window() {
        let mut c = WindowCursor::new(0x100000, 8192, 6144, 8192);
        for _ in 0..100 {
            let a = c.alloc(256);
            let idx = a % 8192;
            assert!(
                (6144..8192).contains(&idx),
                "allocation at index {idx} outside window"
            );
        }
    }

    #[test]
    fn window_cursor_wraps_to_next_cache_frame() {
        let mut c = WindowCursor::new(0, 8192, 0, 1024);
        // Fill the 1 KB window; the next alloc must land one cache frame up.
        let first = c.alloc(1024);
        assert_eq!(first % 8192, 0);
        let second = c.alloc(512);
        assert_eq!(second % 8192, 0);
        assert_eq!(second, first + 8192);
    }

    #[test]
    fn mainline_size_smaller_with_outline() {
        let (p, fa, _) = small_program();

        let mk = |outline: bool, policy: ColdPolicy| {
            let mut asm = ImageAssembler::new(
                p.clone(),
                ImageConfig::plain("t").with_outline(outline),
            );
            let mut cur = SeqCursor::new(Image::CODE_BASE);
            asm.place_function(fa, &mut cur, policy);
            asm.finish(DataLayout::for_program(&p))
        };
        let plain = mk(false, ColdPolicy::Inline);
        let outlined = mk(true, ColdPolicy::EndOfFunction);
        // Mainline metric counts hot blocks only; identical hot-block
        // lengths modulo slot differences, so compare full vs hot sizes.
        let full: u64 = {
            let pl = plain.placement(fa);
            pl.block_len.iter().map(|l| *l as u64).sum()
        };
        let hot = outlined.mainline_size_insts(&[fa]);
        assert!(hot < full, "hot={hot} full={full}");
    }
}
