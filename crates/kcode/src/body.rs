//! Basic-block bodies: compact descriptors of the straight-line machine
//! code a block contains.
//!
//! A body does not enumerate individual instructions; it records how many
//! simple ALU operations and integer multiplies the block executes and
//! *which data* its loads and stores touch ([`DataRef`]).  The replayer
//! expands a body into a deterministic instruction sequence (memory
//! operations interleaved among the ALU operations, which is both what
//! compilers schedule and what the dual-issue model rewards).


use crate::ids::RegionId;

/// A symbolic data reference, resolved to a concrete address at replay
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataRef {
    /// A static region (globals, a protocol's state block, a device ring)
    /// plus a byte offset.
    Region(RegionId, u32),
    /// A runtime base address supplied by the recording protocol code
    /// (activation operand slot) plus a byte offset.  Used for message
    /// buffers, per-connection state found by demux, etc.
    Operand(u8, u32),
    /// Current stack frame plus a byte offset — spills, saved registers,
    /// locals.
    Stack(u32),
}

/// Straight-line contents of a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Body {
    /// Simple single-cycle integer operations.
    pub alu: u16,
    /// Integer multiplies (long latency on the 21064).
    pub mul: u16,
    /// Loads, in program order.
    pub loads: Vec<DataRef>,
    /// Stores, in program order.
    pub stores: Vec<DataRef>,
}

impl Body {
    /// A body of `alu` ALU instructions and nothing else.
    pub fn ops(alu: u16) -> Self {
        Body { alu, ..Default::default() }
    }

    /// Builder-style: add loads.
    pub fn with_loads(mut self, loads: &[DataRef]) -> Self {
        self.loads.extend_from_slice(loads);
        self
    }

    /// Builder-style: add stores.
    pub fn with_stores(mut self, stores: &[DataRef]) -> Self {
        self.stores.extend_from_slice(stores);
        self
    }

    /// Builder-style: add `n` loads walking `region` in `stride`-byte
    /// steps from `base_off` — the common "read a header / structure"
    /// pattern.
    pub fn load_struct(mut self, region: RegionId, base_off: u32, n: u16, stride: u32) -> Self {
        for i in 0..n {
            self.loads.push(DataRef::Region(region, base_off + i as u32 * stride));
        }
        self
    }

    /// Builder-style: add `n` loads walking operand `slot`.
    pub fn load_operand(mut self, slot: u8, base_off: u32, n: u16, stride: u32) -> Self {
        for i in 0..n {
            self.loads.push(DataRef::Operand(slot, base_off + i as u32 * stride));
        }
        self
    }

    /// Builder-style: add `n` stores walking operand `slot`.
    pub fn store_operand(mut self, slot: u8, base_off: u32, n: u16, stride: u32) -> Self {
        for i in 0..n {
            self.stores.push(DataRef::Operand(slot, base_off + i as u32 * stride));
        }
        self
    }

    /// Builder-style: add `n` stores walking `region`.
    pub fn store_struct(mut self, region: RegionId, base_off: u32, n: u16, stride: u32) -> Self {
        for i in 0..n {
            self.stores.push(DataRef::Region(region, base_off + i as u32 * stride));
        }
        self
    }

    /// Builder-style: add multiplies.
    pub fn with_mul(mut self, mul: u16) -> Self {
        self.mul += mul;
        self
    }

    /// Number of instructions this body expands to (excluding any
    /// terminator the replayer may add).
    pub fn len(&self) -> u32 {
        self.alu as u32 + self.mul as u32 + self.loads.len() as u32 + self.stores.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deterministic expansion order: one slot per instruction.
    ///
    /// Memory operations are spread as evenly as possible among the ALU
    /// operations (loads first, then stores, matching the
    /// read-compute-write shape of protocol code); multiplies are placed
    /// after the loads they typically consume.
    pub fn expand(&self) -> Vec<SlotClass> {
        let total = self.len() as usize;
        let mut slots = vec![SlotClass::Alu; total];
        let n_mem = self.loads.len() + self.stores.len();
        if n_mem > 0 {
            // Place memory ops at evenly spaced positions.
            for (k, slot) in (0..n_mem).enumerate() {
                let pos = slot * total / n_mem;
                let class = if k < self.loads.len() {
                    SlotClass::Load(k as u16)
                } else {
                    SlotClass::Store((k - self.loads.len()) as u16)
                };
                slots[pos] = class;
            }
        }
        // Multiplies take the last ALU positions before the midpoint.
        let mut placed = 0;
        for s in slots.iter_mut() {
            if placed == self.mul {
                break;
            }
            if matches!(s, SlotClass::Alu) {
                *s = SlotClass::Mul;
                placed += 1;
            }
        }
        slots
    }
}

impl Body {
    /// Split into `n` consecutive chunks (for interleaving with error
    /// checks): ALU/mul work is distributed evenly, loads and stores are
    /// dealt round-robin preserving order.
    pub fn split(&self, n: usize) -> Vec<Body> {
        let n = n.max(1);
        let mut parts: Vec<Body> = (0..n)
            .map(|i| {
                let alu = self.alu as usize / n
                    + usize::from(i < self.alu as usize % n);
                let mul = self.mul as usize / n
                    + usize::from(i < self.mul as usize % n);
                Body { alu: alu as u16, mul: mul as u16, ..Default::default() }
            })
            .collect();
        for (k, l) in self.loads.iter().enumerate() {
            parts[k * n / self.loads.len().max(1)].loads.push(*l);
        }
        for (k, st) in self.stores.iter().enumerate() {
            parts[k * n / self.stores.len().max(1)].stores.push(*st);
        }
        parts
    }
}

/// One expanded instruction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotClass {
    Alu,
    Mul,
    /// Load number `i` of the body (index into `loads`).
    Load(u16),
    /// Store number `i` of the body (index into `stores`).
    Store(u16),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_counts_everything() {
        let b = Body::ops(10)
            .with_mul(1)
            .with_loads(&[DataRef::Stack(0), DataRef::Stack(8)])
            .with_stores(&[DataRef::Stack(16)]);
        assert_eq!(b.len(), 14);
        assert!(!b.is_empty());
    }

    #[test]
    fn expansion_has_right_multiplicities() {
        let b = Body::ops(8)
            .with_mul(2)
            .with_loads(&[DataRef::Stack(0), DataRef::Stack(8), DataRef::Stack(16)])
            .with_stores(&[DataRef::Stack(24)]);
        let slots = b.expand();
        assert_eq!(slots.len(), 14);
        let alu = slots.iter().filter(|s| matches!(s, SlotClass::Alu)).count();
        let mul = slots.iter().filter(|s| matches!(s, SlotClass::Mul)).count();
        let ld = slots.iter().filter(|s| matches!(s, SlotClass::Load(_))).count();
        let st = slots.iter().filter(|s| matches!(s, SlotClass::Store(_))).count();
        assert_eq!((alu, mul, ld, st), (8, 2, 3, 1));
    }

    #[test]
    fn loads_are_spread_not_clumped() {
        let b = Body::ops(8).with_loads(&[DataRef::Stack(0), DataRef::Stack(8)]);
        let slots = b.expand();
        let positions: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, SlotClass::Load(_)))
            .map(|(i, _)| i)
            .collect();
        assert!(positions[1] - positions[0] >= 3, "loads spread out: {positions:?}");
    }

    #[test]
    fn struct_walk_builders() {
        let r = RegionId(7);
        let b = Body::ops(2).load_struct(r, 0, 3, 8).store_struct(r, 64, 2, 8);
        assert_eq!(b.loads, vec![
            DataRef::Region(r, 0),
            DataRef::Region(r, 8),
            DataRef::Region(r, 16)
        ]);
        assert_eq!(b.stores, vec![DataRef::Region(r, 64), DataRef::Region(r, 72)]);
    }

    #[test]
    fn empty_body_expands_empty() {
        assert!(Body::default().expand().is_empty());
        assert!(Body::default().is_empty());
    }

    #[test]
    fn mem_only_body() {
        let b = Body::default().with_loads(&[DataRef::Stack(0)]);
        let slots = b.expand();
        assert_eq!(slots, vec![SlotClass::Load(0)]);
    }
}
