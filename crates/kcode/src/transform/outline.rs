//! Outlining: hot/cold block partitioning and the static terminator-slot
//! rules.
//!
//! Outlining is the paper's conservative, language-based variant: only
//! blocks carrying a static annotation (`PREDICT_FALSE`/`PREDICT_TRUE` on
//! an if, never-entered loops, explicit initialization code) are moved.
//! The transformation itself is a block *ordering*: the hot blocks stay
//! in source order; cold blocks are emitted after them (or in a shared
//! cold region, when the layout strategy separates cold code entirely).
//!
//! Whether a block physically ends with a jump instruction depends on the
//! ordering, which is why [`needs_term_slot`] takes an
//! `out_of_line` predicate.  The rules mirror what a compiler emits:
//!
//! * conditional tests, loop bodies, call sites and epilogues always
//!   contain their control instruction;
//! * a block moved out of line must jump back to the join point;
//! * a then-arm followed inline by its else-arm must jump over it — but
//!   if the else-arm was outlined, the then-arm falls through to the join
//!   and the jump disappears (one of the ways outlining removes taken
//!   branches).

use crate::func::{BlockCtx, BlockRole, Function};
use crate::ids::BlockIdx;

/// Partition a function's non-entry/exit blocks into (hot-in-source-order,
/// cold-in-source-order).  The entry block is always first in hot; the
/// exit block is always last in hot.
pub fn split_hot_cold(func: &Function) -> (Vec<BlockIdx>, Vec<BlockIdx>) {
    let mut hot = Vec::new();
    let mut cold = Vec::new();
    for (i, b) in func.blocks.iter().enumerate() {
        let idx = BlockIdx(i as u32);
        if b.cold {
            cold.push(idx);
        } else {
            hot.push(idx);
        }
    }
    (hot, cold)
}

/// Does `block` statically need a terminator instruction slot, given
/// which blocks are placed out of line?
pub fn needs_term_slot(
    func: &Function,
    block: BlockIdx,
    out_of_line: &dyn Fn(BlockIdx) -> bool,
) -> bool {
    let b = func.block(block);
    match b.role {
        BlockRole::CondTest
        | BlockRole::LoopBody
        | BlockRole::CallSite
        | BlockRole::Exit => true,
        _ => {
            if out_of_line(block) {
                // Outlined code must jump back to the mainline.
                return true;
            }
            match func.block_ctx(block) {
                BlockCtx::ThenWithElse { else_blk } => {
                    // Jump over the else-arm — unless the else-arm was
                    // outlined, in which case the then-arm falls through.
                    !out_of_line(else_blk)
                }
                _ => false,
            }
        }
    }
}

/// Laid-out length of a block in instructions: its body plus the
/// terminator slot if one is required.
pub fn laid_len(
    func: &Function,
    block: BlockIdx,
    out_of_line: &dyn Fn(BlockIdx) -> bool,
) -> u32 {
    let body = func.block(block).body.len();
    body + needs_term_slot(func, block, out_of_line) as u32
}

/// Static size in instructions of the function as laid out with the given
/// outlining decision applied to every cold block.
pub fn laid_size(func: &Function, outline: bool) -> u32 {
    let ool = |b: BlockIdx| outline && func.block(b).cold;
    (0..func.blocks.len())
        .map(|i| laid_len(func, BlockIdx(i as u32), &ool))
        .sum()
}

/// Static size of only the mainline (hot) code under the given outlining
/// decision — the paper's Table 9 "Size" with outlining.
pub fn hot_laid_size(func: &Function, outline: bool) -> u32 {
    let ool = |b: BlockIdx| outline && func.block(b).cold;
    (0..func.blocks.len())
        .filter(|i| !func.blocks[*i].cold)
        .map(|i| laid_len(func, BlockIdx(i as u32), &ool))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::func::{FrameSpec, FuncKind, FunctionBuilder, Predict, SegKind};
    use crate::ids::FuncId;

    fn sample() -> Function {
        let mut fb = FunctionBuilder::new(
            FuncId(0),
            "f",
            FuncKind::Path,
            FrameSpec::standard(),
            0,
        );
        fb.straight("work", Body::ops(10));
        fb.cond("err", Body::ops(2), Body::ops(40), Predict::False);
        fb.cond_else("sel", Body::ops(2), Body::ops(6), Body::ops(30), Predict::True);
        fb.finish()
    }

    #[test]
    fn split_separates_cold_blocks() {
        let f = sample();
        let (hot, cold) = split_hot_cold(&f);
        assert_eq!(hot.len() + cold.len(), f.blocks.len());
        assert_eq!(cold.len(), 2, "err.then and sel.else are cold");
        for c in &cold {
            assert!(f.block(*c).cold);
        }
        // Hot order preserves source order.
        for w in hot.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn cond_test_always_has_slot() {
        let f = sample();
        let never = |_: BlockIdx| false;
        for (i, b) in f.blocks.iter().enumerate() {
            if b.role == BlockRole::CondTest {
                assert!(needs_term_slot(&f, BlockIdx(i as u32), &never));
            }
        }
    }

    #[test]
    fn outlined_block_gains_jump_back_slot() {
        let f = sample();
        let (_, cold) = split_hot_cold(&f);
        let err_then = cold[0];
        let inline_pred = |_: BlockIdx| false;
        let outline_pred = |b: BlockIdx| f.block(b).cold;
        assert!(!needs_term_slot(&f, err_then, &inline_pred));
        assert!(needs_term_slot(&f, err_then, &outline_pred));
    }

    #[test]
    fn then_with_else_loses_jump_when_else_outlined() {
        let f = sample();
        // Find the then-arm of "sel".
        let sel_then = f
            .segments
            .iter()
            .find_map(|s| match &s.kind {
                SegKind::Cond { then_blk, else_blk: Some(_), .. } => Some(*then_blk),
                _ => None,
            })
            .unwrap();
        let inline_pred = |_: BlockIdx| false;
        let outline_pred = |b: BlockIdx| f.block(b).cold;
        assert!(needs_term_slot(&f, sel_then, &inline_pred), "jump over else");
        assert!(
            !needs_term_slot(&f, sel_then, &outline_pred),
            "else outlined: then falls through to join"
        );
    }

    #[test]
    fn outlining_shrinks_mainline_size() {
        let f = sample();
        let full = laid_size(&f, false);
        let hot = hot_laid_size(&f, true);
        assert!(hot < full);
        // The cold bodies (40 + 30 instructions) dominate the reduction.
        assert!(full - hot >= 68, "full={full} hot={hot}");
    }

    #[test]
    fn laid_size_with_outline_can_exceed_without_by_jumpbacks() {
        // Total size with outlining adds jump-back slots on cold blocks
        // and removes the then-over-else jump; net effect small.
        let f = sample();
        let without = laid_size(&f, false);
        let with = laid_size(&f, true);
        assert!((with as i64 - without as i64).abs() <= 2);
    }
}
