//! Path-inlining: merge the latency-critical path into single functions.
//!
//! The paper collapses the TCP/IP stack into two large functions (input
//! and output processing) and the RPC stack similarly.  We reproduce that
//! by laying the blocks of the path functions contiguously in *canonical
//! execution order* — the order a recorded reference trace first visits
//! them.  That is what real inlining produces: the code of the common
//! path becomes one straight run of instructions, call overhead
//! (argument-address loads, call/return instructions, prologues,
//! epilogues) disappears, and the only jumps left are genuinely
//! conditional ones.
//!
//! The inbound side of a real system additionally requires a packet
//! classifier to establish that an incoming packet will really follow the
//! assumed path; that lives in [`crate::classifier`].

use std::collections::HashSet;

use crate::events::{Ev, EventStream};
use crate::func::BlockRole;
use crate::ids::{BlockIdx, FuncId, SegId};
use crate::program::Program;

/// A group of functions merged into one path-inlined unit.
#[derive(Debug, Clone)]
pub struct MergedGroup {
    /// Display name ("tcpip_input", ...).
    pub name: String,
    /// Functions whose bodies are spliced into the merged unit.
    pub funcs: HashSet<FuncId>,
    /// Blocks in merged layout order: canonical-path blocks first (in
    /// first-visit order), then unvisited hot blocks; cold blocks are
    /// *not* listed — they go to the cold region like any outlined code.
    pub order: Vec<(FuncId, BlockIdx)>,
}

/// A full inlining plan: the merged groups of an image (typically one for
/// the input path and one for the output path).
#[derive(Debug, Clone, Default)]
pub struct InlinePlan {
    pub groups: Vec<MergedGroup>,
}

impl InlinePlan {
    /// Is `f` inlined into some group?
    pub fn is_inlined(&self, f: FuncId) -> bool {
        self.groups.iter().any(|g| g.funcs.contains(&f))
    }

    /// All inlined functions.
    pub fn inlined_funcs(&self) -> HashSet<FuncId> {
        let mut s = HashSet::new();
        for g in &self.groups {
            s.extend(g.funcs.iter().copied());
        }
        s
    }

    /// Validate that no function appears in two groups.
    pub fn check_disjoint(&self) -> Result<(), String> {
        let mut seen: HashSet<FuncId> = HashSet::new();
        for g in &self.groups {
            for f in &g.funcs {
                if !seen.insert(*f) {
                    return Err(format!(
                        "function {f:?} inlined into more than one group (group {})",
                        g.name
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Compute the merged block order for `path_funcs` from a canonical
/// reference trace.
///
/// Blocks are listed in first-visit order.  Entry and exit blocks of
/// inlined functions are skipped (inlining removes prologues and
/// epilogues); call-site blocks whose callee is also inlined stay (their
/// argument setup survives) — the replayer drops the callee-address load
/// and the call instruction when it sees the callee is inlined.  Cold
/// blocks and unvisited hot blocks are appended at the end so rare
/// dynamic excursions still have addresses; cold blocks keep their cold
/// flag so layout strategies can banish them.
pub fn merged_block_order(
    program: &Program,
    canonical: &EventStream,
    path_funcs: &HashSet<FuncId>,
) -> Vec<(FuncId, BlockIdx)> {
    let mut order: Vec<(FuncId, BlockIdx)> = Vec::new();
    let mut seen: HashSet<(FuncId, BlockIdx)> = HashSet::new();
    let mut stack: Vec<FuncId> = Vec::new();

    let push = |order: &mut Vec<(FuncId, BlockIdx)>,
                    seen: &mut HashSet<(FuncId, BlockIdx)>,
                    f: FuncId,
                    b: BlockIdx| {
        if seen.insert((f, b)) {
            order.push((f, b));
        }
    };

    let seg_blocks = |f: FuncId, seg: SegId, taken: Option<bool>, iters: Option<u32>| {
        let func = program.function(f);
        let mut out: Vec<BlockIdx> = Vec::new();
        if let Some(s) = func.segment(seg) {
            use crate::func::SegKind::*;
            match &s.kind {
                Straight { block } => out.push(*block),
                Cond { test, then_blk, else_blk, .. } => {
                    out.push(*test);
                    match taken {
                        Some(true) => out.push(*then_blk),
                        Some(false) => {
                            if let Some(e) = else_blk {
                                out.push(*e);
                            }
                        }
                        None => {}
                    }
                }
                Loop { body, .. } => {
                    if iters.unwrap_or(0) > 0 {
                        out.push(*body);
                    }
                }
                Call { site, .. } => out.push(*site),
                Checked { tests, .. } => out.extend(tests.iter().copied()),
            }
        }
        out
    };

    for ev in &canonical.events {
        match ev {
            Ev::Enter { func, .. } => {
                stack.push(*func);
                // Entry blocks of inlined functions are elided; of
                // non-path functions we don't lay out here at all.
            }
            Ev::Leave => {
                stack.pop();
            }
            Ev::CallSite { seg } | Ev::Straight { seg } => {
                if let Some(&f) = stack.last() {
                    if path_funcs.contains(&f) {
                        for b in seg_blocks(f, *seg, None, None) {
                            push(&mut order, &mut seen, f, b);
                        }
                    }
                }
            }
            Ev::Cond { seg, taken } => {
                if let Some(&f) = stack.last() {
                    if path_funcs.contains(&f) {
                        for b in seg_blocks(f, *seg, Some(*taken), None) {
                            push(&mut order, &mut seen, f, b);
                        }
                    }
                }
            }
            Ev::Loop { seg, iters } => {
                if let Some(&f) = stack.last() {
                    if path_funcs.contains(&f) {
                        for b in seg_blocks(f, *seg, None, Some(*iters)) {
                            push(&mut order, &mut seen, f, b);
                        }
                    }
                }
            }
        }
    }

    // Append unvisited hot blocks (off-canonical arms) so they keep
    // addresses near the path; skip entries/exits (elided by inlining)
    // and cold blocks (the layout sends those to the cold region).
    // Iterate in id order: HashSet order is nondeterministic and block
    // addresses must be reproducible across runs.
    let mut ordered: Vec<FuncId> = path_funcs.iter().copied().collect();
    ordered.sort();
    for f in ordered {
        let func = program.function(f);
        for (i, b) in func.blocks.iter().enumerate() {
            let idx = BlockIdx(i as u32);
            if matches!(b.role, BlockRole::Entry | BlockRole::Exit) {
                continue;
            }
            if b.cold {
                continue;
            }
            push(&mut order, &mut seen, f, idx);
        }
    }

    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::events::Recorder;
    use crate::func::{FrameSpec, FuncKind, Predict};
    use crate::program::ProgramBuilder;

    struct TwoFn {
        program: std::sync::Arc<Program>,
        f_outer: FuncId,
        f_inner: FuncId,
        s_work: SegId,
        s_call: SegId,
        s_check: SegId,
        s_inner_work: SegId,
    }

    fn build() -> TwoFn {
        let mut pb = ProgramBuilder::new();
        let (f_inner, s_inner_work) =
            pb.function("inner", FuncKind::Path, FrameSpec::leaf(), |fb| {
                fb.straight("work", Body::ops(5))
            });
        let (f_outer, (s_work, s_call, s_check)) =
            pb.function("outer", FuncKind::Path, FrameSpec::standard(), |fb| {
                let w = fb.straight("work", Body::ops(10));
                let c = fb.call("do_inner", f_inner, Body::ops(2));
                let k = fb.cond("err", Body::ops(2), Body::ops(20), Predict::False);
                (w, c, k)
            });
        TwoFn {
            program: pb.build(),
            f_outer,
            f_inner,
            s_work,
            s_call,
            s_check,
            s_inner_work,
        }
    }

    fn canonical(t: &TwoFn) -> EventStream {
        let mut r = Recorder::new();
        r.enter(t.f_outer);
        r.seg(t.s_work);
        r.call(t.s_call, t.f_inner);
        r.seg(t.s_inner_work);
        r.leave();
        r.cond(t.s_check, false);
        r.leave();
        r.take()
    }

    #[test]
    fn order_follows_execution_and_skips_entries() {
        let t = build();
        let ev = canonical(&t);
        let path: HashSet<FuncId> = [t.f_outer, t.f_inner].into_iter().collect();
        let order = merged_block_order(&t.program, &ev, &path);
        // No entry/exit blocks.
        for (f, b) in &order {
            let role = t.program.function(*f).block(*b).role;
            assert!(!matches!(role, BlockRole::Entry | BlockRole::Exit));
        }
        // outer.work before the call site, call site before inner.work,
        // inner.work before err.test (the post-call code).
        let pos = |f: FuncId, name_frag: &str| {
            order
                .iter()
                .position(|(pf, pb)| {
                    *pf == f && t.program.function(*pf).block(*pb).name.contains(name_frag)
                })
                .unwrap_or_else(|| panic!("{name_frag} not in order"))
        };
        assert!(pos(t.f_outer, "work") < pos(t.f_outer, "do_inner"));
        assert!(pos(t.f_outer, "do_inner") < pos(t.f_inner, "work"));
        assert!(pos(t.f_inner, "work") < pos(t.f_outer, "err.test"));
    }

    #[test]
    fn cold_blocks_excluded() {
        let t = build();
        let ev = canonical(&t);
        let path: HashSet<FuncId> = [t.f_outer, t.f_inner].into_iter().collect();
        let order = merged_block_order(&t.program, &ev, &path);
        for (f, b) in &order {
            assert!(!t.program.function(*f).block(*b).cold);
        }
    }

    #[test]
    fn non_path_functions_ignored() {
        let t = build();
        let ev = canonical(&t);
        let path: HashSet<FuncId> = [t.f_outer].into_iter().collect();
        let order = merged_block_order(&t.program, &ev, &path);
        for (f, _) in &order {
            assert_eq!(*f, t.f_outer);
        }
    }

    #[test]
    fn plan_disjointness_check() {
        let t = build();
        let g1 = MergedGroup {
            name: "a".into(),
            funcs: [t.f_outer].into_iter().collect(),
            order: vec![],
        };
        let g2 = MergedGroup {
            name: "b".into(),
            funcs: [t.f_outer].into_iter().collect(),
            order: vec![],
        };
        let plan = InlinePlan { groups: vec![g1.clone(), g2] };
        assert!(plan.check_disjoint().is_err());
        let ok = InlinePlan { groups: vec![g1] };
        assert!(ok.check_disjoint().is_ok());
        assert!(ok.is_inlined(t.f_outer));
        assert!(!ok.is_inlined(t.f_inner));
        let _ = (t.s_work, t.s_check, t.s_inner_work);
    }
}
