//! Code transformations: outlining and path-inlining.
//!
//! (Cloning is a *placement* decision, so it lives in [`crate::layout`];
//! the call-specialization it enables is applied by the replayer based on
//! caller/callee distance.)

pub mod inline;
pub mod outline;

pub use inline::{merged_block_order, InlinePlan, MergedGroup};
pub use outline::{laid_len, needs_term_slot, split_hot_cold};
