//! Run-time execution recording.
//!
//! Protocol code carries a [`Recorder`] through the stack and reports
//! what it does: which functions it enters, which way each conditional
//! goes, how many times each loop iterates.  The result is an
//! [`EventStream`] — the paper's "execution trace" — that can be replayed
//! against any laid-out image.

use crate::ids::{FuncId, SegId};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ev {
    /// A call site executed (the next `Enter` is its callee).
    CallSite { seg: SegId },
    /// Entered a function.  `ops` are activation operand base addresses
    /// (message buffer, connection state, ...), resolved by
    /// `DataRef::Operand` references in the function's blocks.
    Enter { func: FuncId, ops: Vec<u64> },
    /// Straight segment executed.
    Straight { seg: SegId },
    /// Conditional segment executed, with the run-time outcome.
    Cond { seg: SegId, taken: bool },
    /// Loop segment executed `iters` times (possibly zero).
    Loop { seg: SegId, iters: u32 },
    /// Returned from the current function.
    Leave,
}

/// A recorded execution: a flat list of events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventStream {
    pub events: Vec<Ev>,
}

impl EventStream {
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of function activations in the stream.
    pub fn activations(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, Ev::Enter { .. })).count()
    }

    /// Function-level activity sequence: which function is executing, in
    /// order, including resumptions after returns.  Drives interleaving
    /// weights for micro-positioning (`layout::micro`).
    pub fn activity_sequence(&self) -> Vec<FuncId> {
        // Every Enter contributes one element, every non-root Leave one
        // resumption — size the output once instead of growing it.
        let activations = self.activations();
        let mut stack: Vec<FuncId> = Vec::with_capacity(16);
        let mut seq = Vec::with_capacity(2 * activations);
        for ev in &self.events {
            match ev {
                Ev::Enter { func, .. } => {
                    stack.push(*func);
                    seq.push(*func);
                }
                Ev::Leave => {
                    stack.pop();
                    if let Some(&top) = stack.last() {
                        seq.push(top);
                    }
                }
                _ => {}
            }
        }
        seq
    }

    /// Check bracketing: every Enter has a matching Leave and the stream
    /// ends at depth zero.  Returns the maximum call depth.
    pub fn check_balanced(&self) -> Result<usize, String> {
        let mut depth = 0usize;
        let mut max_depth = 0usize;
        for (i, e) in self.events.iter().enumerate() {
            match e {
                Ev::Enter { .. } => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                Ev::Leave => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| format!("Leave at event {i} underflows"))?;
                }
                _ => {
                    if depth == 0 {
                        return Err(format!("segment event {e:?} at {i} outside any function"));
                    }
                }
            }
        }
        if depth != 0 {
            return Err(format!("stream ends at depth {depth}"));
        }
        Ok(max_depth)
    }
}

/// Records events; carried through the protocol stack by reference.
///
/// The recorder can be *disabled* (e.g. during functional warm-up runs or
/// on the un-instrumented side of a test); all recording calls become
/// no-ops.
#[derive(Debug, Default)]
pub struct Recorder {
    stream: EventStream,
    enabled: bool,
    depth: usize,
}

impl Recorder {
    /// A recorder that is actively recording.
    pub fn new() -> Self {
        Recorder { stream: EventStream::default(), enabled: true, depth: 0 }
    }

    /// A recorder that ignores everything (zero-cost functional runs).
    pub fn disabled() -> Self {
        Recorder { stream: EventStream::default(), enabled: false, depth: 0 }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Record only the call-site half; the callee (e.g. a driver entry
    /// point that records its own activation) must `enter` next.
    pub fn callsite(&mut self, seg: SegId) {
        if self.enabled {
            self.stream.events.push(Ev::CallSite { seg });
        }
    }

    /// Record a direct call site followed by entering `func`.
    pub fn call(&mut self, seg: SegId, func: FuncId) {
        if self.enabled {
            self.stream.events.push(Ev::CallSite { seg });
        }
        self.enter(func);
    }

    /// Record a call site followed by entering `func` with operands.
    pub fn call_with(&mut self, seg: SegId, func: FuncId, ops: &[u64]) {
        if self.enabled {
            self.stream.events.push(Ev::CallSite { seg });
        }
        self.enter_with(func, ops);
    }

    /// Enter a function without an explicit call site (episode roots,
    /// interrupt handlers).
    pub fn enter(&mut self, func: FuncId) {
        self.enter_with(func, &[]);
    }

    /// Enter a function with activation operands.
    pub fn enter_with(&mut self, func: FuncId, ops: &[u64]) {
        self.depth += 1;
        if self.enabled {
            self.stream.events.push(Ev::Enter { func, ops: ops.to_vec() });
        }
    }

    /// Straight segment.
    pub fn seg(&mut self, seg: SegId) {
        if self.enabled {
            self.stream.events.push(Ev::Straight { seg });
        }
    }

    /// Conditional segment; returns `taken` so it can wrap real branches:
    /// `if rec.cond(SEG, x.is_none()) { ... }`.
    pub fn cond(&mut self, seg: SegId, taken: bool) -> bool {
        if self.enabled {
            self.stream.events.push(Ev::Cond { seg, taken });
        }
        taken
    }

    /// Loop segment executed `iters` times.
    pub fn loop_iters(&mut self, seg: SegId, iters: u32) {
        if self.enabled {
            self.stream.events.push(Ev::Loop { seg, iters });
        }
    }

    /// Leave the current function.
    pub fn leave(&mut self) {
        debug_assert!(self.depth > 0, "leave() without enter()");
        self.depth = self.depth.saturating_sub(1);
        if self.enabled {
            self.stream.events.push(Ev::Leave);
        }
    }

    /// Take the recorded stream, leaving the recorder empty (an
    /// *episode* boundary).
    pub fn take(&mut self) -> EventStream {
        debug_assert_eq!(self.depth, 0, "taking an episode mid-function");
        std::mem::take(&mut self.stream)
    }

    /// Peek at the stream without taking it.
    pub fn stream(&self) -> &EventStream {
        &self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_nested_calls() {
        let mut r = Recorder::new();
        r.enter(FuncId(0));
        r.seg(SegId(0));
        r.call(SegId(1), FuncId(1));
        r.cond(SegId(2), true);
        r.leave();
        r.leave();
        let s = r.take();
        assert_eq!(s.activations(), 2);
        assert_eq!(s.check_balanced().unwrap(), 2);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.enter(FuncId(0));
        r.seg(SegId(0));
        r.leave();
        assert!(r.take().is_empty());
    }

    #[test]
    fn cond_returns_its_argument() {
        let mut r = Recorder::new();
        r.enter(FuncId(0));
        assert!(r.cond(SegId(0), true));
        assert!(!r.cond(SegId(0), false));
        r.leave();
    }

    #[test]
    fn unbalanced_stream_detected() {
        let s = EventStream {
            events: vec![Ev::Enter { func: FuncId(0), ops: vec![] }],
        };
        assert!(s.check_balanced().is_err());
        let s2 = EventStream { events: vec![Ev::Leave] };
        assert!(s2.check_balanced().is_err());
        let s3 = EventStream { events: vec![Ev::Straight { seg: SegId(0) }] };
        assert!(s3.check_balanced().is_err());
    }

    #[test]
    fn take_resets_stream() {
        let mut r = Recorder::new();
        r.enter(FuncId(0));
        r.leave();
        assert_eq!(r.take().len(), 2);
        assert!(r.take().is_empty());
    }

    #[test]
    fn depth_tracks_even_when_disabled() {
        let mut r = Recorder::disabled();
        r.enter(FuncId(0));
        assert_eq!(r.depth(), 1);
        r.leave();
        assert_eq!(r.depth(), 0);
    }
}
