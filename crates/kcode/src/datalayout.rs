//! Placement of data regions in the simulated address space.
//!
//! Code and data share the b-cache (it is unified) and the layouts must
//! be able to create — or avoid — conflicts between them, so regions get
//! real addresses.  Data lives above [`DataLayout::DATA_BASE`]; code
//! images start at [`crate::image::Image::CODE_BASE`].

use std::collections::HashMap;

use crate::ids::RegionId;
use crate::program::Program;

/// Resolved addresses for every registered region, plus the simulated
/// stack area.
#[derive(Debug, Clone)]
pub struct DataLayout {
    bases: HashMap<RegionId, u64>,
    /// Top of the simulated stack area (stacks grow down).
    stack_top: u64,
}

impl DataLayout {
    /// Data segment base address.
    pub const DATA_BASE: u64 = 0x0800_0000;
    /// Default stack-area top.
    pub const STACK_TOP: u64 = 0x0C00_0000;
    /// Alignment of each region (cache-block aligned, like a linker's
    /// BSS layout after the paper's padding-minimizing reorganization).
    pub const REGION_ALIGN: u64 = 64;

    /// Lay out the program's regions sequentially from
    /// [`Self::DATA_BASE`].
    pub fn for_program(program: &Program) -> Self {
        let mut bases = HashMap::new();
        let mut cursor = Self::DATA_BASE;
        for region in program.regions() {
            bases.insert(region.id, cursor);
            let sz = (region.size as u64).max(8);
            cursor += sz.div_ceil(Self::REGION_ALIGN) * Self::REGION_ALIGN;
        }
        DataLayout { bases, stack_top: Self::STACK_TOP }
    }

    /// Address of `region` + `offset`.
    pub fn addr(&self, region: RegionId, offset: u32) -> u64 {
        self.bases
            .get(&region)
            .copied()
            .unwrap_or(Self::DATA_BASE)
            + offset as u64
    }

    /// Base address of a region.
    pub fn base(&self, region: RegionId) -> Option<u64> {
        self.bases.get(&region).copied()
    }

    pub fn stack_top(&self) -> u64 {
        self.stack_top
    }

    /// Override a region base (used by the BAD layout to engineer
    /// b-cache conflicts between hot data and hot code).
    pub fn relocate(&mut self, region: RegionId, base: u64) {
        self.bases.insert(region, base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FrameSpec, FuncKind};
    use crate::program::ProgramBuilder;

    #[test]
    fn regions_do_not_overlap() {
        let mut pb = ProgramBuilder::new();
        let a = pb.region("a", 100);
        let b = pb.region("b", 200);
        let c = pb.region("c", 64);
        pb.function("f", FuncKind::Path, FrameSpec::leaf(), |_| ());
        let p = pb.build();
        let dl = DataLayout::for_program(&p);
        let (ba, bb, bc) = (dl.base(a).unwrap(), dl.base(b).unwrap(), dl.base(c).unwrap());
        assert!(ba + 100 <= bb, "a..{ba}+100 overlaps b at {bb}");
        assert!(bb + 200 <= bc);
        assert_eq!(ba % DataLayout::REGION_ALIGN, 0);
        assert_eq!(bb % DataLayout::REGION_ALIGN, 0);
    }

    #[test]
    fn addr_adds_offset() {
        let mut pb = ProgramBuilder::new();
        let r = pb.region("r", 64);
        let p = pb.build();
        let dl = DataLayout::for_program(&p);
        assert_eq!(dl.addr(r, 16), dl.base(r).unwrap() + 16);
    }

    #[test]
    fn relocate_moves_region() {
        let mut pb = ProgramBuilder::new();
        let r = pb.region("r", 64);
        let p = pb.build();
        let mut dl = DataLayout::for_program(&p);
        dl.relocate(r, 0x4000_0000);
        assert_eq!(dl.addr(r, 4), 0x4000_0004);
    }

    #[test]
    fn unknown_region_falls_back_to_data_base() {
        let pb = ProgramBuilder::new();
        let p = pb.build();
        let dl = DataLayout::for_program(&p);
        assert_eq!(dl.addr(RegionId(999), 0), DataLayout::DATA_BASE);
    }
}
