//! Typed identifiers for the code model.


/// Identifies a function within a [`crate::Program`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Dense vector index — function ids are contiguous within a
    /// [`crate::Program`], so `Vec`s indexed by `idx()` replace hash
    /// maps on hot paths (layout synthesis, replay).
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a segment.  Segment ids are unique across the whole program
/// (not per function) so runtime events don't need to carry the function.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub struct SegId(pub u32);

/// Index of a basic block within its function.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub struct BlockIdx(pub u32);

impl BlockIdx {
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a named data region (globals, protocol state, pools...).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub struct RegionId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(FuncId(1));
        set.insert(FuncId(1));
        set.insert(FuncId(2));
        assert_eq!(set.len(), 2);
        assert!(SegId(1) < SegId(2));
        assert_eq!(BlockIdx(3).idx(), 3);
    }
}
