//! Symbolization: map instruction addresses of a laid-out image back to
//! function and block names — the "back-map to source" ability the
//! paper notes profile-based outliners lack.

use alpha_machine::InstRecord;

use crate::ids::FuncId;
use crate::image::Image;

/// One resolved location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    pub func: FuncId,
    pub func_name: String,
    pub block_name: String,
    /// Offset in instructions from the block start.
    pub offset: u32,
    pub cold: bool,
}

/// Address-to-symbol resolver for one image.
pub struct Symbolizer {
    /// Sorted (start, end, func, block index).
    intervals: Vec<(u64, u64, FuncId, usize)>,
    image_names: Vec<(String, Vec<(String, bool)>)>,
}

impl Symbolizer {
    pub fn new(image: &Image) -> Self {
        let mut intervals = Vec::new();
        let mut image_names = Vec::new();
        for (fi, func) in image.program.functions().iter().enumerate() {
            let fid = FuncId(fi as u32);
            let placement = image.placement(fid);
            let mut blocks = Vec::new();
            for (bi, block) in func.blocks.iter().enumerate() {
                let start = placement.block_addr[bi];
                let len = placement.block_len[bi] as u64 * 4;
                if len > 0 {
                    intervals.push((start, start + len, fid, bi));
                }
                blocks.push((block.name.clone(), block.cold));
            }
            image_names.push((func.name.clone(), blocks));
        }
        intervals.sort_by_key(|(s, _, _, _)| *s);
        Symbolizer { intervals, image_names }
    }

    /// Resolve one address.
    pub fn resolve(&self, pc: u64) -> Option<Location> {
        let idx = self
            .intervals
            .partition_point(|(s, _, _, _)| *s <= pc)
            .checked_sub(1)?;
        let (start, end, func, block) = self.intervals[idx];
        if pc >= end {
            return None;
        }
        let (fname, blocks) = &self.image_names[func.0 as usize];
        let (bname, cold) = &blocks[block];
        Some(Location {
            func,
            func_name: fname.clone(),
            block_name: bname.clone(),
            offset: ((pc - start) / 4) as u32,
            cold: *cold,
        })
    }

    /// Annotate a trace: one line per *function transition*, with the
    /// instruction count spent in each run — a compact, human-readable
    /// rendering of the paper's published execution traces.
    pub fn annotate(&self, trace: &[InstRecord]) -> String {
        let mut out = String::new();
        let mut current: Option<(String, usize, u64)> = None;
        for rec in trace {
            let name = self
                .resolve(rec.pc)
                .map(|l| l.func_name)
                .unwrap_or_else(|| "<unknown>".to_string());
            match &mut current {
                Some((cur, count, start)) if *cur == name => {
                    *count += 1;
                    let _ = start;
                }
                _ => {
                    if let Some((cur, count, start)) = current.take() {
                        out.push_str(&format!("{start:#010x}  {cur:<22} {count:>5} insts\n"));
                    }
                    current = Some((name, 1, rec.pc));
                }
            }
        }
        if let Some((cur, count, start)) = current {
            out.push_str(&format!("{start:#010x}  {cur:<22} {count:>5} insts\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::events::Recorder;
    use crate::func::{FrameSpec, FuncKind};
    use crate::layout::{build_image, LayoutRequest, LayoutStrategy};
    use crate::program::ProgramBuilder;
    use crate::{ImageConfig, Replayer};

    fn setup() -> (Image, crate::EventStream) {
        let mut pb = ProgramBuilder::new();
        let (inner, s_inner) = pb.function("callee", FuncKind::Library, FrameSpec::leaf(), |fb| {
            fb.straight("w", Body::ops(10))
        });
        let (outer, (s_o, s_c)) =
            pb.function("caller", FuncKind::Path, FrameSpec::standard(), |fb| {
                (
                    fb.straight("w", Body::ops(12)),
                    fb.call("c", inner, Body::ops(2)),
                )
            });
        let program = pb.build();
        let mut r = Recorder::new();
        r.enter(outer);
        r.seg(s_o);
        r.call(s_c, inner);
        r.seg(s_inner);
        r.leave();
        r.leave();
        let ev = r.take();
        let image = build_image(
            &program,
            LayoutRequest::new(LayoutStrategy::Linear, ImageConfig::plain("t"))
                .with_canonical(&ev),
        );
        (image, ev)
    }

    #[test]
    fn resolves_every_executed_pc() {
        let (image, ev) = setup();
        let out = Replayer::new(&image).replay(&ev).unwrap();
        for rec in &out.trace {
            let loc = Symbolizer::new(&image).resolve(rec.pc);
            assert!(loc.is_some(), "pc {:#x} unresolved", rec.pc);
        }
    }

    #[test]
    fn annotation_shows_call_transitions() {
        let (image, ev) = setup();
        let out = Replayer::new(&image).replay(&ev).unwrap();
        let text = Symbolizer::new(&image).annotate(&out.trace);
        let lines: Vec<&str> = text.lines().collect();
        // caller -> callee -> caller.
        assert!(lines.len() >= 3, "{text}");
        assert!(lines[0].contains("caller"));
        assert!(lines[1].contains("callee"));
        assert!(lines[2].contains("caller"));
    }

    #[test]
    fn unplaced_address_resolves_to_none() {
        let (image, _) = setup();
        let s = Symbolizer::new(&image);
        assert_eq!(s.resolve(0x3), None);
        assert_eq!(s.resolve(u64::MAX), None);
    }
}
