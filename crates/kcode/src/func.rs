//! Functions, basic blocks and segments.
//!
//! A *segment* is the unit protocol code reports at run time ("I executed
//! the header-prediction test and it hit").  Each segment compiles to one
//! or more *basic blocks*; blocks are what layout strategies place in
//! memory and what the replayer turns into instructions.


use crate::body::Body;
use crate::ids::{BlockIdx, FuncId, SegId};

/// Static branch prediction annotation on a conditional segment —
/// the paper's compiler extension (`PREDICT_TRUE` / `PREDICT_FALSE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predict {
    /// No annotation: the compiler lays blocks out in source order and
    /// outlining leaves them alone.
    None,
    /// The condition is expected TRUE: the then-side is hot, the
    /// else-side (if any) is cold.
    True,
    /// The condition is expected FALSE (`PREDICT_FALSE`): the then-side
    /// is cold — the classic "error handling" annotation.
    False,
}

/// Function classification for the bipartite cloning layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncKind {
    /// Executed once per path invocation (protocol input/output
    /// functions).
    Path,
    /// Called repeatedly per path invocation (checksum, buffer
    /// management, map lookups...).
    Library,
}

/// The role of a block, determining how the replayer treats its
/// terminator and whether outlining may move it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRole {
    /// Function prologue (entry).  Cloning specialization may skip its
    /// first instructions for near calls.
    Entry,
    /// Plain straight-line code.
    Straight,
    /// Ends with a conditional branch (one terminator slot always
    /// emitted).
    CondTest,
    /// The then-side of a conditional.
    CondThen,
    /// The else-side of a conditional.
    CondElse,
    /// A loop body; iterations branch back to the block start.
    LoopBody,
    /// A call site: body (argument setup, callee-address load) followed
    /// by the call instruction.
    CallSite,
    /// Function epilogue: restores followed by the return instruction.
    Exit,
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub name: String,
    pub body: Body,
    pub role: BlockRole,
    /// True if this block is statically predicted cold (outlining
    /// candidate).  Set from [`Predict`] annotations or explicitly for
    /// initialization code.
    pub cold: bool,
    /// For loop bodies: bytes each `DataRef::Operand` reference advances
    /// per iteration (the loop walks its buffer).
    pub loop_stride: u32,
}

impl Block {
    /// Instructions this block occupies in the layout: its body plus a
    /// reserved terminator slot where one is architecturally required.
    ///
    /// * `CondTest` blocks always contain their conditional branch.
    /// * `CallSite` blocks always contain their call instruction.
    /// * `Exit` blocks always contain their return instruction.
    /// * Other roles reserve one slot for a possible unconditional jump;
    ///   when control falls through, the slot is dead padding — exactly
    ///   the i-cache gap the paper describes (compilers emit the jump
    ///   unconditionally when the successor is not adjacent; after
    ///   layout we model the unused slot as fetched-but-not-executed).
    pub fn layout_len(&self) -> u32 {
        self.body.len() + 1
    }
}

/// What kind of segment, and which blocks implement it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegKind {
    /// Unconditional straight-line code: one block.
    Straight { block: BlockIdx },
    /// `if (c) { then } [else { else }]` — a test block plus one or two
    /// arm blocks.
    Cond {
        test: BlockIdx,
        then_blk: BlockIdx,
        else_blk: Option<BlockIdx>,
        predict: Predict,
    },
    /// A loop whose body executes a run-time-determined number of times.
    /// `entered_likely=false` marks loops (e.g. unrolled copy loops) that
    /// the latency-critical path never enters — outlining candidates.
    Loop { body: BlockIdx, entered_likely: bool },
    /// A call site.  `callee` is `None` for indirect calls (demux): the
    /// actual callee is whatever function the recorder enters next.
    Call { site: BlockIdx, callee: Option<FuncId> },
    /// Straight-line code interleaved with predicted-false error checks:
    /// the paper's characteristic shape ("up to 50% error
    /// checking/handling code").  Each hot chunk ends with a conditional
    /// branch guarding a small cold error block.  Reported at run time
    /// like a straight segment; the error arms never execute on the
    /// latency path but occupy layout space — the i-cache gaps outlining
    /// removes.
    Checked {
        tests: Vec<BlockIdx>,
        errs: Vec<BlockIdx>,
    },
}

/// A segment: the run-time reporting unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    pub id: SegId,
    pub kind: SegKind,
}

/// Prologue/epilogue shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpec {
    /// ALU instructions in the prologue (GP reload, SP adjust).
    pub prologue_alu: u16,
    /// Callee-saved registers stored in the prologue and reloaded in the
    /// epilogue.
    pub saves: u16,
    /// Stack frame size in bytes (for resolving `DataRef::Stack`).
    pub frame_bytes: u32,
    /// Prologue instructions a specialized (near, cloned) call may skip —
    /// the Alpha GP-reload idiom.
    pub skippable: u16,
}

impl FrameSpec {
    /// A standard non-leaf frame: GP reload + SP adjust, RA plus a few
    /// callee-saves.
    pub fn standard() -> Self {
        FrameSpec { prologue_alu: 3, saves: 3, frame_bytes: 64, skippable: 2 }
    }

    /// A leaf function: no saves, no frame.
    pub fn leaf() -> Self {
        FrameSpec { prologue_alu: 1, saves: 0, frame_bytes: 0, skippable: 1 }
    }

    /// A big frame for functions with many locals (TCP input...).
    pub fn heavy() -> Self {
        FrameSpec { prologue_alu: 4, saves: 6, frame_bytes: 160, skippable: 2 }
    }
}

/// Structural context of a block within its segment — drives the
/// terminator-slot rules (does this block statically need a jump?).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCtx {
    /// Entry, exit, straight, test, loop, call — role alone decides.
    Plain,
    /// A then-arm whose conditional has an else-arm.
    ThenWithElse { else_blk: BlockIdx },
    /// A then-arm with no else.
    ThenNoElse,
    /// An else-arm.
    Else,
}

/// A function: blocks in source order plus the segment table.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub id: FuncId,
    pub name: String,
    pub kind: FuncKind,
    pub frame: FrameSpec,
    /// Blocks in *source order*: entry first, exit last.  Layout
    /// strategies may reorder (outlining) but indices stay stable.
    pub blocks: Vec<Block>,
    pub segments: Vec<Segment>,
    /// Entry block index (always 0) and exit block index.
    pub entry: BlockIdx,
    pub exit: BlockIdx,
    /// Per-block structural context, parallel to `blocks`.
    pub ctx: Vec<BlockCtx>,
}

impl Function {
    pub fn block(&self, idx: BlockIdx) -> &Block {
        &self.blocks[idx.idx()]
    }

    pub fn block_ctx(&self, idx: BlockIdx) -> BlockCtx {
        self.ctx[idx.idx()]
    }

    pub fn segment(&self, id: SegId) -> Option<&Segment> {
        self.segments.iter().find(|s| s.id == id)
    }

    /// Total layout size in instructions (all blocks).
    pub fn size_insts(&self) -> u32 {
        self.blocks.iter().map(|b| b.layout_len()).sum()
    }

    /// Layout size of the hot (non-cold) blocks only.
    pub fn hot_size_insts(&self) -> u32 {
        self.blocks.iter().filter(|b| !b.cold).map(|b| b.layout_len()).sum()
    }

    /// Layout size of cold blocks.
    pub fn cold_size_insts(&self) -> u32 {
        self.size_insts() - self.hot_size_insts()
    }
}

/// Builds one function.  Obtained from
/// [`crate::program::ProgramBuilder::function`].
pub struct FunctionBuilder {
    pub(crate) id: FuncId,
    pub(crate) name: String,
    pub(crate) kind: FuncKind,
    pub(crate) frame: FrameSpec,
    pub(crate) blocks: Vec<Block>,
    pub(crate) segments: Vec<Segment>,
    pub(crate) next_seg: u32,
}

impl FunctionBuilder {
    pub(crate) fn new(id: FuncId, name: &str, kind: FuncKind, frame: FrameSpec, seg_base: u32) -> Self {
        let mut fb = FunctionBuilder {
            id,
            name: name.to_string(),
            kind,
            frame,
            blocks: Vec::new(),
            segments: Vec::new(),
            next_seg: seg_base,
        };
        // Entry block: prologue.
        let mut body = Body::ops(frame.prologue_alu);
        for i in 0..frame.saves {
            body.stores.push(crate::body::DataRef::Stack(i as u32 * 8));
        }
        fb.blocks.push(Block {
            name: format!("{name}.entry"),
            body,
            role: BlockRole::Entry,
            cold: false,
            loop_stride: 0,
        });
        fb
    }

    fn push_block(&mut self, name: String, body: Body, role: BlockRole, cold: bool) -> BlockIdx {
        let idx = BlockIdx(self.blocks.len() as u32);
        self.blocks.push(Block { name, body, role, cold, loop_stride: 0 });
        idx
    }

    fn alloc_seg(&mut self, kind: SegKind) -> SegId {
        let id = SegId(self.next_seg);
        self.next_seg += 1;
        self.segments.push(Segment { id, kind });
        id
    }

    /// A straight-line segment.
    pub fn straight(&mut self, name: &str, body: Body) -> SegId {
        let block = self.push_block(
            format!("{}.{name}", self.name),
            body,
            BlockRole::Straight,
            false,
        );
        self.alloc_seg(SegKind::Straight { block })
    }

    /// A straight-line segment whose code is interleaved with
    /// `PREDICT_FALSE` error checks every ~14 instructions — the
    /// dominant shape of protocol code.  The hot body is split into
    /// chunks, each ending in a conditional branch to a small cold
    /// error-handling block.
    pub fn straight_checked(&mut self, name: &str, body: Body) -> SegId {
        let nchecks = (body.len() as usize / 28).max(1);
        let chunks = body.split(nchecks);
        let mut tests = Vec::with_capacity(nchecks);
        let mut errs = Vec::with_capacity(nchecks);
        for (i, chunk) in chunks.into_iter().enumerate() {
            let t = self.push_block(
                format!("{}.{name}.hot{i}", self.name),
                chunk,
                BlockRole::CondTest,
                false,
            );
            let e = self.push_block(
                format!("{}.{name}.err{i}", self.name),
                Body::ops(8),
                BlockRole::CondThen,
                true,
            );
            tests.push(t);
            errs.push(e);
        }
        self.alloc_seg(SegKind::Checked { tests, errs })
    }

    /// A straight-line segment explicitly marked cold (initialization
    /// code — the paper's second outlining category).
    pub fn straight_cold(&mut self, name: &str, body: Body) -> SegId {
        let block = self.push_block(
            format!("{}.{name}", self.name),
            body,
            BlockRole::Straight,
            true,
        );
        self.alloc_seg(SegKind::Straight { block })
    }

    /// An `if` with no else.  `test` is the condition evaluation, `then`
    /// the guarded code.  With `Predict::False` the then-side is an
    /// outlining candidate.
    pub fn cond(&mut self, name: &str, test: Body, then: Body, predict: Predict) -> SegId {
        let fname = &self.name;
        let test_blk = self.push_block(
            format!("{fname}.{name}.test"),
            test,
            BlockRole::CondTest,
            false,
        );
        let cold = matches!(predict, Predict::False);
        let then_blk = self.push_block(
            format!("{}.{name}.then", self.name),
            then,
            BlockRole::CondThen,
            cold,
        );
        self.alloc_seg(SegKind::Cond { test: test_blk, then_blk, else_blk: None, predict })
    }

    /// An `if`/`else`.  With `Predict::True` the else-side is cold; with
    /// `Predict::False` the then-side is cold.
    pub fn cond_else(
        &mut self,
        name: &str,
        test: Body,
        then: Body,
        els: Body,
        predict: Predict,
    ) -> SegId {
        let test_blk = self.push_block(
            format!("{}.{name}.test", self.name),
            test,
            BlockRole::CondTest,
            false,
        );
        let then_blk = self.push_block(
            format!("{}.{name}.then", self.name),
            then,
            BlockRole::CondThen,
            matches!(predict, Predict::False),
        );
        let else_blk = self.push_block(
            format!("{}.{name}.else", self.name),
            els,
            BlockRole::CondElse,
            matches!(predict, Predict::True),
        );
        self.alloc_seg(SegKind::Cond {
            test: test_blk,
            then_blk,
            else_blk: Some(else_blk),
            predict,
        })
    }

    /// A loop.  `entered_likely=false` marks the body cold (the unrolled
    /// data loop the latency path never enters).
    pub fn loop_seg(&mut self, name: &str, body: Body, entered_likely: bool) -> SegId {
        self.loop_seg_strided(name, body, entered_likely, 0)
    }

    /// A loop whose `Operand` references advance `stride` bytes per
    /// iteration (walking a buffer).
    pub fn loop_seg_strided(
        &mut self,
        name: &str,
        body: Body,
        entered_likely: bool,
        stride: u32,
    ) -> SegId {
        let blk = self.push_block(
            format!("{}.{name}", self.name),
            body,
            BlockRole::LoopBody,
            !entered_likely,
        );
        self.blocks[blk.idx()].loop_stride = stride;
        self.alloc_seg(SegKind::Loop { body: blk, entered_likely })
    }

    /// A direct call site.  `setup` models argument marshalling; the
    /// callee-address load (Alpha: `ldq pv, ...(gp)`) and the call
    /// instruction are added on top.
    pub fn call(&mut self, name: &str, callee: FuncId, setup: Body) -> SegId {
        let mut body = setup;
        // Address load from the GOT — removed by call specialization.
        body.loads.push(crate::body::DataRef::Region(crate::program::GOT_REGION, 0));
        let site = self.push_block(
            format!("{}.{name}.call", self.name),
            body,
            BlockRole::CallSite,
            false,
        );
        self.alloc_seg(SegKind::Call { site, callee: Some(callee) })
    }

    /// An indirect call site (demux through a function pointer): the
    /// callee is discovered at run time.
    pub fn call_indirect(&mut self, name: &str, setup: Body) -> SegId {
        let mut body = setup;
        body.loads.push(crate::body::DataRef::Region(crate::program::GOT_REGION, 8));
        let site = self.push_block(
            format!("{}.{name}.icall", self.name),
            body,
            BlockRole::CallSite,
            false,
        );
        self.alloc_seg(SegKind::Call { site, callee: None })
    }

    /// Finish: appends the epilogue block and yields the function.
    pub(crate) fn finish(mut self) -> Function {
        let mut body = Body::ops(1); // SP restore
        for i in 0..self.frame.saves {
            body.loads.push(crate::body::DataRef::Stack(i as u32 * 8));
        }
        let exit = self.push_block(
            format!("{}.exit", self.name),
            body,
            BlockRole::Exit,
            false,
        );
        // Derive per-block structural context from the segment table.
        let mut ctx = vec![BlockCtx::Plain; self.blocks.len()];
        for seg in &self.segments {
            if let SegKind::Cond { then_blk, else_blk, .. } = &seg.kind {
                match else_blk {
                    Some(e) => {
                        ctx[then_blk.idx()] = BlockCtx::ThenWithElse { else_blk: *e };
                        ctx[e.idx()] = BlockCtx::Else;
                    }
                    None => ctx[then_blk.idx()] = BlockCtx::ThenNoElse,
                }
            }
        }
        Function {
            id: self.id,
            name: self.name,
            kind: self.kind,
            frame: self.frame,
            blocks: self.blocks,
            segments: self.segments,
            entry: BlockIdx(0),
            exit,
            ctx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_one() -> Function {
        let mut fb = FunctionBuilder::new(
            FuncId(0),
            "f",
            FuncKind::Path,
            FrameSpec::standard(),
            0,
        );
        fb.straight("a", Body::ops(10));
        fb.cond("check", Body::ops(2), Body::ops(30), Predict::False);
        fb.finish()
    }

    #[test]
    fn function_has_entry_and_exit() {
        let f = build_one();
        assert_eq!(f.entry, BlockIdx(0));
        assert_eq!(f.blocks[f.entry.idx()].role, BlockRole::Entry);
        assert_eq!(f.blocks[f.exit.idx()].role, BlockRole::Exit);
        assert_eq!(f.exit.idx(), f.blocks.len() - 1);
    }

    #[test]
    fn predict_false_marks_then_cold() {
        let f = build_one();
        let seg = &f.segments[1];
        match &seg.kind {
            SegKind::Cond { then_blk, .. } => {
                assert!(f.block(*then_blk).cold);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn hot_and_cold_sizes_partition_total() {
        let f = build_one();
        assert_eq!(f.hot_size_insts() + f.cold_size_insts(), f.size_insts());
        assert!(f.cold_size_insts() >= 30, "the 30-inst then block is cold");
    }

    #[test]
    fn cond_else_predict_true_marks_else_cold() {
        let mut fb = FunctionBuilder::new(
            FuncId(1),
            "g",
            FuncKind::Library,
            FrameSpec::leaf(),
            10,
        );
        fb.cond_else("sel", Body::ops(2), Body::ops(5), Body::ops(50), Predict::True);
        let f = fb.finish();
        match &f.segments[0].kind {
            SegKind::Cond { then_blk, else_blk, .. } => {
                assert!(!f.block(*then_blk).cold);
                assert!(f.block(else_blk.unwrap()).cold);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn seg_ids_are_sequential_from_base() {
        let mut fb = FunctionBuilder::new(
            FuncId(2),
            "h",
            FuncKind::Path,
            FrameSpec::leaf(),
            100,
        );
        let a = fb.straight("a", Body::ops(1));
        let b = fb.straight("b", Body::ops(1));
        assert_eq!(a, SegId(100));
        assert_eq!(b, SegId(101));
    }

    #[test]
    fn call_site_includes_address_load() {
        let mut fb = FunctionBuilder::new(
            FuncId(3),
            "caller",
            FuncKind::Path,
            FrameSpec::standard(),
            0,
        );
        let seg = fb.call("x", FuncId(9), Body::ops(2));
        let f = fb.finish();
        match &f.segment(seg).unwrap().kind {
            SegKind::Call { site, callee } => {
                assert_eq!(*callee, Some(FuncId(9)));
                assert_eq!(f.block(*site).body.loads.len(), 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn loop_not_entered_likely_is_cold() {
        let mut fb = FunctionBuilder::new(
            FuncId(4),
            "l",
            FuncKind::Library,
            FrameSpec::leaf(),
            0,
        );
        let seg = fb.loop_seg("copy8", Body::ops(16), false);
        let f = fb.finish();
        match &f.segment(seg).unwrap().kind {
            SegKind::Loop { body, .. } => assert!(f.block(*body).cold),
            _ => unreachable!(),
        }
    }
}
