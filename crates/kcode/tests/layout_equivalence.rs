//! Equivalence of the data-oriented micro-positioner against the seed
//! greedy (`layout::reference`).
//!
//! The optimized placer replaced the weight `HashMap`, the per-offset
//! occupancy re-walks and the linear interval scan with dense/differential
//! structures; the placements must remain *bit-identical*.  96 seeded
//! SplitMix64 cases drive both implementations over randomly-shaped
//! programs (a hub function making repeated randomized calls, optional
//! second-level nesting, random inlined subsets, varying i-cache sizes)
//! and assert exact `Vec<(FuncId, u64)>` equality.

use std::collections::HashSet;
use std::sync::Arc;

use kcode::events::Recorder;
use kcode::func::{FrameSpec, FuncKind};
use kcode::layout::{micro_position, reference, LayoutRequest, LayoutStrategy};
use kcode::program::ProgramBuilder;
use kcode::{Body, EventStream, FuncId, ImageConfig, Program, SegId};
use netsim::rng::SplitMix64;

const CASES: u64 = 96;

struct Hub {
    program: Arc<Program>,
    root: FuncId,
    root_seg: SegId,
    /// Per leaf: (func, work seg, root's call seg, optional (sub call seg)).
    leaves: Vec<(FuncId, SegId, SegId, Option<SegId>)>,
    sub: FuncId,
    sub_seg: SegId,
}

/// A hub program: `root` calls 2..8 leaves; some leaves can call a shared
/// library `sub`.  Leaf body sizes vary so hot-set spans differ.
fn gen_hub(rng: &mut SplitMix64) -> Hub {
    let nleaves = rng.range(2, 8);
    let leaf_shapes: Vec<(bool, u16, bool)> = (0..nleaves)
        .map(|_| (rng.bool(), 8 + rng.below(180) as u16, rng.bool()))
        .collect();

    let mut pb = ProgramBuilder::new();
    let (sub, sub_seg) = pb.function("sub", FuncKind::Library, FrameSpec::leaf(), |fb| {
        fb.straight("w", Body::ops(24))
    });
    let mut leaf_funcs = Vec::new();
    for (i, (lib, size, calls_sub)) in leaf_shapes.iter().enumerate() {
        let kind = if *lib { FuncKind::Library } else { FuncKind::Path };
        let (f, (s, cs)) = pb.function(&format!("leaf{i}"), kind, FrameSpec::standard(), |fb| {
            let s = fb.straight("w", Body::ops(*size));
            let cs = calls_sub.then(|| fb.call("sub", sub, Body::ops(1)));
            (s, cs)
        });
        leaf_funcs.push((f, s, cs));
    }
    let (root, (root_seg, call_segs)) =
        pb.function("root", FuncKind::Path, FrameSpec::standard(), |fb| {
            let s = fb.straight("w", Body::ops(40));
            let calls: Vec<SegId> = leaf_funcs
                .iter()
                .enumerate()
                .map(|(i, (f, _, _))| fb.call(&format!("c{i}"), *f, Body::ops(1)))
                .collect();
            (s, calls)
        });
    let leaves = leaf_funcs
        .iter()
        .zip(&call_segs)
        .map(|(&(f, s, cs), &call)| (f, s, call, cs))
        .collect();
    Hub { program: pb.build(), root, root_seg, leaves, sub, sub_seg }
}

/// Record `root` making 10..60 randomized calls; leaves with a sub call
/// site take it on a coin flip, producing depth-3 interleavings.
fn record_hub(hub: &Hub, rng: &mut SplitMix64) -> EventStream {
    let mut rec = Recorder::new();
    rec.enter(hub.root);
    rec.seg(hub.root_seg);
    let ncalls = rng.range(10, 60);
    for _ in 0..ncalls {
        let (f, s, call, cs) = hub.leaves[rng.below(hub.leaves.len() as u64) as usize];
        rec.call(call, f);
        rec.seg(s);
        if let Some(cs) = cs {
            if rng.bool() {
                rec.call(cs, hub.sub);
                rec.seg(hub.sub_seg);
                rec.leave();
            }
        }
        rec.leave();
    }
    rec.leave();
    rec.take()
}

/// A random subset of the leaves, sometimes empty — `micro_position`
/// must skip these without disturbing the rest.
fn gen_inlined(hub: &Hub, rng: &mut SplitMix64) -> HashSet<FuncId> {
    let mut set = HashSet::new();
    if rng.bool() {
        for &(f, ..) in &hub.leaves {
            if rng.below(4) == 0 {
                set.insert(f);
            }
        }
    }
    set
}

#[test]
fn optimized_micro_position_matches_reference() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0005 ^ (case << 8));
        let hub = gen_hub(&mut rng);
        let ev = record_hub(&hub, &mut rng);
        let inlined = gen_inlined(&hub, &mut rng);
        let outline = rng.bool();
        let icache = [4 * 1024u64, 8 * 1024, 16 * 1024][rng.below(3) as usize];

        let mut req = LayoutRequest::new(
            LayoutStrategy::MicroPosition,
            ImageConfig::plain("eq").with_outline(outline),
        );
        req.icache_bytes = icache;

        let opt = micro_position(&hub.program, &ev, &req, &inlined);
        let seed = reference::micro_position(&hub.program, &ev, &req, &inlined);
        assert_eq!(
            opt, seed,
            "case {case}: optimized placements diverge from reference \
             (outline={outline}, icache={icache}, inlined={})",
            inlined.len()
        );
    }
}

#[test]
fn reference_trace_shapes_match_too() {
    // The chain-style traces of layout_props (every function activated
    // once, deep nesting) exercise the zero-weight degenerate paths.
    for case in 0..32 {
        let mut rng = SplitMix64::new(0x1A70_0006 ^ (case << 8));
        let n = rng.range(2, 9);
        let mut pb = ProgramBuilder::new();
        let mut made: Vec<(FuncId, SegId, Option<SegId>)> = Vec::new();
        let mut prev: Option<FuncId> = None;
        for i in (0..n).rev() {
            let callee = prev;
            let size = 8 + rng.below(120) as u16;
            let (f, (s, c)) =
                pb.function(&format!("f{i}"), FuncKind::Path, FrameSpec::standard(), |fb| {
                    let s = fb.straight("w", Body::ops(size));
                    let c = callee.map(|cc| fb.call("down", cc, Body::ops(2)));
                    (s, c)
                });
            made.push((f, s, c));
            prev = Some(f);
        }
        made.reverse();
        let program = pb.build();

        let mut rec = Recorder::new();
        rec.enter(made[0].0);
        rec.seg(made[0].1);
        for i in 1..n {
            rec.call(made[i - 1].2.unwrap(), made[i].0);
            rec.seg(made[i].1);
        }
        for _ in 0..n {
            rec.leave();
        }
        let ev = rec.take();

        let req = LayoutRequest::new(
            LayoutStrategy::MicroPosition,
            ImageConfig::plain("eq").with_outline(rng.bool()),
        );
        let none = HashSet::new();
        let opt = micro_position(&program, &ev, &req, &none);
        let seed = reference::micro_position(&program, &ev, &req, &none);
        assert_eq!(opt, seed, "case {case}: chain trace diverges");
    }
}
