//! Property tests over the code model: randomly generated programs and
//! event streams must replay cleanly and consistently under every
//! layout strategy.
//!
//! The inputs are drawn from a seeded SplitMix64 stream, so every run
//! exercises the same 64 cases per property — deterministic, offline,
//! and reproducible from the seed alone.

use std::sync::Arc;

use alpha_machine::InstClass;
use kcode::events::Recorder;
use kcode::func::{FrameSpec, FuncKind};
use kcode::layout::{build_image, LayoutRequest, LayoutStrategy};
use kcode::program::ProgramBuilder;
use kcode::{Body, EventStream, FuncId, Image, ImageConfig, Predict, Program, Replayer, SegId};
use netsim::rng::SplitMix64;

const CASES: u64 = 64;

/// A compact description of one generated function.
#[derive(Debug, Clone)]
struct GenFunc {
    kind: FuncKind,
    /// (segment shape, size): 0=straight, 1=checked, 2=cond, 3=loop.
    segs: Vec<(u8, u16)>,
}

/// 1..6 functions, each 1..6 segments of (shape 0..4, size 1..60).
fn gen_funcs(rng: &mut SplitMix64) -> Vec<GenFunc> {
    let nfuncs = rng.range(1, 6);
    (0..nfuncs)
        .map(|_| {
            let kind = if rng.bool() { FuncKind::Library } else { FuncKind::Path };
            let nsegs = rng.range(1, 6);
            let segs = (0..nsegs)
                .map(|_| (rng.below(4) as u8, 1 + rng.below(59) as u16))
                .collect();
            GenFunc { kind, segs }
        })
        .collect()
}

/// 1..8 branch outcomes.
fn gen_outcomes(rng: &mut SplitMix64) -> Vec<bool> {
    let n = rng.range(1, 8);
    (0..n).map(|_| rng.bool()).collect()
}

#[derive(Debug, Clone)]
struct Built {
    program: Arc<Program>,
    funcs: Vec<FuncId>,
    segs: Vec<Vec<(u8, SegId)>>,
    calls: Vec<Vec<SegId>>, // call sites from each function to the next
}

fn build(gen: &[GenFunc]) -> Built {
    let mut pb = ProgramBuilder::new();
    let mut funcs = Vec::new();
    let mut segs = Vec::new();
    let mut calls = Vec::new();
    let mut prev: Option<FuncId> = None;
    // Register bottom-up so call targets exist.
    for (i, g) in gen.iter().enumerate().rev() {
        let callee = prev;
        let (f, (ss, cs)) = pb.function(
            &format!("f{i}"),
            g.kind,
            FrameSpec::standard(),
            |fb| {
                let mut ss = Vec::new();
                let mut cs = Vec::new();
                for (j, (shape, size)) in g.segs.iter().enumerate() {
                    let id = match shape % 4 {
                        0 => fb.straight(&format!("s{j}"), Body::ops(*size)),
                        1 => fb.straight_checked(&format!("s{j}"), Body::ops(*size)),
                        2 => fb.cond(
                            &format!("s{j}"),
                            Body::ops(4),
                            Body::ops(*size),
                            Predict::False,
                        ),
                        _ => fb.loop_seg(&format!("s{j}"), Body::ops((*size).max(1)), true),
                    };
                    ss.push((shape % 4, id));
                }
                if let Some(c) = callee {
                    cs.push(fb.call("down", c, Body::ops(2)));
                }
                (ss, cs)
            },
        );
        funcs.push(f);
        segs.push(ss);
        calls.push(cs);
        prev = Some(f);
    }
    funcs.reverse();
    segs.reverse();
    calls.reverse();
    Built { program: pb.build(), funcs, segs, calls }
}

/// Record a top-to-bottom walk with the given branch outcomes.
fn record(b: &Built, outcomes: &[bool], iters: u32) -> EventStream {
    fn walk(
        b: &Built,
        i: usize,
        rec: &mut Recorder,
        outcomes: &[bool],
        iters: u32,
        oi: &mut usize,
    ) {
        for (shape, id) in &b.segs[i] {
            match shape {
                0 | 1 => rec.seg(*id),
                2 => {
                    let t = outcomes[*oi % outcomes.len()];
                    *oi += 1;
                    rec.cond(*id, t);
                }
                _ => rec.loop_iters(*id, iters),
            }
        }
        if let Some(site) = b.calls[i].first() {
            rec.call(*site, b.funcs[i + 1]);
            walk(b, i + 1, rec, outcomes, iters, oi);
            rec.leave();
        }
    }
    let mut rec = Recorder::new();
    rec.enter(b.funcs[0]);
    let mut oi = 0;
    walk(b, 0, &mut rec, outcomes, iters, &mut oi);
    rec.leave();
    rec.take()
}

fn image(b: &Built, strat: LayoutStrategy, canonical: &EventStream, outline: bool) -> Image {
    build_image(
        &b.program,
        LayoutRequest::new(strat, ImageConfig::plain("p").with_outline(outline))
            .with_canonical(canonical),
    )
}

#[test]
fn replay_succeeds_under_every_layout() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5EED_0001 ^ (case << 8));
        let gen = gen_funcs(&mut rng);
        let outcomes = gen_outcomes(&mut rng);
        let iters = rng.below(5) as u32;
        let outline = rng.bool();

        let b = build(&gen);
        let ev = record(&b, &outcomes, iters);
        assert!(ev.check_balanced().is_ok(), "case {case}: unbalanced stream");
        for strat in [
            LayoutStrategy::LinkOrder,
            LayoutStrategy::Linear,
            LayoutStrategy::Bipartite,
            LayoutStrategy::MicroPosition,
            LayoutStrategy::Bad,
        ] {
            let img = image(&b, strat, &ev, outline);
            let out = Replayer::new(&img).replay(&ev);
            assert!(out.is_ok(), "case {case} {strat:?}: {:?}", out.err());
            let out = out.unwrap();
            assert!(!out.is_empty(), "case {case} {strat:?}: empty trace");
            // Replay is deterministic.
            let again = Replayer::new(&img).replay(&ev).unwrap();
            assert_eq!(out.trace, again.trace, "case {case} {strat:?}");
        }
    }
}

#[test]
fn non_control_work_is_layout_invariant() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5EED_0002 ^ (case << 8));
        let gen = gen_funcs(&mut rng);
        let outcomes = gen_outcomes(&mut rng);
        let iters = rng.below(5) as u32;

        let b = build(&gen);
        let ev = record(&b, &outcomes, iters);
        let count_work = |img: &Image| {
            Replayer::new(img)
                .replay(&ev)
                .unwrap()
                .trace
                .iter()
                .filter(|r| {
                    !matches!(
                        r.class,
                        InstClass::BranchTaken
                            | InstClass::BranchNotTaken
                            | InstClass::Call
                            | InstClass::Ret
                    )
                })
                .count()
        };
        // Without specialization or inlining, the layout may only change
        // control-flow instructions, never the computational work.
        let a = count_work(&image(&b, LayoutStrategy::LinkOrder, &ev, true));
        let c = count_work(&image(&b, LayoutStrategy::Bipartite, &ev, true));
        let d = count_work(&image(&b, LayoutStrategy::Bad, &ev, true));
        assert_eq!(a, c, "case {case}: LinkOrder vs Bipartite");
        assert_eq!(a, d, "case {case}: LinkOrder vs Bad");
    }
}

#[test]
fn calls_and_returns_balance() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5EED_0003 ^ (case << 8));
        let gen = gen_funcs(&mut rng);
        let outcomes = gen_outcomes(&mut rng);

        let b = build(&gen);
        let ev = record(&b, &outcomes, 1);
        let img = image(&b, LayoutStrategy::Linear, &ev, true);
        let out = Replayer::new(&img).replay(&ev).unwrap();
        let calls = out.trace.iter().filter(|r| r.class == InstClass::Call).count();
        let rets = out.trace.iter().filter(|r| r.class == InstClass::Ret).count();
        // Every call returns; the root activation adds one unpaired ret.
        assert_eq!(calls + 1, rets, "case {case}: calls {calls} rets {rets}");
    }
}

#[test]
fn executed_pcs_lie_within_placed_blocks() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5EED_0004 ^ (case << 8));
        let gen = gen_funcs(&mut rng);
        let outcomes = gen_outcomes(&mut rng);

        let b = build(&gen);
        let ev = record(&b, &outcomes, 2);
        let img = image(&b, LayoutStrategy::Bipartite, &ev, true);
        let out = Replayer::new(&img).replay(&ev).unwrap();
        // Collect every placed byte range.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for fi in 0..img.program.functions().len() {
            let f = FuncId(fi as u32);
            let p = img.placement(f);
            for i in 0..p.block_addr.len() {
                ranges.push((
                    p.block_addr[i],
                    p.block_addr[i] + p.block_len[i] as u64 * 4,
                ));
            }
        }
        for rec in &out.trace {
            assert!(
                ranges.iter().any(|(s, e)| rec.pc >= *s && rec.pc < *e),
                "case {case}: pc {:#x} outside every placed block",
                rec.pc
            );
        }
    }
}
