//! Property tests over the layout engine: placements never overlap, and
//! the strategies keep their defining invariants on arbitrary programs.
//!
//! Inputs come from a seeded SplitMix64 stream: 48 deterministic cases
//! per property, reproducible from the seed alone.

use std::sync::Arc;

use kcode::events::Recorder;
use kcode::func::{FrameSpec, FuncKind};
use kcode::layout::{build_image, LayoutRequest, LayoutStrategy};
use kcode::program::ProgramBuilder;
use kcode::{Body, EventStream, FuncId, Image, ImageConfig, Program, SegId};
use netsim::rng::SplitMix64;

const CASES: u64 = 48;

/// 2..8 functions of (library?, 8..120 ops).
fn gen_sizes(rng: &mut SplitMix64) -> Vec<(bool, u16)> {
    let n = rng.range(2, 8);
    (0..n)
        .map(|_| (rng.bool(), 8 + rng.below(112) as u16))
        .collect()
}

fn build_chain(sizes: &[(bool, u16)]) -> (Arc<Program>, Vec<FuncId>, Vec<SegId>, Vec<SegId>) {
    let mut pb = ProgramBuilder::new();
    let mut funcs = Vec::new();
    let mut segs = Vec::new();
    let mut calls = Vec::new();
    let mut prev: Option<FuncId> = None;
    for (i, (lib, size)) in sizes.iter().enumerate().rev() {
        let callee = prev;
        let kind = if *lib { FuncKind::Library } else { FuncKind::Path };
        let (f, (s, c)) = pb.function(&format!("f{i}"), kind, FrameSpec::standard(), |fb| {
            let s = fb.straight_checked("w", Body::ops(*size));
            let c = callee.map(|cc| fb.call("down", cc, Body::ops(2)));
            (s, c)
        });
        funcs.push(f);
        segs.push(s);
        if let Some(c) = c {
            calls.push(c);
        }
        prev = Some(f);
    }
    funcs.reverse();
    segs.reverse();
    calls.reverse();
    (pb.build(), funcs, segs, calls)
}

fn record_walk(
    funcs: &[FuncId],
    segs: &[SegId],
    calls: &[SegId],
) -> EventStream {
    let mut rec = Recorder::new();
    rec.enter(funcs[0]);
    rec.seg(segs[0]);
    for i in 1..funcs.len() {
        rec.call(calls[i - 1], funcs[i]);
        rec.seg(segs[i]);
    }
    for _ in 1..funcs.len() {
        rec.leave();
    }
    rec.leave();
    rec.take()
}

/// All placed block spans of an image, as (start, end) byte ranges.
fn spans(image: &Image) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for fi in 0..image.program.functions().len() {
        let f = FuncId(fi as u32);
        let p = image.placement(f);
        for i in 0..p.block_addr.len() {
            if p.block_len[i] > 0 {
                out.push((p.block_addr[i], p.block_addr[i] + p.block_len[i] as u64 * 4));
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn no_layout_overlaps_blocks() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0001 ^ (case << 8));
        let sizes = gen_sizes(&mut rng);
        let outline = rng.bool();

        let (program, funcs, segs, calls) = build_chain(&sizes);
        let ev = record_walk(&funcs, &segs, &calls);
        for strat in [
            LayoutStrategy::LinkOrder,
            LayoutStrategy::Linear,
            LayoutStrategy::Bipartite,
            LayoutStrategy::MicroPosition,
            LayoutStrategy::Bad,
        ] {
            let image = build_image(
                &program,
                LayoutRequest::new(strat, ImageConfig::plain("p").with_outline(outline))
                    .with_canonical(&ev),
            );
            let sp = spans(&image);
            for w in sp.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "case {case} {strat:?}: blocks overlap: {:x?} vs {:x?}",
                    w[0],
                    w[1]
                );
            }
            assert!(image.code_end >= sp.last().map(|(_, e)| *e).unwrap_or(0));
        }
    }
}

#[test]
fn linear_layout_orders_by_first_call() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0002 ^ (case << 8));
        let sizes = gen_sizes(&mut rng);

        let (program, funcs, segs, calls) = build_chain(&sizes);
        let ev = record_walk(&funcs, &segs, &calls);
        let image = build_image(
            &program,
            LayoutRequest::new(LayoutStrategy::Linear, ImageConfig::plain("lin"))
                .with_canonical(&ev),
        );
        for w in funcs.windows(2) {
            assert!(
                image.entry_addr(w[0]) < image.entry_addr(w[1]),
                "case {case}: call order must be address order"
            );
        }
    }
}

#[test]
fn bad_layout_aliases_every_hot_function() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0003 ^ (case << 8));
        let sizes = gen_sizes(&mut rng);

        let (program, funcs, segs, calls) = build_chain(&sizes);
        let ev = record_walk(&funcs, &segs, &calls);
        let image = build_image(
            &program,
            LayoutRequest::new(
                LayoutStrategy::Bad,
                ImageConfig::plain("bad").with_outline(true),
            )
            .with_canonical(&ev),
        );
        let icache = 8 * 1024u64;
        let idx0 = image.entry_addr(funcs[0]) % icache;
        for f in &funcs[1..] {
            assert_eq!(image.entry_addr(*f) % icache, idx0, "case {case}");
        }
    }
}

#[test]
fn bipartite_keeps_library_out_of_the_path_window() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0004 ^ (case << 8));
        // The invariant only bites on mixed chains; redraw until the
        // sample has both kinds (proptest's prop_assume did the same).
        let sizes = loop {
            let s = gen_sizes(&mut rng);
            if s.iter().any(|(lib, _)| *lib) && s.iter().any(|(lib, _)| !*lib) {
                break s;
            }
        };

        let (program, funcs, segs, calls) = build_chain(&sizes);
        let ev = record_walk(&funcs, &segs, &calls);
        let image = build_image(
            &program,
            LayoutRequest::new(
                LayoutStrategy::Bipartite,
                ImageConfig::plain("bip").with_outline(true),
            )
            .with_canonical(&ev),
        );
        let icache = 8 * 1024u64;
        // Every library entry index is above every path entry index.
        let max_path = funcs
            .iter()
            .filter(|f| program.function(**f).kind == FuncKind::Path)
            .map(|f| image.entry_addr(*f) % icache)
            .max();
        let min_lib = funcs
            .iter()
            .filter(|f| program.function(**f).kind == FuncKind::Library)
            .map(|f| image.entry_addr(*f) % icache)
            .min();
        if let (Some(p), Some(l)) = (max_path, min_lib) {
            assert!(l > p, "case {case}: library index {l} must sit above path max {p}");
        }
    }
}
