//! Property tests over the layout engine: placements never overlap, and
//! the strategies keep their defining invariants on arbitrary programs.
//!
//! Inputs come from a seeded SplitMix64 stream: 48 deterministic cases
//! per property, reproducible from the seed alone.

use std::sync::Arc;

use kcode::events::Recorder;
use kcode::func::{FrameSpec, FuncKind};
use kcode::layout::{build_image, micro_position, LayoutRequest, LayoutStrategy};
use kcode::program::ProgramBuilder;
use kcode::transform::outline::hot_laid_size;
use kcode::{Body, EventStream, FuncId, Image, ImageConfig, Program, SegId};
use netsim::rng::SplitMix64;

const CASES: u64 = 48;

/// 2..8 functions of (library?, 8..120 ops).
fn gen_sizes(rng: &mut SplitMix64) -> Vec<(bool, u16)> {
    let n = rng.range(2, 8);
    (0..n)
        .map(|_| (rng.bool(), 8 + rng.below(112) as u16))
        .collect()
}

fn build_chain(sizes: &[(bool, u16)]) -> (Arc<Program>, Vec<FuncId>, Vec<SegId>, Vec<SegId>) {
    let mut pb = ProgramBuilder::new();
    let mut funcs = Vec::new();
    let mut segs = Vec::new();
    let mut calls = Vec::new();
    let mut prev: Option<FuncId> = None;
    for (i, (lib, size)) in sizes.iter().enumerate().rev() {
        let callee = prev;
        let kind = if *lib { FuncKind::Library } else { FuncKind::Path };
        let (f, (s, c)) = pb.function(&format!("f{i}"), kind, FrameSpec::standard(), |fb| {
            let s = fb.straight_checked("w", Body::ops(*size));
            let c = callee.map(|cc| fb.call("down", cc, Body::ops(2)));
            (s, c)
        });
        funcs.push(f);
        segs.push(s);
        if let Some(c) = c {
            calls.push(c);
        }
        prev = Some(f);
    }
    funcs.reverse();
    segs.reverse();
    calls.reverse();
    (pb.build(), funcs, segs, calls)
}

fn record_walk(
    funcs: &[FuncId],
    segs: &[SegId],
    calls: &[SegId],
) -> EventStream {
    let mut rec = Recorder::new();
    rec.enter(funcs[0]);
    rec.seg(segs[0]);
    for i in 1..funcs.len() {
        rec.call(calls[i - 1], funcs[i]);
        rec.seg(segs[i]);
    }
    for _ in 1..funcs.len() {
        rec.leave();
    }
    rec.leave();
    rec.take()
}

/// All placed block spans of an image, as (start, end) byte ranges.
fn spans(image: &Image) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for fi in 0..image.program.functions().len() {
        let f = FuncId(fi as u32);
        let p = image.placement(f);
        for i in 0..p.block_addr.len() {
            if p.block_len[i] > 0 {
                out.push((p.block_addr[i], p.block_addr[i] + p.block_len[i] as u64 * 4));
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn no_layout_overlaps_blocks() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0001 ^ (case << 8));
        let sizes = gen_sizes(&mut rng);
        let outline = rng.bool();

        let (program, funcs, segs, calls) = build_chain(&sizes);
        let ev = record_walk(&funcs, &segs, &calls);
        for strat in [
            LayoutStrategy::LinkOrder,
            LayoutStrategy::Linear,
            LayoutStrategy::Bipartite,
            LayoutStrategy::MicroPosition,
            LayoutStrategy::Bad,
        ] {
            let image = build_image(
                &program,
                LayoutRequest::new(strat, ImageConfig::plain("p").with_outline(outline))
                    .with_canonical(&ev),
            );
            let sp = spans(&image);
            for w in sp.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "case {case} {strat:?}: blocks overlap: {:x?} vs {:x?}",
                    w[0],
                    w[1]
                );
            }
            assert!(image.code_end >= sp.last().map(|(_, e)| *e).unwrap_or(0));
        }
    }
}

#[test]
fn linear_layout_orders_by_first_call() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0002 ^ (case << 8));
        let sizes = gen_sizes(&mut rng);

        let (program, funcs, segs, calls) = build_chain(&sizes);
        let ev = record_walk(&funcs, &segs, &calls);
        let image = build_image(
            &program,
            LayoutRequest::new(LayoutStrategy::Linear, ImageConfig::plain("lin"))
                .with_canonical(&ev),
        );
        for w in funcs.windows(2) {
            assert!(
                image.entry_addr(w[0]) < image.entry_addr(w[1]),
                "case {case}: call order must be address order"
            );
        }
    }
}

#[test]
fn bad_layout_aliases_every_hot_function() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0003 ^ (case << 8));
        let sizes = gen_sizes(&mut rng);

        let (program, funcs, segs, calls) = build_chain(&sizes);
        let ev = record_walk(&funcs, &segs, &calls);
        let image = build_image(
            &program,
            LayoutRequest::new(
                LayoutStrategy::Bad,
                ImageConfig::plain("bad").with_outline(true),
            )
            .with_canonical(&ev),
        );
        let icache = 8 * 1024u64;
        let idx0 = image.entry_addr(funcs[0]) % icache;
        for f in &funcs[1..] {
            assert_eq!(image.entry_addr(*f) % icache, idx0, "case {case}");
        }
    }
}

#[test]
fn micro_position_is_rerun_invariant() {
    // Placements must be a pure function of (program, trace, request):
    // no HashMap/HashSet iteration order may leak into the output.
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0007 ^ (case << 8));
        let sizes = gen_sizes(&mut rng);
        let outline = rng.bool();

        let (program, funcs, segs, calls) = build_chain(&sizes);
        // Several episodes of the same walk: consecutive activations of
        // every function with the whole chain in between, so the
        // interleaving weights are dense and non-trivial.
        let mut events = Vec::new();
        for _ in 0..3 {
            events.extend(record_walk(&funcs, &segs, &calls).events);
        }
        let ev = EventStream { events };

        let req = LayoutRequest::new(
            LayoutStrategy::MicroPosition,
            ImageConfig::plain("rr").with_outline(outline),
        );
        let none = std::collections::HashSet::new();
        let first = micro_position(&program, &ev, &req, &none);
        for _ in 0..3 {
            let again = micro_position(&program, &ev, &req, &none);
            assert_eq!(first, again, "case {case}: re-run changed placements");
        }
    }
}

#[test]
fn zero_weight_ties_go_to_the_lowest_address() {
    // Every function runs once as its own top-level episode, so no
    // function ever has two activity entries (a nested walk would:
    // callers resume after returns) and all interleaving weights are
    // zero.  Every candidate offset then costs the same — the tie-break
    // must pick offset 0, and the address search the lowest free cache
    // frame, so placements stack one i-cache frame apart in order.
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0008 ^ (case << 8));
        let sizes = gen_sizes(&mut rng);

        let (program, funcs, segs, _calls) = build_chain(&sizes);
        let mut rec = Recorder::new();
        for (f, s) in funcs.iter().zip(&segs) {
            rec.enter(*f);
            rec.seg(*s);
            rec.leave();
        }
        let ev = rec.take();
        let req = LayoutRequest::new(
            LayoutStrategy::MicroPosition,
            ImageConfig::plain("tie").with_outline(true),
        );
        let none = std::collections::HashSet::new();
        let placements = micro_position(&program, &ev, &req, &none);

        let icache = req.icache_bytes;
        for (k, (f, addr)) in placements.iter().enumerate() {
            assert_eq!(
                addr % icache,
                0,
                "case {case}: {f:?} must sit at the lowest (zero) offset"
            );
            assert_eq!(
                *addr,
                Image::CODE_BASE + k as u64 * icache,
                "case {case}: {f:?} must take the lowest free frame"
            );
        }
    }
}

#[test]
fn interleaved_functions_pack_offsets_cumulatively() {
    // root alternates calls to a and b: every pair has positive weight,
    // so a's first zero-cost offset is exactly root's hot span, and b's
    // is root's plus a's — the lowest-offset tie-break packs the cache.
    let mut pb = ProgramBuilder::new();
    let (fa, sa) = pb.function("a", FuncKind::Library, FrameSpec::leaf(), |fb| {
        fb.straight("w", Body::ops(90))
    });
    let (fb_, sb) = pb.function("b", FuncKind::Library, FrameSpec::leaf(), |fb| {
        fb.straight("w", Body::ops(150))
    });
    let (root, (sr, ca, cb)) =
        pb.function("root", FuncKind::Path, FrameSpec::standard(), |fb| {
            let s = fb.straight("w", Body::ops(60));
            let ca = fb.call("a", fa, Body::ops(1));
            let cb = fb.call("b", fb_, Body::ops(1));
            (s, ca, cb)
        });
    let program = pb.build();

    let mut rec = Recorder::new();
    rec.enter(root);
    rec.seg(sr);
    for _ in 0..8 {
        rec.call(ca, fa);
        rec.seg(sa);
        rec.leave();
        rec.call(cb, fb_);
        rec.seg(sb);
        rec.leave();
    }
    rec.leave();
    let ev = rec.take();

    let req = LayoutRequest::new(
        LayoutStrategy::MicroPosition,
        ImageConfig::plain("pack").with_outline(true),
    );
    let none = std::collections::HashSet::new();
    let placements = micro_position(&program, &ev, &req, &none);

    let block = 32u64;
    let nsets = |f: FuncId| {
        ((hot_laid_size(program.function(f), true) as u64 * 4).div_ceil(block)).max(1)
    };
    let offsets: std::collections::HashMap<FuncId, u64> = placements
        .iter()
        .map(|(f, addr)| (*f, (addr % req.icache_bytes) / block))
        .collect();
    assert_eq!(offsets[&root], 0, "first placed function starts the packing");
    assert_eq!(offsets[&fa], nsets(root), "a packs right above root");
    assert_eq!(offsets[&fb_], nsets(root) + nsets(fa), "b packs above a");
}

#[test]
fn bipartite_keeps_library_out_of_the_path_window() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A70_0004 ^ (case << 8));
        // The invariant only bites on mixed chains; redraw until the
        // sample has both kinds (proptest's prop_assume did the same).
        let sizes = loop {
            let s = gen_sizes(&mut rng);
            if s.iter().any(|(lib, _)| *lib) && s.iter().any(|(lib, _)| !*lib) {
                break s;
            }
        };

        let (program, funcs, segs, calls) = build_chain(&sizes);
        let ev = record_walk(&funcs, &segs, &calls);
        let image = build_image(
            &program,
            LayoutRequest::new(
                LayoutStrategy::Bipartite,
                ImageConfig::plain("bip").with_outline(true),
            )
            .with_canonical(&ev),
        );
        let icache = 8 * 1024u64;
        // Every library entry index is above every path entry index.
        let max_path = funcs
            .iter()
            .filter(|f| program.function(**f).kind == FuncKind::Path)
            .map(|f| image.entry_addr(*f) % icache)
            .max();
        let min_lib = funcs
            .iter()
            .filter(|f| program.function(**f).kind == FuncKind::Library)
            .map(|f| image.entry_addr(*f) % icache)
            .min();
        if let (Some(p), Some(l)) = (max_path, min_lib) {
            assert!(l > p, "case {case}: library index {l} must sit above path max {p}");
        }
    }
}
