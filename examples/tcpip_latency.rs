//! The paper's headline TCP/IP experiment: all six configurations,
//! end-to-end latency plus the CPI decomposition and cache statistics.
//!
//! ```text
//! cargo run --release --example tcpip_latency
//! ```

use protolat::core::config::Version;
use protolat::core::harness::run_tcpip;
use protolat::core::timing::{cold_client_stats, time_roundtrip};
use protolat::core::world::TcpIpWorld;
use protolat::protocols::StackOptions;

fn main() {
    println!("TCP/IP latency: BAD / STD / OUT / CLO / PIN / ALL\n");

    let run = run_tcpip(TcpIpWorld::build(StackOptions::improved()), 2);
    let canonical = run.episodes.client_trace();
    let f_tx = run.world.lance_model.f_tx;

    println!(
        "{:<5} {:>9} {:>9} {:>8} {:>6} {:>6}   {:>6} {:>6} {:>6}",
        "ver", "e2e[us]", "Tp[us]", "insts", "iCPI", "mCPI", "i-miss", "i-repl", "b-acc"
    );
    for v in Version::all() {
        let img = v.build_tcpip(&run.world, &canonical);
        let t = time_roundtrip(&run.episodes, &img, &img, f_tx);
        let cold = cold_client_stats(&run.episodes, &img);
        println!(
            "{:<5} {:>9.1} {:>9.1} {:>8} {:>6.2} {:>6.2}   {:>6} {:>6} {:>6}",
            v.name(),
            t.e2e_us,
            t.tp_us(),
            t.client.instructions,
            t.client.icpi(),
            t.client.mcpi(),
            cold.icache.misses,
            cold.icache.replacement_misses,
            cold.bcache.accesses,
        );
    }

    println!(
        "\npaper Table 4 (TCP/IP): BAD 498.8 / STD 351.0 / OUT 336.1 / \
         CLO 325.5 / PIN 317.1 / ALL 310.8 us"
    );
}
