//! Quickstart: measure one TCP/IP roundtrip on the simulated DEC
//! 3000/600 and print the latency breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use protolat::core::config::{StackKind, Version};
use protolat::core::experiments::latency::measure;
use protolat::protocols::StackOptions;

fn main() {
    println!("protolat quickstart — one TCP/IP ping-pong roundtrip\n");

    for version in [Version::Std, Version::All] {
        let r = measure(StackKind::TcpIp, version, StackOptions::improved());
        let t = &r.timing;
        println!("version {} ({}):", version.name(), match version {
            Version::Std => "improved kernel, no layout techniques",
            _ => "outlining + cloning + path-inlining",
        });
        println!("  end-to-end roundtrip : {:>7.1} us", r.end_to_end_us);
        println!("  client processing    : {:>7.1} us (traced code)", t.tp_us());
        println!("  trace length         : {:>7} instructions", t.client.instructions);
        println!("  iCPI                 : {:>7.2}", t.client.icpi());
        println!("  mCPI                 : {:>7.2}  <- the paper's key metric", t.client.mcpi());
        println!(
            "  i-cache miss rate    : {:>6.1} %",
            t.client.icache.miss_rate() * 100.0
        );
        println!();
    }

    let std = measure(StackKind::TcpIp, Version::Std, StackOptions::improved());
    let all = measure(StackKind::TcpIp, Version::All, StackOptions::improved());
    println!(
        "The three techniques cut client processing time by {:.1} us ({:.0}%)\n\
         and mCPI by a factor of {:.2} — run `cargo run --release -p\n\
         protolat-core --bin repro` for every table and figure of the paper.",
        std.timing.tp_us() - all.timing.tp_us(),
        (1.0 - all.timing.tp_us() / std.timing.tp_us()) * 100.0,
        std.timing.client.mcpi() / all.timing.client.mcpi(),
    );
}
