//! Dump an annotated execution trace (the paper published its raw
//! TCP/IP traces via anonymous FTP; this is our equivalent) and a pcap
//! capture of the wire exchange.
//!
//! ```text
//! cargo run --release --example trace_dump
//! ```
//!
//! Writes `tcpip_roundtrip.pcap` to the working directory — open it in
//! Wireshark to see the SYN handshake and the ping-pong segments.

use protolat::core::config::Version;
use protolat::core::harness::run_tcpip;
use protolat::core::timing::replay_trace;
use protolat::core::world::TcpIpWorld;
use protolat::kcode::Symbolizer;
use protolat::netsim::lance::LanceTiming;
use protolat::netsim::PcapWriter;
use protolat::protocols::StackOptions;

fn main() {
    // 1. Annotated instruction trace of the client's input path.
    let run = run_tcpip(TcpIpWorld::build(StackOptions::improved()), 2);
    let canonical = run.episodes.client_trace();
    let img = Version::Std.build_tcpip(&run.world, &canonical);
    let trace = replay_trace(&img, &run.episodes.client_in);
    let sym = Symbolizer::new(&img);

    println!(
        "client input path, STD layout ({} instructions), by function:\n",
        trace.len()
    );
    print!("{}", sym.annotate(&trace));

    // 2. A pcap capture of a fresh exchange (handshake + 3 pings).
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    let mut pcap = PcapWriter::new();
    let mut now = 0u64;

    server.listen();
    client.connect(now);
    for _ in 0..12 {
        for b in client.take_tx() {
            pcap.record(now, &b);
            now += 105_000;
            server.deliver_wire(&b, now);
        }
        for b in server.take_tx() {
            pcap.record(now, &b);
            now += 105_000;
            client.deliver_wire(&b, now);
        }
        if client.is_established() && client.delivered.len() < 3 {
            client.app_send(b"ping", now);
        }
        client.take_episode();
        server.take_episode();
        if client.delivered.len() >= 3 {
            break;
        }
    }

    let path = std::path::Path::new("tcpip_roundtrip.pcap");
    pcap.save(path).expect("write pcap");
    println!(
        "\nwrote {} frames ({} bytes) to {} — handshake plus {} echoed pings",
        pcap.len(),
        pcap.as_bytes().len(),
        path.display(),
        client.delivered.len(),
    );
}
