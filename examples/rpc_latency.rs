//! The RPC-stack experiment: zero-byte remote procedure calls through
//! the six-protocol Sprite-style stack, client side varying, server
//! fixed at the ALL configuration (the paper's methodology).
//!
//! ```text
//! cargo run --release --example rpc_latency
//! ```

use protolat::core::config::Version;
use protolat::core::harness::run_rpc;
use protolat::core::timing::{time_roundtrip_with, RPC_UNTRACED_PER_HOP_US};
use protolat::core::world::RpcWorld;
use protolat::protocols::StackOptions;

fn main() {
    println!("RPC latency: zero-byte calls, server fixed at ALL\n");

    let run = run_rpc(RpcWorld::build(StackOptions::improved()), 2);
    let canonical = run.episodes.client_trace();
    let f_tx = run.world.lance_model.f_tx;
    let server_img = Version::All.build_rpc(&run.world, &canonical);

    println!(
        "{:<5} {:>9} {:>9} {:>8} {:>6} {:>6}",
        "ver", "e2e[us]", "Tp[us]", "insts", "iCPI", "mCPI"
    );
    for v in Version::all() {
        let img = v.build_rpc(&run.world, &canonical);
        let t = time_roundtrip_with(
            &run.episodes,
            &img,
            &server_img,
            f_tx,
            RPC_UNTRACED_PER_HOP_US,
        );
        println!(
            "{:<5} {:>9.1} {:>9.1} {:>8} {:>6.2} {:>6.2}",
            v.name(),
            t.e2e_us,
            t.tp_us(),
            t.client.instructions,
            t.client.icpi(),
            t.client.mcpi(),
        );
    }

    println!(
        "\nThe RPC stack is 'many small protocols': path-inlining (PIN) \
         buys more here\nthan for TCP/IP, exactly as the paper reports \
         (its Table 4: PIN saves 27.3 us\nof client latency over OUT, \
         versus 9.5 us for TCP/IP)."
    );
}
