//! Layout explorer: compare every placement strategy — including the
//! two the six paper configurations don't expose directly
//! (strict-linear and trace-driven micro-positioning) — on the TCP/IP
//! stack, and render their i-cache occupancy maps.
//!
//! Reproduces the paper's §3.2 finding: micro-positioning minimizes
//! replacement misses but "usually performs somewhat worse than a
//! bipartite layout and sometimes almost equally well, but never
//! better".
//!
//! ```text
//! cargo run --release --example layout_explorer
//! ```

use protolat::core::harness::run_tcpip;
use protolat::core::timing::{cold_client_stats, time_roundtrip};
use protolat::core::world::TcpIpWorld;
use protolat::kcode::layout::{build_image, LayoutRequest, LayoutStrategy};
use protolat::kcode::ImageConfig;
use protolat::protocols::StackOptions;

fn main() {
    println!("Layout strategies on the TCP/IP stack (all with outlining)\n");

    let run = run_tcpip(TcpIpWorld::build(StackOptions::improved()), 2);
    let canonical = run.episodes.client_trace();
    let f_tx = run.world.lance_model.f_tx;

    let strategies = [
        ("link-order", LayoutStrategy::LinkOrder),
        ("linear", LayoutStrategy::Linear),
        ("bipartite", LayoutStrategy::Bipartite),
        ("micro-pos", LayoutStrategy::MicroPosition),
        ("pessimal", LayoutStrategy::Bad),
    ];

    println!(
        "{:<11} {:>9} {:>9} {:>6} {:>7} {:>7}",
        "strategy", "e2e[us]", "Tp[us]", "mCPI", "i-miss", "i-repl"
    );
    let mut results = Vec::new();
    for (name, strat) in strategies {
        let img = build_image(
            &run.world.program,
            LayoutRequest::new(
                strat,
                ImageConfig::plain(name)
                    .with_outline(true)
                    .with_specialization(strat != LayoutStrategy::LinkOrder),
            )
            .with_canonical(&canonical),
        );
        let t = time_roundtrip(&run.episodes, &img, &img, f_tx);
        let cold = cold_client_stats(&run.episodes, &img);
        println!(
            "{:<11} {:>9.1} {:>9.1} {:>6.2} {:>7} {:>7}",
            name,
            t.e2e_us,
            t.tp_us(),
            t.client.mcpi(),
            cold.icache.misses,
            cold.icache.replacement_misses,
        );
        results.push((name, t.e2e_us, cold.icache.replacement_misses));
    }

    let micro = results.iter().find(|r| r.0 == "micro-pos").unwrap();
    let bipartite = results.iter().find(|r| r.0 == "bipartite").unwrap();
    println!(
        "\nmicro-positioning repl misses: {} vs bipartite {} — yet end-to-end \
         {:.1} vs {:.1} us:\nminimizing replacement misses is not the same as \
         minimizing latency (§3.2).",
        micro.2, bipartite.2, micro.1, bipartite.1
    );
}
