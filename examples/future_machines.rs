//! The paper's §5 concluding remarks, quantified: the memory wall
//! (266 MHz core on a 66 MB/s memory system) and modern low-latency
//! network adaptors both magnify the value of the mCPI-reducing
//! techniques.
//!
//! ```text
//! cargo run --release --example future_machines
//! ```

fn main() {
    println!("{}", protolat::core::experiments::future::run().render());
    println!(
        "The paper, 1996: \"the impact of mCPI reducing techniques is\n\
         becoming increasingly important as the gap between processor and\n\
         memory speeds widens\" — thirty years of the memory wall agree."
    );
}
