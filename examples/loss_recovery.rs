//! Loss recovery: inject frame drops and corruption on the wire and
//! watch both stacks recover — TCP via its retransmission timer, the
//! RPC CHAN protocol via its request timeout.
//!
//! ```text
//! cargo run --release --example loss_recovery
//! ```

use protolat::netsim::fault::{FaultInjector, Fate};
use protolat::netsim::Ns;
use protolat::core::world::{RpcWorld, TcpIpWorld};
use protolat::protocols::tcpip::host::RTO_NS;
use protolat::protocols::rpc::CHAN_RTO_NS;
use protolat::protocols::StackOptions;

fn main() {
    println!("Loss recovery under fault injection\n");
    tcp_demo();
    println!();
    rpc_demo();
}

fn tcp_demo() {
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = protolat::netsim::lance::LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    let mut inj = FaultInjector::new(0.3, 0.1, 42);
    let mut now: Ns = 0;

    server.listen();
    client.connect(now);

    let mut sent = 0u32;
    let mut to_send = 20u32;
    println!("TCP/IP: 20 one-byte pings through a 30%-drop, 10%-corrupt wire");
    let mut steps = 0;
    while client.delivered.len() < 20 && steps < 10_000 {
        steps += 1;
        if client.is_established() && sent < to_send && client.tcb.rexmit_q.is_empty() {
            client.app_send(b"p", now);
            sent += 1;
        }
        // Ferry frames with faults.
        for mut bytes in client.take_tx() {
            match inj.process(&mut bytes) {
                Fate::Dropped => {}
                _ => {
                    server.deliver_wire(&bytes, now + 105_000);
                }
            }
        }
        for mut bytes in server.take_tx() {
            match inj.process(&mut bytes) {
                Fate::Dropped => {}
                _ => {
                    client.deliver_wire(&bytes, now + 105_000);
                }
            }
        }
        now += RTO_NS / 2;
        client.poll_timers(now);
        server.poll_timers(now);
        client.take_episode();
        server.take_episode();
        if sent == to_send && client.tcb.rexmit_q.is_empty() && client.delivered.len() < 20 {
            to_send += 0; // waiting on retransmissions
        }
    }
    println!(
        "  delivered {}/20 echoes after {} retransmissions \
         (drops {}, corrupted {})",
        client.delivered.len(),
        client.tcb.rexmits + server.tcb.rexmits,
        inj.stats.dropped,
        inj.stats.corrupted,
    );
    assert!(client.delivered.len() >= 15, "TCP must make progress under loss");
}

fn rpc_demo() {
    let world = RpcWorld::build(StackOptions::improved());
    let timing = protolat::netsim::lance::LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    let mut inj = FaultInjector::new(0.3, 0.0, 7);
    let mut now: Ns = 0;

    println!("RPC: 10 zero-byte calls through a 30%-drop wire");
    let mut retries = 0u32;
    for _ in 0..10 {
        let done_before = client.completed;
        client.call(&[], now);
        client.take_episode();
        let mut guard = 0;
        while client.completed == done_before && guard < 50 {
            guard += 1;
            for mut bytes in client.take_tx() {
                if inj.process(&mut bytes) != Fate::Dropped {
                    server.deliver_wire(&bytes, now + 105_000);
                }
            }
            for mut bytes in server.take_tx() {
                if inj.process(&mut bytes) != Fate::Dropped {
                    client.deliver_wire(&bytes, now + 105_000);
                }
            }
            server.take_episode();
            client.take_episode();
            if client.completed == done_before {
                now += CHAN_RTO_NS;
                client.poll_timers(now);
                client.take_episode();
                retries += 1;
            }
        }
        now += 1_000_000;
    }
    println!(
        "  completed {}/10 calls with {} CHAN timeouts (drops {})",
        client.completed, retries, inj.stats.dropped
    );
    assert_eq!(client.completed, 10, "every call must eventually complete");
}
