//! Bulk data paths: IP fragmentation/reassembly (TCP/IP) and BLAST
//! multi-fragment messages (RPC) — the code the latency test never
//! enters, exercised end to end.

use protolat::core::world::{RpcWorld, TcpIpWorld};
use protolat::netsim::lance::LanceTiming;
use protolat::protocols::rpc::FRAG_SIZE;
use protolat::protocols::StackOptions;

#[test]
fn large_tcp_segment_fragments_and_reassembles() {
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    server.listen();
    client.connect(0);
    for _ in 0..6 {
        for b in client.take_tx() {
            server.deliver_wire(&b, 0);
        }
        for b in server.take_tx() {
            client.deliver_wire(&b, 0);
        }
    }
    assert!(client.is_established());
    client.take_episode();
    server.take_episode();

    // 4 KB payload: > MTU, so IP must fragment into three frames.
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    client.app_send(&payload, 0);
    let frames = client.take_tx();
    assert!(
        frames.len() >= 3,
        "4KB segment must fragment (got {} frames)",
        frames.len()
    );
    for b in &frames {
        server.deliver_wire(b, 0);
    }
    assert_eq!(server.delivered.len(), 1, "reassembled exactly once");
    assert_eq!(server.delivered[0], payload, "payload intact end to end");
    client.take_episode();
    server.take_episode();
}

#[test]
fn fragments_reassemble_out_of_order() {
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    server.listen();
    client.connect(0);
    for _ in 0..6 {
        for b in client.take_tx() {
            server.deliver_wire(&b, 0);
        }
        for b in server.take_tx() {
            client.deliver_wire(&b, 0);
        }
    }
    client.take_episode();
    server.take_episode();

    let payload: Vec<u8> = (0..3500u32).map(|i| (i % 13) as u8).collect();
    client.app_send(&payload, 0);
    let mut frames = client.take_tx();
    frames.reverse(); // deliver fragments back to front
    for b in &frames {
        server.deliver_wire(b, 0);
    }
    assert_eq!(server.delivered.len(), 1);
    assert_eq!(server.delivered[0], payload);
    client.take_episode();
    server.take_episode();
}

#[test]
fn missing_fragment_stalls_reassembly() {
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    server.listen();
    client.connect(0);
    for _ in 0..6 {
        for b in client.take_tx() {
            server.deliver_wire(&b, 0);
        }
        for b in server.take_tx() {
            client.deliver_wire(&b, 0);
        }
    }
    client.take_episode();
    server.take_episode();

    let payload = vec![7u8; 4000];
    client.app_send(&payload, 0);
    let frames = client.take_tx();
    assert!(frames.len() >= 3);
    // Withhold the middle fragment.
    for (i, b) in frames.iter().enumerate() {
        if i != 1 {
            server.deliver_wire(b, 0);
        }
    }
    assert_eq!(server.delivered.len(), 0, "incomplete datagram stays queued");
    // The missing piece arrives late: reassembly completes.
    server.deliver_wire(&frames[1], 0);
    assert_eq!(server.delivered.len(), 1);
    assert_eq!(server.delivered[0], payload);
    client.take_episode();
    server.take_episode();
}

#[test]
fn rpc_large_argument_uses_blast_fragmentation() {
    let world = RpcWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);

    // Three BLAST fragments' worth of argument data.
    let args: Vec<u8> = (0..(FRAG_SIZE * 2 + 100))
        .map(|i| (i % 241) as u8)
        .collect();
    client.call(&args, 0);
    client.take_episode();
    let frames = client.take_tx();
    assert!(
        frames.len() >= 3,
        "BLAST must fragment (got {} frames)",
        frames.len()
    );
    for b in &frames {
        server.deliver_wire(b, 0);
    }
    server.take_episode();
    assert_eq!(server.completed, 1, "request reassembled and served");
    assert_eq!(server.delivered[0], args, "arguments intact");

    // The echo reply is equally large and fragments on the way back.
    let replies = server.take_tx();
    assert!(replies.len() >= 3);
    for b in &replies {
        client.deliver_wire(b, 0);
    }
    client.take_episode();
    assert_eq!(client.completed, 1);
    assert_eq!(client.delivered[0], args, "result intact");
}

#[test]
fn throughput_is_wire_limited_not_cpu_limited() {
    // §4.1: the techniques never hurt throughput.  On 10 Mb/s Ethernet a
    // 1 KB segment takes ~850 µs of wire time, far beyond any version's
    // per-packet processing.
    let report = protolat::core::experiments::throughput::run();
    for row in &report.rows {
        assert!(row.wire_us > 500.0);
        assert!(row.proc_us < row.wire_us, "{:?}", row.version);
    }
}
