//! TCP connection teardown: the four-way FIN handshake, in both the
//! orderly and the lossy variants.

use protolat::core::world::TcpIpWorld;
use protolat::netsim::lance::LanceTiming;
use protolat::protocols::tcpip::host::RTO_NS;
use protolat::protocols::tcpip::{TcpIpHost, TcpState};
use protolat::protocols::StackOptions;

fn established_pair() -> (TcpIpHost, TcpIpHost) {
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    server.listen();
    client.connect(0);
    for _ in 0..6 {
        for b in client.take_tx() {
            server.deliver_wire(&b, 0);
        }
        for b in server.take_tx() {
            client.deliver_wire(&b, 0);
        }
    }
    assert!(client.is_established() && server.is_established());
    client.take_episode();
    server.take_episode();
    (client, server)
}

fn ferry(client: &mut TcpIpHost, server: &mut TcpIpHost, now: u64) {
    for _ in 0..6 {
        let mut progress = false;
        for b in client.take_tx() {
            server.deliver_wire(&b, now);
            progress = true;
        }
        for b in server.take_tx() {
            client.deliver_wire(&b, now);
            progress = true;
        }
        client.poll_timers(now);
        server.poll_timers(now);
        if !progress {
            break;
        }
    }
    client.take_episode();
    server.take_episode();
}

#[test]
fn orderly_close_walks_the_state_machine() {
    let (mut client, mut server) = established_pair();

    // Client initiates; server half-closes on seeing the FIN.
    client.close(0);
    assert_eq!(client.tcb.state, TcpState::FinWait1);
    for b in client.take_tx() {
        server.deliver_wire(&b, 0);
    }
    assert_eq!(server.tcb.state, TcpState::CloseWait);
    // The server's delayed ACK fires, moving the client to FIN_WAIT_2.
    server.poll_timers(2_000_000);
    for b in server.take_tx() {
        client.deliver_wire(&b, 0);
    }
    assert_eq!(client.tcb.state, TcpState::FinWait2);

    // Server closes its half.
    server.close(0);
    assert_eq!(server.tcb.state, TcpState::LastAck);
    for b in server.take_tx() {
        client.deliver_wire(&b, 0);
    }
    assert_eq!(client.tcb.state, TcpState::TimeWait);
    for b in client.take_tx() {
        server.deliver_wire(&b, 0);
    }
    assert_eq!(server.tcb.state, TcpState::Closed);
    client.take_episode();
    server.take_episode();
}

#[test]
fn lost_fin_is_retransmitted() {
    let (mut client, mut server) = established_pair();
    client.close(0);
    let _lost = client.take_tx(); // drop the FIN
    assert_eq!(client.tcb.state, TcpState::FinWait1);

    let now = RTO_NS + 1;
    client.poll_timers(now);
    assert!(client.tcb.rexmits >= 1, "FIN must be retransmitted");
    for b in client.take_tx() {
        server.deliver_wire(&b, now);
    }
    assert_eq!(server.tcb.state, TcpState::CloseWait);
    client.take_episode();
    server.take_episode();
}

#[test]
fn data_still_flows_before_close_and_teardown_after() {
    let (mut client, mut server) = established_pair();
    // A normal exchange first.
    client.app_send(b"final", 0);
    ferry(&mut client, &mut server, 0);
    assert_eq!(client.delivered.len(), 1);

    // Then a full bidirectional close.
    client.close(1_000_000);
    ferry(&mut client, &mut server, 3_000_000);
    server.close(4_000_000);
    ferry(&mut client, &mut server, 6_000_000);
    assert_eq!(server.tcb.state, TcpState::Closed);
    assert_eq!(client.tcb.state, TcpState::TimeWait);
}
