//! Failure injection: the protocols must recover from drops,
//! corruption, duplication and reordering — this is what makes them
//! *protocols* rather than codecs.

use protolat::core::world::{RpcWorld, TcpIpWorld};
use protolat::netsim::lance::LanceTiming;
use protolat::protocols::rpc::CHAN_RTO_NS;
use protolat::protocols::tcpip::host::RTO_NS;
use protolat::protocols::tcpip::TcpIpHost;
use protolat::protocols::StackOptions;

fn established_pair() -> (TcpIpHost, TcpIpHost) {
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    server.listen();
    client.connect(0);
    for _ in 0..6 {
        for b in client.take_tx() {
            server.deliver_wire(&b, 0);
        }
        for b in server.take_tx() {
            client.deliver_wire(&b, 0);
        }
    }
    assert!(client.is_established() && server.is_established());
    client.take_episode();
    server.take_episode();
    (client, server)
}

#[test]
fn tcp_retransmits_after_request_loss() {
    let (mut client, mut server) = established_pair();
    let mut now = 0u64;

    client.app_send(b"x", now);
    let lost = client.take_tx();
    assert_eq!(lost.len(), 1);
    // Drop it.  Nothing arrives; the retransmission timer must fire.
    now += RTO_NS + 1;
    client.poll_timers(now);
    assert_eq!(client.tcb.rexmits, 1, "timer must retransmit");
    let retry = client.take_tx();
    assert_eq!(retry.len(), 1);
    for b in retry {
        server.deliver_wire(&b, now);
    }
    for b in server.take_tx() {
        client.deliver_wire(&b, now);
    }
    assert_eq!(client.delivered.len(), 1, "echo arrives after recovery");
    client.take_episode();
    server.take_episode();
}

#[test]
fn tcp_retransmits_after_reply_loss() {
    let (mut client, mut server) = established_pair();
    let mut now = 0u64;

    client.app_send(b"y", now);
    for b in client.take_tx() {
        server.deliver_wire(&b, now);
    }
    // Drop the server's echo.
    let _lost = server.take_tx();
    assert_eq!(server.delivered.len(), 1, "server got the request");
    // The server's retransmission timer resends the echo.
    now += RTO_NS + 1;
    server.poll_timers(now);
    let retry = server.take_tx();
    assert!(!retry.is_empty(), "server must retransmit the echo");
    for b in retry {
        client.deliver_wire(&b, now);
    }
    assert_eq!(client.delivered.len(), 1);
    client.take_episode();
    server.take_episode();
}

#[test]
fn corrupted_frame_is_dropped_by_fcs_and_recovered() {
    let (mut client, mut server) = established_pair();
    let mut now = 0u64;

    client.app_send(b"z", now);
    let mut frames = client.take_tx();
    frames[0][30] ^= 0x40; // flip a bit mid-frame
    for b in &frames {
        server.deliver_wire(b, now);
    }
    assert_eq!(server.delivered.len(), 0, "FCS must reject the frame");
    assert!(server.take_tx().is_empty(), "no echo for garbage");

    now += RTO_NS + 1;
    client.poll_timers(now);
    for b in client.take_tx() {
        server.deliver_wire(&b, now);
    }
    for b in server.take_tx() {
        client.deliver_wire(&b, now);
    }
    assert_eq!(server.delivered.len(), 1);
    assert_eq!(client.delivered.len(), 1);
    client.take_episode();
    server.take_episode();
}

#[test]
fn tcp_duplicate_segment_is_not_delivered_twice() {
    let (mut client, mut server) = established_pair();
    let now = 0u64;

    client.app_send(b"d", now);
    let frames = client.take_tx();
    // Deliver the same request twice (network duplication).
    for b in &frames {
        server.deliver_wire(b, now);
    }
    server.take_tx();
    for b in &frames {
        server.deliver_wire(b, now);
    }
    assert_eq!(
        server.delivered.len(),
        1,
        "out-of-window duplicate must not reach the application twice"
    );
    client.take_episode();
    server.take_episode();
}

#[test]
fn tcp_congestion_window_halves_on_loss() {
    let (mut client, _server) = established_pair();
    let before = client.tcb.snd_cwnd;
    client.app_send(b"w", 0);
    client.take_tx();
    client.poll_timers(RTO_NS + 1);
    assert!(client.tcb.snd_cwnd < before, "loss must shrink cwnd");
    assert_eq!(client.tcb.snd_cwnd, client.tcb.mss, "back to one segment");
    client.take_episode();
}

#[test]
fn rpc_chan_timeout_retransmits_request() {
    let world = RpcWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    let mut now = 0u64;

    client.call(&[], now);
    client.take_episode();
    let _lost = client.take_tx(); // drop the request

    now += CHAN_RTO_NS + 1;
    client.poll_timers(now);
    client.take_episode();
    let retry = client.take_tx();
    assert_eq!(retry.len(), 1, "CHAN must retransmit");
    for b in retry {
        server.deliver_wire(&b, now);
    }
    server.take_episode();
    for b in server.take_tx() {
        client.deliver_wire(&b, now);
    }
    client.take_episode();
    assert_eq!(client.completed, 1, "call completes after the retry");
}

#[test]
fn rpc_duplicate_request_gets_cached_reply_not_reexecution() {
    let world = RpcWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);

    client.call(b"once", 0);
    client.take_episode();
    let frames = client.take_tx();
    for b in &frames {
        server.deliver_wire(b, 0);
    }
    server.take_episode();
    let served = server.completed;
    let first_reply = server.take_tx();
    assert_eq!(served, 1);

    // The same request arrives again (client retried, or the network
    // duplicated): CHAN must resend the cached reply without invoking
    // the server procedure again.
    for b in &frames {
        server.deliver_wire(b, 0);
    }
    server.take_episode();
    assert_eq!(server.completed, 1, "no re-execution");
    let second_reply = server.take_tx();
    assert_eq!(second_reply.len(), first_reply.len(), "cached reply resent");
}

#[test]
fn rpc_stale_boot_id_is_rejected() {
    let world = RpcWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    // Server "rebooted": its expectation of the peer boot-id changes.
    server.peer_boot_id ^= 0xFFFF;

    client.call(&[], 0);
    client.take_episode();
    for b in client.take_tx() {
        server.deliver_wire(&b, 0);
    }
    server.take_episode();
    assert_eq!(server.completed, 0, "BID must drop stale-boot-id messages");
    assert!(server.take_tx().is_empty());
}
