//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use std::collections::HashMap;

use protolat::kcode::{Body, DataRef, RegionId};
use protolat::machine::{Cache, InstRecord, Machine};
use protolat::netsim::frame::{EtherType, Frame, MacAddr};
use protolat::protocols::checksum;
use protolat::protocols::tcpip::hdr::{flags, seq, IpHdr, TcpHdr};
use protolat::xkernel::map::Map;
use protolat::xkernel::msg::{Msg, HEADROOM};

proptest! {
    // ---- checksum ------------------------------------------------------

    #[test]
    fn checksum_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 4..256),
        bit in 0usize..8,
        idx_seed in any::<usize>(),
    ) {
        // The checksum field must sit 16-bit aligned in the summed range.
        prop_assume!(data.len() % 2 == 0);
        let mut pkt = data.clone();
        let ck = checksum::in_cksum(&pkt);
        pkt.extend_from_slice(&ck.to_be_bytes());
        prop_assert!(checksum::verify(&pkt));
        let idx = idx_seed % pkt.len();
        pkt[idx] ^= 1 << bit;
        prop_assert!(!checksum::verify(&pkt), "flip at {idx} bit {bit} undetected");
    }

    #[test]
    fn pseudo_checksum_binds_endpoints(
        data in proptest::collection::vec(any::<u8>(), 0..128),
        src in any::<u32>(),
        dst in any::<u32>(),
        delta in 1u32..,
    ) {
        let a = checksum::in_cksum_pseudo(src, dst, 6, &data);
        let b = checksum::in_cksum_pseudo(src.wrapping_add(delta), dst, 6, &data);
        // A different source address must change the checksum unless the
        // one's-complement fold happens to collide; require inequality
        // for deltas that touch distinct half-words.
        if delta % 0x1_0000 != 0 && (delta >> 16) == 0 {
            prop_assert_ne!(a, b);
        }
    }

    // ---- wire formats ----------------------------------------------------

    #[test]
    fn ethernet_frame_roundtrips(
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
        d in any::<[u8; 6]>(),
        s in any::<[u8; 6]>(),
    ) {
        let f = Frame::new(MacAddr(d), MacAddr(s), EtherType::Ipv4, payload.clone());
        let parsed = Frame::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(parsed.dst, f.dst);
        prop_assert_eq!(parsed.src, f.src);
        prop_assert!(parsed.payload.len() >= payload.len());
        prop_assert_eq!(&parsed.payload[..payload.len()], &payload[..]);
    }

    #[test]
    fn ip_header_roundtrips(
        len in 20u16..1500,
        ident in any::<u16>(),
        src in any::<u32>(),
        dst in any::<u32>(),
    ) {
        let h = IpHdr { total_len: len, ident, frag: 0, ttl: 64, proto: 6, src, dst };
        prop_assert_eq!(IpHdr::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn tcp_header_roundtrips_with_payload(
        sp in any::<u16>(),
        dp in any::<u16>(),
        sq in any::<u32>(),
        ack in any::<u32>(),
        win in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let h = TcpHdr {
            src_port: sp, dst_port: dp, seq: sq, ack,
            flags: flags::ACK, window: win, urgent: 0,
        };
        let bytes = h.to_bytes(1, 2, &payload);
        let (parsed, off) = TcpHdr::from_bytes(1, 2, &bytes).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(&bytes[off..], &payload[..]);
    }

    #[test]
    fn seq_comparisons_are_antisymmetric(a in any::<u32>(), b in any::<u32>()) {
        if a != b {
            prop_assert_ne!(seq::lt(a, b), seq::lt(b, a));
            prop_assert_eq!(seq::lt(a, b), seq::gt(b, a));
        }
        prop_assert!(seq::leq(a, a));
        prop_assert!(seq::geq(a, a));
    }

    // ---- xkernel map vs model ---------------------------------------------

    #[test]
    fn map_behaves_like_hashmap(ops in proptest::collection::vec(
        (0u8..3, any::<u16>(), any::<u32>()), 1..200)
    ) {
        let mut m: Map<u16, u32> = Map::new(32);
        let mut model: HashMap<u16, u32> = HashMap::new();
        for (op, k, v) in ops {
            let h = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            match op {
                0 => {
                    m.bind(h, k, v);
                    model.insert(k, v);
                }
                1 => {
                    let (got, _) = m.lookup(h, &k);
                    prop_assert_eq!(got, model.get(&k).copied());
                }
                _ => {
                    let got = m.unbind(h, &k);
                    prop_assert_eq!(got, model.remove(&k));
                }
            }
            prop_assert_eq!(m.len(), model.len());
        }
        // Traversal visits exactly the model's bindings.
        let mut seen = Vec::new();
        m.for_each(|k, v| seen.push((*k, *v)));
        let mut want: Vec<(u16, u32)> = model.into_iter().collect();
        seen.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(seen, want);
    }

    // ---- message tool ------------------------------------------------------

    #[test]
    fn msg_push_pop_are_inverse(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        hdrs in proptest::collection::vec(1usize..24, 0..5),
    ) {
        prop_assume!(hdrs.iter().sum::<usize>() <= HEADROOM);
        let mut msg = Msg::with_payload(&payload, 0x1000);
        let mut pushed: Vec<Vec<u8>> = Vec::new();
        for (i, h) in hdrs.iter().enumerate() {
            let hdr: Vec<u8> = (0..*h).map(|j| (i * 31 + j) as u8).collect();
            msg.push(*h).copy_from_slice(&hdr);
            pushed.push(hdr);
        }
        for hdr in pushed.iter().rev() {
            let got = msg.pop(hdr.len()).unwrap().to_vec();
            prop_assert_eq!(&got, hdr);
        }
        prop_assert_eq!(msg.bytes(), &payload[..]);
    }

    // ---- body model ---------------------------------------------------------

    #[test]
    fn body_split_conserves_instructions(
        alu in 0u16..200,
        mul in 0u16..4,
        nloads in 0usize..20,
        nstores in 0usize..20,
        n in 1usize..12,
    ) {
        let mut b = Body::ops(alu).with_mul(mul);
        for i in 0..nloads {
            b.loads.push(DataRef::Region(RegionId(1), i as u32 * 8));
        }
        for i in 0..nstores {
            b.stores.push(DataRef::Stack(i as u32 * 8));
        }
        let parts = b.split(n);
        prop_assert_eq!(parts.len(), n);
        let total: u32 = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, b.len());
        let loads: usize = parts.iter().map(|p| p.loads.len()).sum();
        prop_assert_eq!(loads, b.loads.len());
        // Order preserved across the concatenation.
        let cat: Vec<DataRef> = parts.iter().flat_map(|p| p.loads.clone()).collect();
        prop_assert_eq!(cat, b.loads);
    }

    #[test]
    fn body_expand_matches_len(
        alu in 0u16..100,
        mul in 0u16..4,
        nloads in 0usize..16,
    ) {
        let mut b = Body::ops(alu).with_mul(mul);
        for i in 0..nloads {
            b.loads.push(DataRef::Stack(i as u32 * 8));
        }
        prop_assert_eq!(b.expand().len() as u32, b.len());
    }

    // ---- cache model ----------------------------------------------------------

    #[test]
    fn cache_stats_invariants(addrs in proptest::collection::vec(0u64..0x10000, 1..500)) {
        let mut c = Cache::new(protolat::machine::config::CacheConfig::new(1024, 32));
        for a in &addrs {
            c.access(*a);
        }
        let s = c.stats;
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        prop_assert!(s.replacement_misses <= s.misses);
        // Cold misses equal the number of distinct blocks touched.
        let distinct: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a & !31).collect();
        prop_assert_eq!(s.cold_misses(), distinct.len() as u64);
    }

    #[test]
    fn machine_timing_is_deterministic_and_positive(
        pcs in proptest::collection::vec(0u64..0x4000, 1..300)
    ) {
        let trace: Vec<InstRecord> =
            pcs.iter().map(|p| InstRecord::alu(p & !3)).collect();
        let mut m1 = Machine::dec3000_600();
        let mut m2 = Machine::dec3000_600();
        let r1 = m1.run(&trace);
        let r2 = m2.run(&trace);
        prop_assert_eq!(r1.cycles(), r2.cycles());
        prop_assert!(r1.cycles() >= trace.len() as u64 / 2, "dual issue bound");
        prop_assert!(r1.cpi() >= 0.5);
    }
}
