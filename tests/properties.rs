//! Property-based tests over the core data structures and invariants.
//!
//! Each property runs 256 deterministic cases drawn from a seeded
//! SplitMix64 stream — no external fuzzing framework, fully offline,
//! reproducible from the seed alone.

use std::collections::HashMap;

use protolat::kcode::{Body, DataRef, RegionId};
use protolat::machine::{Cache, InstRecord, Machine};
use protolat::netsim::frame::{EtherType, Frame, MacAddr};
use protolat::netsim::rng::SplitMix64;
use protolat::protocols::checksum;
use protolat::protocols::tcpip::hdr::{flags, seq, IpHdr, TcpHdr};
use protolat::xkernel::map::Map;
use protolat::xkernel::msg::{Msg, HEADROOM};

const CASES: u64 = 256;

fn rng_for(test: u64, case: u64) -> SplitMix64 {
    SplitMix64::new(0x9809_7350_5EED_0000 ^ (test << 32) ^ case)
}

fn bytes(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<u8> {
    let n = rng.range(lo, hi);
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

// ---- checksum ------------------------------------------------------

#[test]
fn checksum_detects_any_single_bit_flip() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        // The checksum field must sit 16-bit aligned in the summed
        // range, so draw an even length in [4, 256).
        let len = 2 * rng.range(2, 128);
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let bit = rng.below(8) as usize;

        let mut pkt = data.clone();
        let ck = checksum::in_cksum(&pkt);
        pkt.extend_from_slice(&ck.to_be_bytes());
        assert!(checksum::verify(&pkt), "case {case}");
        let idx = rng.range(0, pkt.len());
        pkt[idx] ^= 1 << bit;
        assert!(!checksum::verify(&pkt), "case {case}: flip at {idx} bit {bit} undetected");
    }
}

#[test]
fn pseudo_checksum_binds_endpoints() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let data = bytes(&mut rng, 0, 128);
        let src = rng.next_u64() as u32;
        let dst = rng.next_u64() as u32;
        let delta = 1 + rng.below(u32::MAX as u64) as u32;

        let a = checksum::in_cksum_pseudo(src, dst, 6, &data);
        let b = checksum::in_cksum_pseudo(src.wrapping_add(delta), dst, 6, &data);
        // A different source address must change the checksum unless the
        // one's-complement fold happens to collide; require inequality
        // for deltas that touch distinct half-words.
        if !delta.is_multiple_of(0x1_0000) && (delta >> 16) == 0 {
            assert_ne!(a, b, "case {case}");
        }
    }
}

// ---- wire formats ----------------------------------------------------

#[test]
fn ethernet_frame_roundtrips() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let payload = bytes(&mut rng, 0, 1500);
        let mut d = [0u8; 6];
        let mut s = [0u8; 6];
        for b in d.iter_mut().chain(s.iter_mut()) {
            *b = rng.next_u64() as u8;
        }

        let f = Frame::new(MacAddr(d), MacAddr(s), EtherType::Ipv4, payload.clone());
        let parsed = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed.dst, f.dst, "case {case}");
        assert_eq!(parsed.src, f.src, "case {case}");
        assert!(parsed.payload.len() >= payload.len(), "case {case}");
        assert_eq!(&parsed.payload[..payload.len()], &payload[..], "case {case}");
    }
}

#[test]
fn ip_header_roundtrips() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let len = 20 + rng.below(1480) as u16;
        let ident = rng.next_u64() as u16;
        let src = rng.next_u64() as u32;
        let dst = rng.next_u64() as u32;

        let h = IpHdr { total_len: len, ident, frag: 0, ttl: 64, proto: 6, src, dst };
        assert_eq!(IpHdr::from_bytes(&h.to_bytes()).unwrap(), h, "case {case}");
    }
}

#[test]
fn tcp_header_roundtrips_with_payload() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let h = TcpHdr {
            src_port: rng.next_u64() as u16,
            dst_port: rng.next_u64() as u16,
            seq: rng.next_u64() as u32,
            ack: rng.next_u64() as u32,
            flags: flags::ACK,
            window: rng.next_u64() as u16,
            urgent: 0,
        };
        let payload = bytes(&mut rng, 0, 64);
        let wire = h.to_bytes(1, 2, &payload);
        let (parsed, off) = TcpHdr::from_bytes(1, 2, &wire).unwrap();
        assert_eq!(parsed, h, "case {case}");
        assert_eq!(&wire[off..], &payload[..], "case {case}");
    }
}

#[test]
fn seq_comparisons_are_antisymmetric() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let a = rng.next_u64() as u32;
        let b = rng.next_u64() as u32;
        if a != b {
            assert_ne!(seq::lt(a, b), seq::lt(b, a), "case {case}");
            assert_eq!(seq::lt(a, b), seq::gt(b, a), "case {case}");
        }
        assert!(seq::leq(a, a));
        assert!(seq::geq(a, a));
    }
}

// ---- xkernel map vs model ---------------------------------------------

#[test]
fn map_behaves_like_hashmap() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let nops = rng.range(1, 200);
        let ops: Vec<(u8, u16, u32)> = (0..nops)
            .map(|_| {
                (
                    rng.below(3) as u8,
                    rng.next_u64() as u16,
                    rng.next_u64() as u32,
                )
            })
            .collect();

        let mut m: Map<u16, u32> = Map::new(32);
        let mut model: HashMap<u16, u32> = HashMap::new();
        for (op, k, v) in ops {
            let h = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            match op {
                0 => {
                    m.bind(h, k, v);
                    model.insert(k, v);
                }
                1 => {
                    let (got, _) = m.lookup(h, &k);
                    assert_eq!(got, model.get(&k).copied(), "case {case}");
                }
                _ => {
                    let got = m.unbind(h, &k);
                    assert_eq!(got, model.remove(&k), "case {case}");
                }
            }
            assert_eq!(m.len(), model.len(), "case {case}");
        }
        // Traversal visits exactly the model's bindings.
        let mut seen = Vec::new();
        m.for_each(|k, v| seen.push((*k, *v)));
        let mut want: Vec<(u16, u32)> = model.into_iter().collect();
        seen.sort_unstable();
        want.sort_unstable();
        assert_eq!(seen, want, "case {case}");
    }
}

// ---- message tool ------------------------------------------------------

#[test]
fn msg_push_pop_are_inverse() {
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let payload = bytes(&mut rng, 0, 128);
        // Header pushes must fit in the headroom; redraw until they do
        // (proptest's prop_assume did the same).
        let hdrs: Vec<usize> = loop {
            let n = rng.range(0, 5);
            let h: Vec<usize> = (0..n).map(|_| rng.range(1, 24)).collect();
            if h.iter().sum::<usize>() <= HEADROOM {
                break h;
            }
        };

        let mut msg = Msg::with_payload(&payload, 0x1000);
        let mut pushed: Vec<Vec<u8>> = Vec::new();
        for (i, h) in hdrs.iter().enumerate() {
            let hdr: Vec<u8> = (0..*h).map(|j| (i * 31 + j) as u8).collect();
            msg.push(*h).copy_from_slice(&hdr);
            pushed.push(hdr);
        }
        for hdr in pushed.iter().rev() {
            let got = msg.pop(hdr.len()).unwrap().to_vec();
            assert_eq!(&got, hdr, "case {case}");
        }
        assert_eq!(msg.bytes(), &payload[..], "case {case}");
    }
}

// ---- body model ---------------------------------------------------------

#[test]
fn body_split_conserves_instructions() {
    for case in 0..CASES {
        let mut rng = rng_for(9, case);
        let alu = rng.below(200) as u16;
        let mul = rng.below(4) as u16;
        let nloads = rng.range(0, 20);
        let nstores = rng.range(0, 20);
        let n = rng.range(1, 12);

        let mut b = Body::ops(alu).with_mul(mul);
        for i in 0..nloads {
            b.loads.push(DataRef::Region(RegionId(1), i as u32 * 8));
        }
        for i in 0..nstores {
            b.stores.push(DataRef::Stack(i as u32 * 8));
        }
        let parts = b.split(n);
        assert_eq!(parts.len(), n, "case {case}");
        let total: u32 = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, b.len(), "case {case}");
        let loads: usize = parts.iter().map(|p| p.loads.len()).sum();
        assert_eq!(loads, b.loads.len(), "case {case}");
        // Order preserved across the concatenation.
        let cat: Vec<DataRef> = parts.iter().flat_map(|p| p.loads.clone()).collect();
        assert_eq!(cat, b.loads, "case {case}");
    }
}

#[test]
fn body_expand_matches_len() {
    for case in 0..CASES {
        let mut rng = rng_for(10, case);
        let alu = rng.below(100) as u16;
        let mul = rng.below(4) as u16;
        let nloads = rng.range(0, 16);

        let mut b = Body::ops(alu).with_mul(mul);
        for i in 0..nloads {
            b.loads.push(DataRef::Stack(i as u32 * 8));
        }
        assert_eq!(b.expand().len() as u32, b.len(), "case {case}");
    }
}

// ---- cache model ----------------------------------------------------------

#[test]
fn cache_stats_invariants() {
    for case in 0..CASES {
        let mut rng = rng_for(11, case);
        let n = rng.range(1, 500);
        let addrs: Vec<u64> = (0..n).map(|_| rng.below(0x10000)).collect();

        let mut c = Cache::new(protolat::machine::config::CacheConfig::new(1024, 32));
        for a in &addrs {
            c.access(*a);
        }
        let s = c.stats;
        assert_eq!(s.accesses, addrs.len() as u64, "case {case}");
        assert!(s.misses <= s.accesses, "case {case}");
        assert!(s.replacement_misses <= s.misses, "case {case}");
        // Cold misses equal the number of distinct blocks touched.
        let distinct: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a & !31).collect();
        assert_eq!(s.cold_misses(), distinct.len() as u64, "case {case}");
    }
}

#[test]
fn machine_timing_is_deterministic_and_positive() {
    for case in 0..CASES {
        let mut rng = rng_for(12, case);
        let n = rng.range(1, 300);
        let pcs: Vec<u64> = (0..n).map(|_| rng.below(0x4000)).collect();

        let trace: Vec<InstRecord> =
            pcs.iter().map(|p| InstRecord::alu(p & !3)).collect();
        let mut m1 = Machine::dec3000_600();
        let mut m2 = Machine::dec3000_600();
        let r1 = m1.run(&trace);
        let r2 = m2.run(&trace);
        assert_eq!(r1.cycles(), r2.cycles(), "case {case}");
        assert!(r1.cycles() >= trace.len() as u64 / 2, "case {case}: dual issue bound");
        assert!(r1.cpi() >= 0.5, "case {case}");
    }
}
