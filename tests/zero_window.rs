//! Zero-window handling: when the peer closes its receive window, the
//! sender queues data and probes with the persist timer until the
//! window reopens (the classic deadlock-avoidance machinery).

use protolat::core::world::TcpIpWorld;
use protolat::netsim::lance::LanceTiming;
use protolat::protocols::tcpip::host::PERSIST_NS;
use protolat::protocols::tcpip::TcpIpHost;
use protolat::protocols::StackOptions;

fn established_pair() -> (TcpIpHost, TcpIpHost) {
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    server.echo_server = false; // plain sink for this test
    server.listen();
    client.connect(0);
    for _ in 0..6 {
        for b in client.take_tx() {
            server.deliver_wire(&b, 0);
        }
        for b in server.take_tx() {
            client.deliver_wire(&b, 0);
        }
        client.poll_timers(2_000_000);
        server.poll_timers(2_000_000);
    }
    assert!(client.is_established() && server.is_established());
    client.take_episode();
    server.take_episode();
    (client, server)
}

#[test]
fn send_blocks_on_zero_window_and_resumes() {
    let (mut client, mut server) = established_pair();
    let mut now = 10_000_000u64;

    // The server's application stops reading: its receive window
    // closes, and the client learns about it.
    server.tcb.rcv_wnd = 0;
    client.tcb.snd_wnd = 0;
    client.app_send(b"queued-data", now);
    assert!(client.take_tx().is_empty(), "nothing may go on a closed window");
    assert_eq!(client.tcb.pending_send, b"queued-data");
    client.take_episode();

    // The persist timer probes with a single byte; the closed window
    // rejects it but answers with an ACK advertising window 0.
    now += PERSIST_NS + 1;
    client.poll_timers(now);
    client.take_episode();
    let probes = client.take_tx();
    assert_eq!(probes.len(), 1, "one window probe");
    for b in &probes {
        server.deliver_wire(b, now);
    }
    server.take_episode();
    assert!(server.delivered.is_empty(), "closed window rejects the probe");
    let acks = server.take_tx();
    assert!(!acks.is_empty(), "probe must elicit an ACK");
    for b in &acks {
        client.deliver_wire(b, now);
    }
    client.take_episode();
    assert_eq!(client.tcb.snd_wnd, 0, "window still closed");

    // The server's application reads: the window reopens.  The next
    // probe is accepted, its ACK advertises the open window, and the
    // client flushes the remaining queued data.
    server.tcb.rcv_wnd = 16 * 1024;
    now += PERSIST_NS + 1;
    client.poll_timers(now);
    client.take_episode();
    for b in client.take_tx() {
        server.deliver_wire(&b, now);
    }
    server.take_episode();
    server.poll_timers(now + 2_000_000);
    server.take_episode();
    for b in server.take_tx() {
        client.deliver_wire(&b, now);
    }
    client.take_episode();
    assert!(client.tcb.pending_send.is_empty(), "queue drained");
    for b in client.take_tx() {
        server.deliver_wire(&b, now);
    }
    server.take_episode();
    // The probe byte plus the flushed remainder reassemble the stream.
    let received: Vec<u8> = server.delivered.concat();
    assert_eq!(received, b"queued-data");
}

#[test]
fn persist_timer_keeps_probing() {
    let (mut client, _server) = established_pair();
    let mut now = 10_000_000u64;
    client.tcb.snd_wnd = 0;
    client.app_send(b"stuck", now);
    client.take_episode();

    for round in 1..=3 {
        now += PERSIST_NS + 1;
        client.poll_timers(now);
        client.take_episode();
        let probes = client.take_tx();
        assert_eq!(probes.len(), 1, "probe round {round}");
        // The probe byte moved to the retransmission queue; the rest
        // stays pending until the window opens.
        assert_eq!(client.tcb.pending_send, b"tuck");
        assert!(client.tcb.probe_outstanding);
    }
}

#[test]
fn window_never_closed_sends_immediately() {
    let (mut client, _server) = established_pair();
    client.app_send(b"normal", 0);
    assert_eq!(client.take_tx().len(), 1);
    assert!(client.tcb.pending_send.is_empty());
    client.take_episode();
}
