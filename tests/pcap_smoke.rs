//! End-to-end smoke test against the checked-in `tcpip_roundtrip.pcap`
//! (written by `examples/trace_dump.rs` from a live TCP handshake +
//! ping exchange between the two simulated stacks).
//!
//! Contract: the wire data plane must ingest a real capture, demux
//! every frame through the zero-copy byte parser (full integrity
//! ladder — FCS, IP header checksum, TCP pseudo checksum), agree with
//! the copy-and-materialize reference codec frame-for-frame, and
//! re-emit the capture bit-identically.

use protocols::wire::{codec, reference};
use trace::pcap::{PcapSink, PcapSource, LINKTYPE_ETHERNET};

fn capture_bytes() -> Vec<u8> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tcpip_roundtrip.pcap");
    std::fs::read(path).expect("checked-in tcpip_roundtrip.pcap")
}

#[test]
fn checked_in_capture_ingests_demuxes_and_reemits_byte_identically() {
    let original = capture_bytes();
    let mut src = PcapSource::new(&original[..]).expect("valid pcap header");
    assert_eq!(src.linktype(), LINKTYPE_ETHERNET);
    assert!(!src.swapped(), "trace_dump writes little-endian classic pcap");

    let mut sink = PcapSink::new(Vec::new()).unwrap();
    let mut frames = 0u32;
    let mut last_ts = 0u64;
    while let Some(pkt) = src.next_packet().expect("clean record stream") {
        // Every frame in the capture is a complete wire frame.
        assert_eq!(pkt.data.len(), pkt.orig_len as usize, "capture is unsnapped");
        assert!(pkt.ts_ns() >= last_ts, "timestamps are monotone");
        last_ts = pkt.ts_ns();

        // The zero-copy parser accepts it end to end...
        let d = codec::demux_frame(&pkt.data)
            .unwrap_or_else(|e| panic!("frame {frames} failed demux: {e}"));
        // ...with the addresses/ports the tcpip example actually used.
        assert_eq!(d.src_port, 5001, "frame {frames}");
        assert_eq!(d.dst_port, 5001, "frame {frames}");
        assert!(
            [0x0a00_0001, 0x0a00_0002].contains(&d.src_ip),
            "frame {frames}: unexpected src {:#010x}",
            d.src_ip
        );
        assert!(
            [0x0a00_0001, 0x0a00_0002].contains(&d.dst_ip),
            "frame {frames}: unexpected dst {:#010x}",
            d.dst_ip
        );
        assert!(d.payload_len <= 4, "frame {frames}: handshake/ping payloads only");

        // ...and the materializing reference codec agrees exactly.
        assert_eq!(
            reference::demux_frame(&pkt.data),
            Ok(d),
            "frame {frames}: codecs diverged"
        );

        sink.emit(&pkt).unwrap();
        frames += 1;
    }

    assert!(frames >= 5, "capture should hold a handshake plus pings, got {frames}");
    assert_eq!(sink.len(), u64::from(frames));
    let reemitted = sink.finish().unwrap();
    assert_eq!(reemitted, original, "re-emit must be bit-identical");
}

#[test]
fn corrupting_any_captured_frame_is_detected() {
    // Flip one bit in each captured frame's body: the FCS (or a
    // checksum) must catch every single one — no corrupt frame may
    // demux cleanly.
    let original = capture_bytes();
    let mut src = PcapSource::new(&original[..]).unwrap();
    let mut i = 0usize;
    while let Some(pkt) = src.next_packet().unwrap() {
        let mut bad = pkt.data.clone();
        let at = (i * 7) % bad.len();
        bad[at] ^= 0x04;
        let zc = codec::demux_frame(&bad);
        assert!(zc.is_err(), "frame {i}: flip at {at} went undetected");
        assert_eq!(zc, reference::demux_frame(&bad), "frame {i}: codecs diverged on corruption");
        i += 1;
    }
    assert!(i > 0);
}
