//! BLAST selective retransmission: a receiver holding a partial
//! multi-fragment message NACKs the sender, which retransmits only the
//! missing fragments.

use protolat::core::world::RpcWorld;
use protolat::netsim::lance::LanceTiming;
use protolat::protocols::rpc::host::BLAST_NACK_NS;
use protolat::protocols::rpc::FRAG_SIZE;
use protolat::protocols::StackOptions;

#[test]
fn nack_recovers_a_single_lost_fragment() {
    let world = RpcWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    let mut now = 0u64;

    let args: Vec<u8> = (0..FRAG_SIZE * 3).map(|i| (i % 199) as u8).collect();
    client.call(&args, now);
    client.take_episode();
    let frames = client.take_tx();
    assert!(frames.len() >= 4, "expected >=4 fragments, got {}", frames.len());

    // Drop the second fragment.
    for (i, b) in frames.iter().enumerate() {
        if i != 1 {
            server.deliver_wire(b, now);
        }
    }
    server.take_episode();
    assert_eq!(server.completed, 0, "incomplete message must wait");

    // The server's NACK timer fires and requests the missing fragment.
    now += BLAST_NACK_NS + 1;
    server.poll_timers(now);
    server.take_episode();
    assert_eq!(server.nacks_sent, 1);
    let nacks = server.take_tx();
    assert_eq!(nacks.len(), 1, "one NACK frame");

    // The client retransmits exactly the missing fragment.
    for b in &nacks {
        client.deliver_wire(b, now);
    }
    client.take_episode();
    assert_eq!(client.frags_resent, 1, "only the missing fragment resent");
    let resent = client.take_tx();
    assert_eq!(resent.len(), 1);

    for b in &resent {
        server.deliver_wire(b, now);
    }
    server.take_episode();
    assert_eq!(server.completed, 1, "message completes after the resend");
    assert_eq!(server.delivered[0], args);
}

#[test]
fn nack_lists_multiple_missing_fragments() {
    let world = RpcWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    let mut now = 0u64;

    let args: Vec<u8> = vec![5u8; FRAG_SIZE * 4];
    client.call(&args, now);
    client.take_episode();
    let frames = client.take_tx();
    assert!(frames.len() >= 5);

    // Deliver only the first and last fragments.
    server.deliver_wire(&frames[0], now);
    server.deliver_wire(frames.last().unwrap(), now);
    server.take_episode();

    now += BLAST_NACK_NS + 1;
    server.poll_timers(now);
    server.take_episode();
    let nacks = server.take_tx();
    assert_eq!(nacks.len(), 1);
    for b in &nacks {
        client.deliver_wire(b, now);
    }
    client.take_episode();
    let resent = client.take_tx();
    assert_eq!(
        resent.len(),
        frames.len() - 2,
        "exactly the missing fragments are retransmitted"
    );
    for b in &resent {
        server.deliver_wire(b, now);
    }
    server.take_episode();
    assert_eq!(server.completed, 1);
    assert_eq!(server.delivered[0], args);
}

#[test]
fn completed_message_cancels_pending_nack() {
    let world = RpcWorld::build(StackOptions::improved());
    let timing = LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    let mut now = 0u64;

    let args: Vec<u8> = vec![9u8; FRAG_SIZE * 2];
    client.call(&args, now);
    client.take_episode();
    // Deliver everything, but out of order (arms the NACK timer on the
    // first partial state, then completes).
    let mut frames = client.take_tx();
    frames.reverse();
    for b in &frames {
        server.deliver_wire(b, now);
    }
    server.take_episode();
    assert_eq!(server.completed, 1);
    let _reply = server.take_tx(); // the served reply

    // The armed timer fires but finds the message complete: no NACK.
    now += BLAST_NACK_NS + 1;
    server.poll_timers(now);
    server.take_episode();
    assert_eq!(server.nacks_sent, 0);
    assert!(server.take_tx().iter().all(|_| false), "no stray frames");
}
