//! Cross-crate integration: the full simulation pipeline through the
//! public facade.

use protolat::core::config::Version;
use protolat::core::harness::{run_rpc, run_tcpip};
use protolat::core::timing::{
    cold_client_stats, time_roundtrip, time_roundtrip_with, RPC_UNTRACED_PER_HOP_US,
};
use protolat::core::world::{RpcWorld, TcpIpWorld};
use protolat::protocols::StackOptions;

#[test]
fn tcpip_all_versions_reproduce_paper_ordering() {
    let run = run_tcpip(TcpIpWorld::build(StackOptions::improved()), 2);
    let canonical = run.episodes.client_trace();
    let f_tx = run.world.lance_model.f_tx;
    let e2e = |v: Version| {
        let img = v.build_tcpip(&run.world, &canonical);
        time_roundtrip(&run.episodes, &img, &img, f_tx).e2e_us
    };
    let bad = e2e(Version::Bad);
    let std = e2e(Version::Std);
    let out = e2e(Version::Out);
    let clo = e2e(Version::Clo);
    let all = e2e(Version::All);
    assert!(bad > std + 100.0, "BAD {bad:.0} must dwarf STD {std:.0}");
    assert!(std > out + 10.0, "outlining saves >10us: {std:.1} vs {out:.1}");
    assert!(out > clo, "cloning helps: {out:.1} vs {clo:.1}");
    assert!(clo > all, "ALL fastest: {clo:.1} vs {all:.1}");
    // Paper's headline: BAD is ~60% slower than ALL end-to-end.
    let slowdown = (bad / all - 1.0) * 100.0;
    assert!(
        (35.0..95.0).contains(&slowdown),
        "BAD slowdown {slowdown:.0}% (paper 60.5%)"
    );
}

#[test]
fn rpc_all_versions_reproduce_paper_ordering() {
    let run = run_rpc(RpcWorld::build(StackOptions::improved()), 2);
    let canonical = run.episodes.client_trace();
    let f_tx = run.world.lance_model.f_tx;
    let server = Version::All.build_rpc(&run.world, &canonical);
    let e2e = |v: Version| {
        let img = v.build_rpc(&run.world, &canonical);
        time_roundtrip_with(&run.episodes, &img, &server, f_tx, RPC_UNTRACED_PER_HOP_US)
            .e2e_us
    };
    let bad = e2e(Version::Bad);
    let std = e2e(Version::Std);
    let out = e2e(Version::Out);
    let pin = e2e(Version::Pin);
    assert!(bad > std + 40.0);
    assert!(std > out + 4.0);
    assert!(out > pin + 3.0, "path-inlining is a big RPC win");
    // Paper: BAD is 25.1% above ALL for RPC — a smaller factor than
    // TCP/IP's because the RPC server is pinned at ALL.
    let all = e2e(Version::All);
    let slowdown = (bad / all - 1.0) * 100.0;
    assert!((12.0..45.0).contains(&slowdown), "RPC BAD slowdown {slowdown:.0}%");
}

#[test]
fn techniques_help_rpc_inlining_more_than_tcp() {
    // Paper: OUT->PIN client-side saving is 27.3us (RPC) vs 9.5us (TCP).
    let tcp = run_tcpip(TcpIpWorld::build(StackOptions::improved()), 2);
    let tcp_canonical = tcp.episodes.client_trace();
    let tcp_tp = |v: Version| {
        let img = v.build_tcpip(&tcp.world, &tcp_canonical);
        time_roundtrip(&tcp.episodes, &img, &img, tcp.world.lance_model.f_tx).tp_us()
    };
    let rpc = run_rpc(RpcWorld::build(StackOptions::improved()), 2);
    let rpc_canonical = rpc.episodes.client_trace();
    let server = Version::All.build_rpc(&rpc.world, &rpc_canonical);
    let rpc_tp = |v: Version| {
        let img = v.build_rpc(&rpc.world, &rpc_canonical);
        time_roundtrip_with(
            &rpc.episodes,
            &img,
            &server,
            rpc.world.lance_model.f_tx,
            RPC_UNTRACED_PER_HOP_US,
        )
        .tp_us()
    };
    let tcp_gain = (tcp_tp(Version::Out) - tcp_tp(Version::Pin)) / tcp_tp(Version::Out);
    let rpc_gain = (rpc_tp(Version::Out) - rpc_tp(Version::Pin)) / rpc_tp(Version::Out);
    assert!(
        rpc_gain > tcp_gain,
        "relative PIN gain: RPC {:.1}% vs TCP {:.1}%",
        rpc_gain * 100.0,
        tcp_gain * 100.0
    );
}

#[test]
fn handshake_establishes_real_tcp_state() {
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = protolat::netsim::lance::LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    server.listen();
    client.connect(0);
    for _ in 0..6 {
        for b in client.take_tx() {
            server.deliver_wire(&b, 0);
        }
        for b in server.take_tx() {
            client.deliver_wire(&b, 0);
        }
    }
    assert!(client.is_established());
    assert!(server.is_established());
    // Sequence numbers crossed over.
    assert_eq!(client.tcb.rcv_nxt, server.tcb.snd_nxt);
    assert_eq!(server.tcb.rcv_nxt, client.tcb.snd_nxt);
}

#[test]
fn classifier_accepts_the_latency_path_and_rejects_others() {
    let run = run_tcpip(TcpIpWorld::build(StackOptions::improved()), 1);
    let cls = &run.world.model.classifier;
    // A real frame from the functional exchange must match.
    let world = TcpIpWorld::build(StackOptions::improved());
    let timing = protolat::netsim::lance::LanceTiming::dec3000_600();
    let mut client = world.client(timing);
    let mut server = world.server(timing);
    server.listen();
    client.connect(0);
    let frames = client.take_tx();
    let (ok, _) = cls.program.eval(&frames[0]);
    assert!(ok, "TCP SYN to port 5001 must match the classifier");
    // A non-IP frame must not.
    let mut junk = frames[0].clone();
    junk[12] = 0x30; // not IPv4
    let (ok, checks) = cls.program.eval(&junk);
    assert!(!ok);
    assert_eq!(checks, 1, "first check must reject");
}

#[test]
fn classifier_cost_appears_when_enabled() {
    let mut opts = StackOptions::improved();
    let base = run_tcpip(TcpIpWorld::build(opts), 2);
    opts.classifier_enabled = true;
    let with = run_tcpip(TcpIpWorld::build(opts), 2);
    let base_canonical = base.episodes.client_trace();
    let with_canonical = with.episodes.client_trace();
    let img_base = Version::Pin.build_tcpip(&base.world, &base_canonical);
    let img_with = Version::Pin.build_tcpip(&with.world, &with_canonical);
    let len_base = protolat::core::timing::replay_trace(&img_base, &base.episodes.client_in).len();
    let len_with = protolat::core::timing::replay_trace(&img_with, &with.episodes.client_in).len();
    assert!(
        len_with > len_base + 10,
        "classifier must add input-path work: {len_with} vs {len_base}"
    );
}

#[test]
fn cold_stats_are_deterministic() {
    let a = {
        let run = run_tcpip(TcpIpWorld::build(StackOptions::improved()), 2);
        let canonical = run.episodes.client_trace();
        let img = Version::Std.build_tcpip(&run.world, &canonical);
        cold_client_stats(&run.episodes, &img)
    };
    let b = {
        let run = run_tcpip(TcpIpWorld::build(StackOptions::improved()), 2);
        let canonical = run.episodes.client_trace();
        let img = Version::Std.build_tcpip(&run.world, &canonical);
        cold_client_stats(&run.episodes, &img)
    };
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.icache.misses, b.icache.misses);
    assert_eq!(a.bcache.accesses, b.bcache.accesses);
}
