#!/usr/bin/env bash
# Smoke-check the pipeline benchmark contract.
#
# Runs `pipeline_bench` (which itself asserts the memoized sweep engine
# beats per-consumer recomputation by >= 2x) and verifies that
# BENCH_pipeline.json contains every key downstream tooling reads.
# Pass --reuse to validate an existing BENCH_pipeline.json without
# re-running the benchmark.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_pipeline.json ]; then
    cargo run -q --release -p protolat-bench --bin pipeline_bench
fi

missing=0
for key in bench timing_consumers cold_consumers fresh_serial_ms \
           memoized_parallel_ms speedup rows counters runs images timings \
           cold_stats stages functional_run_ms image_build_ms \
           replay_materialized_ms replay_fused_ms; do
    if ! grep -q "\"$key\"" BENCH_pipeline.json; then
        echo "bench_smoke: BENCH_pipeline.json missing key \"$key\"" >&2
        missing=1
    fi
done
[ "$missing" -eq 0 ] || exit 1

speedup=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
if [ -z "$speedup" ]; then
    echo "bench_smoke: could not parse speedup" >&2
    exit 1
fi
awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "bench_smoke: speedup ${speedup}x below the 2x floor" >&2
    exit 1
}

echo "bench_smoke: OK (memoized sweep ${speedup}x faster, all JSON keys present)"
