#!/usr/bin/env bash
# Smoke-check the benchmark contracts.
#
# Runs `pipeline_bench` (which itself asserts the memoized sweep engine
# beats per-consumer recomputation by >= 2x and that the fused streaming
# replay does not lose to the materialized pipeline), `replay_bench`
# (which asserts the data-oriented replay->simulate hot loop is >= 2x
# the in-tree reference model), `layout_bench` (which asserts the
# data-oriented micro-positioner is >= 2x the seed greedy on the RPC
# stack), `traffic_bench` (which asserts ALL beats BAD at p99 under
# sustained load on both stacks and that partitioned multi-worker
# serving scales >= 2x in simulated throughput) and `engine_bench`
# (which asserts the timing-wheel scheduler beats the reference binary
# heap >= 2x on schedule+drain at 128k pending events and >= 1.1x on the
# end-to-end 12-cell traffic sweep, with bit-identical reports) and
# `capacity_bench` (which climbs the offered-rate ladder per cell,
# asserts a knee is detected with a monotone curve, that the dispatch
# plane is bit-identical to the seed FIFO at the seed rate, and that the
# best cell sustains >= 2x the seed 7953 msg/s plateau) and
# `demux_bench` (which runs the policy x reference-stream demux matrix
# and asserts the winning cache policy strictly beats the seed one-entry
# cache on the adversarial conflict stream while costing no more on the
# Zipf stream, with the dispatch plane bit-identical to the reference
# runloop) and `adapt_bench` (which runs the online re-layout loop under
# phase-shifting workloads and asserts the adaptive run converges within
# 5% of the per-phase-best static layout after every shift, never loses
# to BAD, and that sampling adds zero simulated overhead) and
# `trace_bench` (which records every cell of the serving grid, asserts
# the traces replay bit-identically — including re-sliced to other
# executor counts and through the engine's memoized replay stage, with
# adaptive swap verdicts re-derived exactly — round-trips both trace
# codecs through files, and gates recording overhead at 10% over live
# serving) and `wire_bench` (which asserts the zero-copy pooled codec
# encodes+demuxes real TCP/IP frames >= 2x faster than the
# copy-and-materialize reference, that the buffer pool never allocates
# at steady state, that serving through bytes is bit-identical to the
# descriptor path on both planes, and that the checked-in pcap
# round-trips byte-identically), then verifies the JSON artifacts
# contain every key downstream tooling reads.
# Reduced-size capacity, demux, adapt, trace and wire sweeps also run twice
# into scratch files and the outputs are byte-compared — the
# cross-process bit-reproducibility probes.  Pass --reuse to validate
# existing JSON files without re-running the benchmarks (the two-run
# probes are skipped on --reuse).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_pipeline.json ]; then
    cargo run -q --release -p protolat-bench --bin pipeline_bench
fi
if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_replay.json ]; then
    cargo run -q --release -p protolat-bench --bin replay_bench
fi
if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_layout.json ]; then
    cargo run -q --release -p protolat-bench --bin layout_bench
fi
if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_traffic.json ]; then
    cargo run -q --release -p protolat-bench --bin traffic_bench
fi
if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_engine.json ]; then
    cargo run -q --release -p protolat-bench --bin engine_bench
fi
if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_capacity.json ]; then
    cargo run -q --release -p protolat-bench --bin capacity_bench
fi
if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_demux.json ]; then
    cargo run -q --release -p protolat-bench --bin demux_bench
fi
if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_adapt.json ]; then
    cargo run -q --release -p protolat-bench --bin adapt_bench
fi
if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_trace.json ]; then
    cargo run -q --release -p protolat-bench --bin trace_bench
fi
if [ "${1:-}" != "--reuse" ] || [ ! -f BENCH_wire.json ]; then
    cargo run -q --release -p protolat-bench --bin wire_bench
fi

if [ "${1:-}" != "--reuse" ]; then
    # Cross-process bit-reproducibility: the reduced-size smoke sweep
    # must produce byte-identical JSON across two fresh processes (the
    # artifact carries no wall-clock timings).
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir"' EXIT
    CAPACITY_SMOKE=1 BENCH_CAPACITY_PATH="$tmpdir/cap_a.json" \
        cargo run -q --release -p protolat-bench --bin capacity_bench >/dev/null
    CAPACITY_SMOKE=1 BENCH_CAPACITY_PATH="$tmpdir/cap_b.json" \
        cargo run -q --release -p protolat-bench --bin capacity_bench >/dev/null
    cmp -s "$tmpdir/cap_a.json" "$tmpdir/cap_b.json" || {
        echo "bench_smoke: capacity smoke sweep not bit-reproducible across runs" >&2
        exit 1
    }
    DEMUX_SMOKE=1 BENCH_DEMUX_PATH="$tmpdir/dmx_a.json" \
        cargo run -q --release -p protolat-bench --bin demux_bench >/dev/null
    DEMUX_SMOKE=1 BENCH_DEMUX_PATH="$tmpdir/dmx_b.json" \
        cargo run -q --release -p protolat-bench --bin demux_bench >/dev/null
    cmp -s "$tmpdir/dmx_a.json" "$tmpdir/dmx_b.json" || {
        echo "bench_smoke: demux smoke matrix not bit-reproducible across runs" >&2
        exit 1
    }
    ADAPT_SMOKE=1 BENCH_ADAPT_PATH="$tmpdir/adp_a.json" \
        cargo run -q --release -p protolat-bench --bin adapt_bench >/dev/null
    ADAPT_SMOKE=1 BENCH_ADAPT_PATH="$tmpdir/adp_b.json" \
        cargo run -q --release -p protolat-bench --bin adapt_bench >/dev/null
    cmp -s "$tmpdir/adp_a.json" "$tmpdir/adp_b.json" || {
        echo "bench_smoke: adapt smoke run not bit-reproducible across runs" >&2
        exit 1
    }
    TRACE_SMOKE=1 BENCH_TRACE_PATH="$tmpdir/trc_a.json" \
        cargo run -q --release -p protolat-bench --bin trace_bench >/dev/null
    TRACE_SMOKE=1 BENCH_TRACE_PATH="$tmpdir/trc_b.json" \
        cargo run -q --release -p protolat-bench --bin trace_bench >/dev/null
    cmp -s "$tmpdir/trc_a.json" "$tmpdir/trc_b.json" || {
        echo "bench_smoke: trace smoke run not bit-reproducible across runs" >&2
        exit 1
    }
    WIRE_SMOKE=1 BENCH_WIRE_PATH="$tmpdir/wir_a.json" \
        cargo run -q --release -p protolat-bench --bin wire_bench >/dev/null
    WIRE_SMOKE=1 BENCH_WIRE_PATH="$tmpdir/wir_b.json" \
        cargo run -q --release -p protolat-bench --bin wire_bench >/dev/null
    cmp -s "$tmpdir/wir_a.json" "$tmpdir/wir_b.json" || {
        echo "bench_smoke: wire smoke run not bit-reproducible across runs" >&2
        exit 1
    }
fi

missing=0
for key in bench timing_consumers cold_consumers fresh_serial_ms \
           memoized_parallel_ms speedup rows counters runs images timings \
           cold_stats stages functional_run_ms image_build_ms \
           replay_materialized_ms replay_fused_ms; do
    if ! grep -q "\"$key\"" BENCH_pipeline.json; then
        echo "bench_smoke: BENCH_pipeline.json missing key \"$key\"" >&2
        missing=1
    fi
done
for cell in tcpip_std tcpip_all rpc_std rpc_all; do
    for metric in fused_fresh_ips fused_warm_ips materialized_fresh_ips \
                  materialized_warm_ips; do
        if ! grep -q "\"${cell}_${metric}\"" BENCH_replay.json; then
            echo "bench_smoke: BENCH_replay.json missing key \"${cell}_${metric}\"" >&2
            missing=1
        fi
    done
done
for key in min_fresh_speedup min_warm_speedup; do
    if ! grep -q "\"$key\"" BENCH_replay.json; then
        echo "bench_smoke: BENCH_replay.json missing key \"$key\"" >&2
        missing=1
    fi
done
for key in bench tcpip_micro_opt_ms tcpip_micro_ref_ms tcpip_micro_speedup \
           rpc_micro_opt_ms rpc_micro_ref_ms rpc_micro_speedup \
           cells_serial_ms cells_parallel_ms layout_requests \
           layout_computed layout_hit_rate; do
    if ! grep -q "\"$key\"" BENCH_layout.json; then
        echo "bench_smoke: BENCH_layout.json missing key \"$key\"" >&2
        missing=1
    fi
done
for stack in tcpip rpc; do
    for ver in bad std out clo pin all; do
        for metric in p50_us p99_us p999_us mps table_hit_rate \
                      cache_hit_rate miss_rate evictions memo_hit_rate \
                      memo_invalidations memo_period_p1 memo_period_p2 \
                      memo_period_p3 memo_period_p4 drops corruptions \
                      reorders duplicates rto_fires truncations malforms \
                      fragments bad_fcs; do
            if ! grep -q "\"${stack}_${ver}_${metric}\"" BENCH_traffic.json; then
                echo "bench_smoke: BENCH_traffic.json missing key \"${stack}_${ver}_${metric}\"" >&2
                missing=1
            fi
        done
    done
done
for key in workers offered_mps min_achieved_mps single_worker_mps \
           multi_worker_mps worker_speedup; do
    if ! grep -q "\"$key\"" BENCH_traffic.json; then
        echo "bench_smoke: BENCH_traffic.json missing key \"$key\"" >&2
        missing=1
    fi
done
for stack in tcpip rpc; do
    for ver in bad std out clo pin all; do
        for metric in knee_mps max_sustainable_mps refined_knee_mps curve; do
            if ! grep -q "\"${stack}_${ver}_${metric}\"" BENCH_capacity.json; then
                echo "bench_smoke: BENCH_capacity.json missing key \"${stack}_${ver}_${metric}\"" >&2
                missing=1
            fi
        done
    done
done
for key in bench workers start_rate_mps slo_p99_us best_cell \
           best_max_sustainable_mps seed_plateau_mps seed_rate_bit_identical; do
    if ! grep -q "\"$key\"" BENCH_capacity.json; then
        echo "bench_smoke: BENCH_capacity.json missing key \"$key\"" >&2
        missing=1
    fi
done
for policy in one_entry direct_mapped two_way_lru fifo random; do
    for stream in zipf stack_depth train conflict; do
        for metric in cache_hit_rate lookup_ns p99_us; do
            if ! grep -q "\"${policy}_${stream}_${metric}\"" BENCH_demux.json; then
                echo "bench_smoke: BENCH_demux.json missing key \"${policy}_${stream}_${metric}\"" >&2
                missing=1
            fi
        done
    done
done
for key in bench workers messages_per_worker sessions_per_worker rate_mps \
           policies streams slots conflict_cycle winner_policy \
           winner_conflict_cache_hit_rate seed_conflict_cache_hit_rate; do
    if ! grep -q "\"$key\"" BENCH_demux.json; then
        echo "bench_smoke: BENCH_demux.json missing key \"$key\"" >&2
        missing=1
    fi
done
for key in bench pending_events churn_ops fill_drain_wheel_ms \
           fill_drain_heap_ms fill_drain_speedup churn_wheel_ms \
           churn_heap_ms churn_speedup traffic_cells traffic_wheel_ms \
           traffic_heap_ms traffic_speedup traffic_bit_identical; do
    if ! grep -q "\"$key\"" BENCH_engine.json; then
        echo "bench_smoke: BENCH_engine.json missing key \"$key\"" >&2
        missing=1
    fi
done
for sched in mix theta; do
    for key in samples windows requests swaps_applied swaps_noop \
               memo_invalidations; do
        if ! grep -q "\"${sched}_${key}\"" BENCH_adapt.json; then
            echo "bench_smoke: BENCH_adapt.json missing key \"${sched}_${key}\"" >&2
            missing=1
        fi
    done
    for phase in p0 p1 p2; do
        for metric in adaptive_p99_us best_static_p99_us best_static \
                      bad_p99_us ratio; do
            if ! grep -q "\"${sched}_${phase}_${metric}\"" BENCH_adapt.json; then
                echo "bench_smoke: BENCH_adapt.json missing key \"${sched}_${phase}_${metric}\"" >&2
                missing=1
            fi
        done
    done
done
for key in bench workers stride window relayout_latency_ms jit_responses \
           jit_builds jit_plan_cache_hits converged_within_5pct \
           never_loses_to_bad stride_zero_bit_identical \
           single_candidate_bit_identical; do
    if ! grep -q "\"$key\"" BENCH_adapt.json; then
        echo "bench_smoke: BENCH_adapt.json missing key \"$key\"" >&2
        missing=1
    fi
done
for key in bench smoke workers messages_per_worker rate_mps cells \
           events_per_cell bytes_per_event_binary bytes_per_event_json \
           replay_bit_identical executor_probe executor_bit_identical \
           file_roundtrip_ok adapt_swaps adapt_verdicts_match; do
    if ! grep -q "\"$key\"" BENCH_trace.json; then
        echo "bench_smoke: BENCH_trace.json missing key \"$key\"" >&2
        missing=1
    fi
done
# The wall-clock overhead fields are present only in full (non-smoke)
# artifacts; a full BENCH_trace.json must carry them.
if grep -q '"smoke": 0' BENCH_trace.json; then
    for key in live_ms record_ms record_overhead_pct; do
        if ! grep -q "\"$key\"" BENCH_trace.json; then
            echo "bench_smoke: BENCH_trace.json missing key \"$key\"" >&2
            missing=1
        fi
    done
fi
for key in bench smoke packets rounds workers messages_per_worker \
           frames_encoded frames_demuxed payload_bytes bad_fcs truncated \
           malformed fragmented pool_allocs pool_recycled pool_grows \
           pool_high_water pool_recycle_rate wire_bit_identical \
           pcap_frames pcap_roundtrip_ok; do
    if ! grep -q "\"$key\"" BENCH_wire.json; then
        echo "bench_smoke: BENCH_wire.json missing key \"$key\"" >&2
        missing=1
    fi
done
# The codec timing fields are present only in full (non-smoke) artifacts.
if grep -q '"smoke": 0' BENCH_wire.json; then
    for key in zero_copy_ns_per_pkt reference_ns_per_pkt codec_speedup; do
        if ! grep -q "\"$key\"" BENCH_wire.json; then
            echo "bench_smoke: BENCH_wire.json missing key \"$key\"" >&2
            missing=1
        fi
    done
fi
[ "$missing" -eq 0 ] || exit 1

speedup=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
if [ -z "$speedup" ]; then
    echo "bench_smoke: could not parse speedup" >&2
    exit 1
fi
awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "bench_smoke: speedup ${speedup}x below the 2x floor" >&2
    exit 1
}

fused=$(sed -n 's/.*"replay_fused_ms": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
mater=$(sed -n 's/.*"replay_materialized_ms": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
if [ -z "$fused" ] || [ -z "$mater" ]; then
    echo "bench_smoke: could not parse replay stage costs" >&2
    exit 1
fi
awk -v f="$fused" -v m="$mater" 'BEGIN { exit !(f <= m) }' || {
    echo "bench_smoke: fused replay ${fused}ms slower than materialized ${mater}ms" >&2
    exit 1
}

replay_speedup=$(sed -n 's/.*"min_fresh_speedup": \([0-9.]*\).*/\1/p' BENCH_replay.json)
if [ -z "$replay_speedup" ]; then
    echo "bench_smoke: could not parse min_fresh_speedup" >&2
    exit 1
fi
awk -v s="$replay_speedup" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "bench_smoke: replay fresh speedup ${replay_speedup}x below the 2x floor" >&2
    exit 1
}

layout_speedup=$(sed -n 's/.*"rpc_micro_speedup": \([0-9.]*\).*/\1/p' BENCH_layout.json)
if [ -z "$layout_speedup" ]; then
    echo "bench_smoke: could not parse rpc_micro_speedup" >&2
    exit 1
fi
awk -v s="$layout_speedup" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "bench_smoke: layout rpc speedup ${layout_speedup}x below the 2x floor" >&2
    exit 1
}

worker_speedup=$(sed -n 's/.*"worker_speedup": \([0-9.]*\).*/\1/p' BENCH_traffic.json)
if [ -z "$worker_speedup" ]; then
    echo "bench_smoke: could not parse worker_speedup" >&2
    exit 1
fi
awk -v s="$worker_speedup" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "bench_smoke: traffic worker speedup ${worker_speedup}x below the 2x floor" >&2
    exit 1
}

for stack in tcpip rpc; do
    bad=$(sed -n "s/.*\"${stack}_bad_p99_us\": \([0-9.]*\).*/\1/p" BENCH_traffic.json)
    all=$(sed -n "s/.*\"${stack}_all_p99_us\": \([0-9.]*\).*/\1/p" BENCH_traffic.json)
    if [ -z "$bad" ] || [ -z "$all" ]; then
        echo "bench_smoke: could not parse ${stack} p99 cells" >&2
        exit 1
    fi
    awk -v a="$all" -v b="$bad" 'BEGIN { exit !(a < b) }' || {
        echo "bench_smoke: ${stack} ALL p99 ${all}us not below BAD p99 ${bad}us" >&2
        exit 1
    }
done

engine_speedup=$(sed -n 's/.*"fill_drain_speedup": \([0-9.]*\).*/\1/p' BENCH_engine.json)
if [ -z "$engine_speedup" ]; then
    echo "bench_smoke: could not parse fill_drain_speedup" >&2
    exit 1
fi
awk -v s="$engine_speedup" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "bench_smoke: scheduler fill+drain speedup ${engine_speedup}x below the 2x floor" >&2
    exit 1
}

engine_e2e=$(sed -n 's/.*"traffic_speedup": \([0-9.]*\).*/\1/p' BENCH_engine.json)
if [ -z "$engine_e2e" ]; then
    echo "bench_smoke: could not parse traffic_speedup" >&2
    exit 1
fi
awk -v s="$engine_e2e" 'BEGIN { exit !(s >= 1.1) }' || {
    echo "bench_smoke: scheduler e2e traffic speedup ${engine_e2e}x below the 1.1x floor" >&2
    exit 1
}

grep -q '"traffic_bit_identical": true' BENCH_engine.json || {
    echo "bench_smoke: wheel and reference-heap traffic sweeps not bit-identical" >&2
    exit 1
}

best_capacity=$(sed -n 's/.*"best_max_sustainable_mps": \([0-9.]*\).*/\1/p' BENCH_capacity.json)
seed_plateau=$(sed -n 's/.*"seed_plateau_mps": \([0-9.]*\).*/\1/p' BENCH_capacity.json)
if [ -z "$best_capacity" ] || [ -z "$seed_plateau" ]; then
    echo "bench_smoke: could not parse capacity floor values" >&2
    exit 1
fi
awk -v c="$best_capacity" -v p="$seed_plateau" 'BEGIN { exit !(c >= 2.0 * p) }' || {
    echo "bench_smoke: best sustainable rate ${best_capacity} msg/s below 2x the ${seed_plateau} msg/s seed plateau" >&2
    exit 1
}

grep -q '"seed_rate_bit_identical": true' BENCH_capacity.json || {
    echo "bench_smoke: dispatch plane not bit-identical to the seed FIFO at the seed rate" >&2
    exit 1
}

winner_rate=$(sed -n 's/.*"winner_conflict_cache_hit_rate": \([0-9.]*\).*/\1/p' BENCH_demux.json)
seed_rate=$(sed -n 's/.*"seed_conflict_cache_hit_rate": \([0-9.]*\).*/\1/p' BENCH_demux.json)
if [ -z "$winner_rate" ] || [ -z "$seed_rate" ]; then
    echo "bench_smoke: could not parse demux conflict hit rates" >&2
    exit 1
fi
awk -v w="$winner_rate" -v s="$seed_rate" 'BEGIN { exit !(w >= s + 0.30) }' || {
    echo "bench_smoke: demux winner hit rate ${winner_rate} not >= seed ${seed_rate} + 0.30 on the conflict stream" >&2
    exit 1
}
grep -q '"winner_beats_seed_adversarial": true' BENCH_demux.json || {
    echo "bench_smoke: winning demux policy does not beat the seed one-entry cache on the adversarial stream" >&2
    exit 1
}
grep -q '"zipf_not_slower": true' BENCH_demux.json || {
    echo "bench_smoke: winning demux policy regresses Zipf lookup latency vs the seed" >&2
    exit 1
}
grep -q '"bit_repro": true' BENCH_demux.json || {
    echo "bench_smoke: demux dispatch plane not bit-identical to the reference runloop" >&2
    exit 1
}
winner_policy=$(sed -n 's/.*"winner_policy": "\([a-z_]*\)".*/\1/p' BENCH_demux.json)

max_ratio=$(sed -n 's/.*_ratio": \([0-9.]*\).*/\1/p' BENCH_adapt.json | sort -g | tail -1)
if [ -z "$max_ratio" ]; then
    echo "bench_smoke: could not parse adapt convergence ratios" >&2
    exit 1
fi
awk -v r="$max_ratio" 'BEGIN { exit !(r <= 1.05) }' || {
    echo "bench_smoke: adaptive steady p99 drifted ${max_ratio}x above the per-phase best static layout" >&2
    exit 1
}
grep -q '"converged_within_5pct": true' BENCH_adapt.json || {
    echo "bench_smoke: adaptive loop failed to converge within 5% of the per-phase best static layout" >&2
    exit 1
}
grep -q '"never_loses_to_bad": true' BENCH_adapt.json || {
    echo "bench_smoke: adaptive loop lost to static BAD in some phase" >&2
    exit 1
}
grep -q '"stride_zero_bit_identical": true' BENCH_adapt.json || {
    echo "bench_smoke: sampling-off adaptive run not bit-identical to the static service" >&2
    exit 1
}
grep -q '"single_candidate_bit_identical": true' BENCH_adapt.json || {
    echo "bench_smoke: sampling perturbed the simulation (single-candidate run diverged)" >&2
    exit 1
}

grep -q '"replay_bit_identical": 1' BENCH_trace.json || {
    echo "bench_smoke: recorded traces did not replay bit-identically on every grid cell" >&2
    exit 1
}
grep -q '"executor_bit_identical": 1' BENCH_trace.json || {
    echo "bench_smoke: trace replay diverged when re-sliced to other executor counts" >&2
    exit 1
}
grep -q '"file_roundtrip_ok": 1' BENCH_trace.json || {
    echo "bench_smoke: trace file round trip (binary or JSON codec) lost events" >&2
    exit 1
}
grep -q '"adapt_verdicts_match": 1' BENCH_trace.json || {
    echo "bench_smoke: adaptive replay did not re-derive the recorded swap verdicts" >&2
    exit 1
}
trace_swaps=$(sed -n 's/.*"adapt_swaps": \([0-9]*\).*/\1/p' BENCH_trace.json)
if [ -z "$trace_swaps" ] || [ "$trace_swaps" -lt 1 ]; then
    echo "bench_smoke: adaptive trace probe recorded no swaps (workload never shifted?)" >&2
    exit 1
fi
trace_overhead="n/a"
if grep -q '"smoke": 0' BENCH_trace.json; then
    trace_overhead=$(sed -n 's/.*"record_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_trace.json)
    if [ -z "$trace_overhead" ]; then
        echo "bench_smoke: could not parse record_overhead_pct" >&2
        exit 1
    fi
    awk -v o="$trace_overhead" 'BEGIN { exit !(o <= 10.0) }' || {
        echo "bench_smoke: trace recording overhead ${trace_overhead}% above the 10% ceiling" >&2
        exit 1
    }
fi

grep -q '"wire_bit_identical": true' BENCH_wire.json || {
    echo "bench_smoke: serving through real bytes perturbed the simulation" >&2
    exit 1
}
grep -q '"pcap_roundtrip_ok": 1' BENCH_wire.json || {
    echo "bench_smoke: tcpip_roundtrip.pcap did not re-emit byte-identically" >&2
    exit 1
}
grep -q '"pool_grows": 0' BENCH_wire.json || {
    echo "bench_smoke: packet-buffer pool allocated at steady state" >&2
    exit 1
}
wire_speedup="n/a"
if grep -q '"smoke": 0' BENCH_wire.json; then
    wire_speedup=$(sed -n 's/.*"codec_speedup": \([0-9.]*\).*/\1/p' BENCH_wire.json)
    if [ -z "$wire_speedup" ]; then
        echo "bench_smoke: could not parse codec_speedup" >&2
        exit 1
    fi
    awk -v s="$wire_speedup" 'BEGIN { exit !(s >= 2.0) }' || {
        echo "bench_smoke: zero-copy codec speedup ${wire_speedup}x below the 2x floor" >&2
        exit 1
    }
fi

echo "bench_smoke: OK (memoized sweep ${speedup}x, fused ${fused}ms <= materialized ${mater}ms, replay hot loop ${replay_speedup}x, layout placer ${layout_speedup}x vs reference, traffic workers ${worker_speedup}x, scheduler ${engine_speedup}x micro / ${engine_e2e}x e2e, capacity best ${best_capacity} msg/s >= 2x seed plateau, demux winner ${winner_policy} ${winner_rate} vs seed ${seed_rate} on conflict, adapt worst phase ratio ${max_ratio} <= 1.05, trace replay bit-identical with ${trace_swaps} verdicts matched and record overhead ${trace_overhead}% <= 10%, wire codec ${wire_speedup}x zero-copy vs reference)"
